#include "core/nearest_scan.hpp"

#include <algorithm>
#include <limits>

#if defined(__x86_64__) && defined(__GNUC__)
#define AUTH_SIMD_X86 1
#include <immintrin.h>
#else
#define AUTH_SIMD_X86 0
#endif

namespace authenticache::core {

namespace {

/** Kernels only run when every distance fits a signed 32-bit lane. */
constexpr std::uint32_t kCoordLimit = 1u << 29;

struct ScanHit
{
    std::uint32_t distance = std::numeric_limits<std::uint32_t>::max();
    std::size_t index = 0;
    bool found = false;
};

ScanHit
scanScalar(const std::uint32_t *sets, const std::uint32_t *ways,
           std::size_t n, std::uint32_t qs, std::uint32_t qw)
{
    ScanHit hit;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t dx = sets[i] > qs ? sets[i] - qs : qs - sets[i];
        std::uint32_t dy = ways[i] > qw ? ways[i] - qw : qw - ways[i];
        std::uint32_t d = dx + dy;
        // Strict less keeps the earliest index on ties; with the SoA
        // stream sorted by (set, way) that is exactly the brute
        // reference's lexicographic tie rule.
        if (!hit.found || d < hit.distance) {
            hit.found = true;
            hit.distance = d;
            hit.index = i;
        }
    }
    return hit;
}

#if AUTH_SIMD_X86

/**
 * Merge one lane-wise (distance, index) partial into the running
 * scalar best. Lane distances are INT32_MAX when never updated; real
 * distances stay below it (kCoordLimit), so the sentinel never wins.
 */
inline void
mergeLane(ScanHit &hit, std::uint32_t d, std::uint32_t i)
{
    if (d == static_cast<std::uint32_t>(
                 std::numeric_limits<std::int32_t>::max()))
        return;
    if (!hit.found || d < hit.distance ||
        (d == hit.distance && i < hit.index)) {
        hit.found = true;
        hit.distance = d;
        hit.index = i;
    }
}

ScanHit
scanSse2(const std::uint32_t *sets, const std::uint32_t *ways,
         std::size_t n, std::uint32_t qs, std::uint32_t qw)
{
    const __m128i vqs = _mm_set1_epi32(static_cast<int>(qs));
    const __m128i vqw = _mm_set1_epi32(static_cast<int>(qw));
    __m128i best_d =
        _mm_set1_epi32(std::numeric_limits<std::int32_t>::max());
    __m128i best_i = _mm_setzero_si128();
    __m128i idx = _mm_setr_epi32(0, 1, 2, 3);
    const __m128i step = _mm_set1_epi32(4);

    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i vs = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(sets + i));
        __m128i vw = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(ways + i));
        // |a - b| via a signed compare (coordinates < 2^29).
        __m128i gtx = _mm_cmpgt_epi32(vs, vqs);
        __m128i dx = _mm_or_si128(
            _mm_and_si128(gtx, _mm_sub_epi32(vs, vqs)),
            _mm_andnot_si128(gtx, _mm_sub_epi32(vqs, vs)));
        __m128i gty = _mm_cmpgt_epi32(vw, vqw);
        __m128i dy = _mm_or_si128(
            _mm_and_si128(gty, _mm_sub_epi32(vw, vqw)),
            _mm_andnot_si128(gty, _mm_sub_epi32(vqw, vw)));
        __m128i d = _mm_add_epi32(dx, dy);
        // Strict less per lane keeps each lane's earliest index.
        __m128i lt = _mm_cmpgt_epi32(best_d, d);
        best_d = _mm_or_si128(_mm_and_si128(lt, d),
                              _mm_andnot_si128(lt, best_d));
        best_i = _mm_or_si128(_mm_and_si128(lt, idx),
                              _mm_andnot_si128(lt, best_i));
        idx = _mm_add_epi32(idx, step);
    }

    alignas(16) std::uint32_t ds[4];
    alignas(16) std::uint32_t is[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(ds), best_d);
    _mm_store_si128(reinterpret_cast<__m128i *>(is), best_i);
    ScanHit hit;
    for (int lane = 0; lane < 4; ++lane)
        mergeLane(hit, ds[lane], is[lane]);

    // Tail elements carry indices above every vector index, so a tie
    // never displaces the incumbent; strict less is sufficient.
    for (; i < n; ++i) {
        std::uint32_t dx = sets[i] > qs ? sets[i] - qs : qs - sets[i];
        std::uint32_t dy = ways[i] > qw ? ways[i] - qw : qw - ways[i];
        std::uint32_t d = dx + dy;
        if (!hit.found || d < hit.distance) {
            hit.found = true;
            hit.distance = d;
            hit.index = i;
        }
    }
    return hit;
}

__attribute__((target("avx2"))) ScanHit
scanAvx2(const std::uint32_t *sets, const std::uint32_t *ways,
         std::size_t n, std::uint32_t qs, std::uint32_t qw)
{
    const __m256i vqs = _mm256_set1_epi32(static_cast<int>(qs));
    const __m256i vqw = _mm256_set1_epi32(static_cast<int>(qw));
    __m256i best_d =
        _mm256_set1_epi32(std::numeric_limits<std::int32_t>::max());
    __m256i best_i = _mm256_setzero_si256();
    __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const __m256i step = _mm256_set1_epi32(8);

    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i vs = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(sets + i));
        __m256i vw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ways + i));
        __m256i dx = _mm256_sub_epi32(_mm256_max_epu32(vs, vqs),
                                      _mm256_min_epu32(vs, vqs));
        __m256i dy = _mm256_sub_epi32(_mm256_max_epu32(vw, vqw),
                                      _mm256_min_epu32(vw, vqw));
        __m256i d = _mm256_add_epi32(dx, dy);
        __m256i lt = _mm256_cmpgt_epi32(best_d, d);
        best_d = _mm256_blendv_epi8(best_d, d, lt);
        best_i = _mm256_blendv_epi8(best_i, idx, lt);
        idx = _mm256_add_epi32(idx, step);
    }

    alignas(32) std::uint32_t ds[8];
    alignas(32) std::uint32_t is[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(ds), best_d);
    _mm256_store_si256(reinterpret_cast<__m256i *>(is), best_i);
    ScanHit hit;
    for (int lane = 0; lane < 8; ++lane)
        mergeLane(hit, ds[lane], is[lane]);

    for (; i < n; ++i) {
        std::uint32_t dx = sets[i] > qs ? sets[i] - qs : qs - sets[i];
        std::uint32_t dy = ways[i] > qw ? ways[i] - qw : qw - ways[i];
        std::uint32_t d = dx + dy;
        if (!hit.found || d < hit.distance) {
            hit.found = true;
            hit.distance = d;
            hit.index = i;
        }
    }
    return hit;
}

void
manhattanScalar(const std::uint32_t *sets, const std::uint32_t *ways,
                std::size_t n, std::uint32_t qs, std::uint32_t qw,
                std::uint32_t *out_d, std::size_t from_index)
{
    for (std::size_t i = from_index; i < n; ++i) {
        std::uint32_t dx = sets[i] > qs ? sets[i] - qs : qs - sets[i];
        std::uint32_t dy = ways[i] > qw ? ways[i] - qw : qw - ways[i];
        out_d[i] = dx + dy;
    }
}

void
manhattanSse2(const std::uint32_t *sets, const std::uint32_t *ways,
              std::size_t n, std::uint32_t qs, std::uint32_t qw,
              std::uint32_t *out_d)
{
    const __m128i vqs = _mm_set1_epi32(static_cast<int>(qs));
    const __m128i vqw = _mm_set1_epi32(static_cast<int>(qw));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i vs = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(sets + i));
        __m128i vw = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(ways + i));
        __m128i gtx = _mm_cmpgt_epi32(vs, vqs);
        __m128i dx = _mm_or_si128(
            _mm_and_si128(gtx, _mm_sub_epi32(vs, vqs)),
            _mm_andnot_si128(gtx, _mm_sub_epi32(vqs, vs)));
        __m128i gty = _mm_cmpgt_epi32(vw, vqw);
        __m128i dy = _mm_or_si128(
            _mm_and_si128(gty, _mm_sub_epi32(vw, vqw)),
            _mm_andnot_si128(gty, _mm_sub_epi32(vqw, vw)));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out_d + i),
                         _mm_add_epi32(dx, dy));
    }
    manhattanScalar(sets, ways, n, qs, qw, out_d, i);
}

__attribute__((target("avx2"))) void
manhattanAvx2(const std::uint32_t *sets, const std::uint32_t *ways,
              std::size_t n, std::uint32_t qs, std::uint32_t qw,
              std::uint32_t *out_d)
{
    const __m256i vqs = _mm256_set1_epi32(static_cast<int>(qs));
    const __m256i vqw = _mm256_set1_epi32(static_cast<int>(qw));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i vs = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(sets + i));
        __m256i vw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ways + i));
        __m256i dx = _mm256_sub_epi32(_mm256_max_epu32(vs, vqs),
                                      _mm256_min_epu32(vs, vqs));
        __m256i dy = _mm256_sub_epi32(_mm256_max_epu32(vw, vqw),
                                      _mm256_min_epu32(vw, vqw));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out_d + i),
                            _mm256_add_epi32(dx, dy));
    }
    manhattanScalar(sets, ways, n, qs, qw, out_d, i);
}

#endif // AUTH_SIMD_X86

util::SimdLevel
clampLevel(util::SimdLevel level, const LinePoint &from,
           std::uint32_t max_coord)
{
    level = std::min(level, util::detectedSimdLevel());
    // Kernels assume distances fit signed 32-bit lanes; planes that
    // could overflow take the scalar path (no realistic geometry
    // does).
    if (from.set >= kCoordLimit || from.way >= kCoordLimit ||
        max_coord >= kCoordLimit)
        return util::SimdLevel::Scalar;
    return level;
}

} // namespace

NearestResult
nearestScanSoA(const std::uint32_t *sets, const std::uint32_t *ways,
               std::size_t n, const LinePoint &from,
               util::SimdLevel level)
{
    NearestResult out;
    out.cellsExamined = n;
    if (n == 0)
        return out;

    // The stream is sorted by (set, way): sets[n-1] bounds the set
    // coordinates. Way coordinates are bounded by the same geometry
    // ways() limit every producer of a SoA stream enforces, and are
    // far below any overflow concern for real cache shapes; the
    // per-element guard would cost a second pass for nothing.
    level = clampLevel(level, from, sets[n - 1]);
    ScanHit hit;
    switch (level) {
#if AUTH_SIMD_X86
    case util::SimdLevel::Avx2:
        hit = scanAvx2(sets, ways, n, from.set, from.way);
        break;
    case util::SimdLevel::Sse2:
        hit = scanSse2(sets, ways, n, from.set, from.way);
        break;
#endif
    default:
        hit = scanScalar(sets, ways, n, from.set, from.way);
        break;
    }
    out.found = hit.found;
    out.distance = hit.distance;
    out.at = LinePoint{sets[hit.index], ways[hit.index]};
    return out;
}

NearestResult
nearestErrorScan(const ErrorPlane &plane, const LinePoint &from,
                 util::SimdLevel level)
{
    return nearestScanSoA(plane.errorSets().data(),
                          plane.errorWays().data(),
                          plane.errorCount(), from, level);
}

NearestResult
nearestErrorScan(const ErrorPlane &plane, const LinePoint &from)
{
    return nearestErrorScan(plane, from, util::simdLevel());
}

void
manhattanBatch(const std::uint32_t *sets, const std::uint32_t *ways,
               std::size_t n, const LinePoint &from,
               std::uint32_t *out_d, util::SimdLevel level)
{
    std::uint32_t max_coord = 0;
    // The candidate list is small and unsorted; bounding it costs one
    // cheap pass and keeps the signed-lane contract checked.
    for (std::size_t i = 0; i < n; ++i)
        max_coord = std::max(max_coord, std::max(sets[i], ways[i]));
    level = clampLevel(level, from, max_coord);
    switch (level) {
#if AUTH_SIMD_X86
    case util::SimdLevel::Avx2:
        manhattanAvx2(sets, ways, n, from.set, from.way, out_d);
        return;
    case util::SimdLevel::Sse2:
        manhattanSse2(sets, ways, n, from.set, from.way, out_d);
        return;
#endif
    default:
        manhattanScalar(sets, ways, n, from.set, from.way, out_d, 0);
        return;
    }
}

} // namespace authenticache::core
