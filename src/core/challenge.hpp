/**
 * @file
 * Challenge-response types and the ideal (map-side) evaluation.
 *
 * A challenge is a sequence of coordinate pairs; each pair contributes
 * one response bit per the paper's Eq 7-8:
 *
 *     Challenge(A, B) = (P1(x1, y1, V), P2(x2, y2, V'))
 *     Response bit    = 0 if dist(A, e1) <= dist(B, e2) else 1
 *
 * where e1/e2 are the respective nearest errors in the error plane of
 * the point's voltage. Ties resolve to 0, the slight bias the paper
 * measures in Sec 6.4. A point whose plane holds no error at all has
 * infinite distance.
 */

#ifndef AUTH_CORE_CHALLENGE_HPP
#define AUTH_CORE_CHALLENGE_HPP

#include <cstdint>
#include <limits>
#include <vector>

#include "core/error_index.hpp"
#include "core/error_map.hpp"
#include "util/arena.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace authenticache::core {

/** One endpoint of a challenge bit: a cache coordinate at a voltage. */
struct ChallengePoint
{
    LinePoint line;
    VddMv vddMv = 0;

    bool operator==(const ChallengePoint &) const = default;
    auto operator<=>(const ChallengePoint &) const = default;
};

/** One challenge bit: the pair (A, B). */
struct ChallengeBit
{
    ChallengePoint a;
    ChallengePoint b;

    bool operator==(const ChallengeBit &) const = default;
};

/** A complete challenge: typically 64 to 512 bits. */
struct Challenge
{
    std::vector<ChallengeBit> bits;

    std::size_t size() const { return bits.size(); }
};

/** Response bits, index-aligned with the challenge bits. */
using Response = util::BitVec;

/** Distance value used during evaluation; infinite when no error. */
constexpr std::uint64_t kInfiniteDistance =
    std::numeric_limits<std::uint64_t>::max();

/** Nearest-error distance of one challenge point on a map. */
std::uint64_t pointDistance(const ErrorMap &map,
                            const ChallengePoint &point);

/** Evaluate one bit per Eq 8 from the two distances. */
inline bool
responseBitFromDistances(std::uint64_t dist_a, std::uint64_t dist_b)
{
    return dist_a > dist_b;
}

/** Ideal evaluation of a whole challenge against an error map. */
Response evaluate(const ErrorMap &map, const Challenge &challenge);

/**
 * Reusable scratch for evaluateIndexed. One per session shard (or
 * thread): both arenas are recycled wholesale each call, so
 * steady-state evaluation performs no heap allocation. The staging
 * arena is separate from the nearest scratch because the latter is
 * reset inside every nearestBatch call.
 */
struct EvalScratch
{
    util::Arena arena;       ///< Query staging / distance buffers.
    NearestScratch nearest;  ///< ErrorIndex::nearestBatch buffers.
};

/**
 * Indexed challenge evaluation: all 2*bits endpoints are grouped by
 * voltage level and answered with one batched nearest-error query
 * (ErrorIndex::nearestBatch) per plane, instead of a full plane scan
 * per point. Bit-identical to evaluate() on the map the indexes were
 * built from, at every @p level: nearestBatch matches
 * nearestErrorBrute exactly, including ties. A point whose level has
 * no index entry gets infinite distance, mirroring evaluate()'s
 * missing-plane rule.
 */
Response evaluateIndexed(const ErrorIndexMap &indexes,
                         const Challenge &challenge,
                         EvalScratch &scratch, util::SimdLevel level);

/** Same, dispatched at the process-wide util::simdLevel(). */
Response evaluateIndexed(const ErrorIndexMap &indexes,
                         const Challenge &challenge,
                         EvalScratch &scratch);

/**
 * Draw a random challenge whose points are distinct cache lines at one
 * voltage level. Pairs are disjoint within the challenge (2*bits
 * distinct lines), matching the paper's "as many pairs of randomly
 * chosen cache lines".
 */
Challenge randomChallenge(const CacheGeometry &geom, VddMv level,
                          std::size_t bits, util::Rng &rng);

} // namespace authenticache::core

#endif // AUTH_CORE_CHALLENGE_HPP
