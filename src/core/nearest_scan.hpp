/**
 * @file
 * Vectorized Manhattan-distance candidate scans.
 *
 * nearestErrorScan is the SIMD counterpart of nearestErrorBrute: a
 * linear scan of a plane's error points in structure-of-arrays form
 * (ErrorPlane::errorSets / errorWays), processing 4 (SSE2) or 8
 * (AVX2) candidates per step. Results are bit-identical to the brute
 * reference at every width, including the tie rule (among equidistant
 * errors the lexicographically smallest (set, way) wins) and the
 * cellsExamined accounting (every error point is examined exactly
 * once) -- the differential fuzz in tests/test_nearest_scan.cpp pits
 * all widths against each other on randomized planes.
 *
 * Why the tie rule holds at any width: the SoA stream is in sorted
 * (set, way) order, so "earliest index achieving the minimum
 * distance" and "lexicographically smallest coordinate at the
 * minimum distance" are the same element. Each SIMD lane keeps the
 * earliest index of its own subsequence (strict-less updates), and
 * the cross-lane reduction breaks distance ties toward the smaller
 * index, which recovers the global earliest index.
 *
 * manhattanBatch fills a distance array for an arbitrary (unsorted)
 * candidate list -- the kernel behind ErrorIndex::nearestBatch's
 * per-row flank candidates, where the tie-break must compare
 * coordinates explicitly because gather order is per-way, not
 * lexicographic.
 *
 * Coordinate-range contract: all kernels require set + way sums
 * below 2^30 (any realistic cache geometry is orders of magnitude
 * smaller); wider planes fall back to the scalar path.
 */

#ifndef AUTH_CORE_NEAREST_SCAN_HPP
#define AUTH_CORE_NEAREST_SCAN_HPP

#include <cstddef>
#include <cstdint>

#include "core/error_map.hpp"
#include "core/nearest.hpp"
#include "util/simd.hpp"

namespace authenticache::core {

/**
 * Nearest error over a raw SoA candidate stream in sorted
 * (set, way) order. @p level is clamped to the CPU's capability.
 * n == 0 yields found == false.
 */
NearestResult nearestScanSoA(const std::uint32_t *sets,
                             const std::uint32_t *ways, std::size_t n,
                             const LinePoint &from,
                             util::SimdLevel level);

/**
 * SIMD nearest-error scan over a plane; identical result to
 * nearestErrorBrute(plane, from) at every width.
 */
NearestResult nearestErrorScan(const ErrorPlane &plane,
                               const LinePoint &from,
                               util::SimdLevel level);

/** Same, dispatched at the process-wide util::simdLevel(). */
NearestResult nearestErrorScan(const ErrorPlane &plane,
                               const LinePoint &from);

/**
 * Fill @p out_d[i] = |sets[i] - from.set| + |ways[i] - from.way| for
 * an arbitrary candidate list (no ordering assumption).
 */
void manhattanBatch(const std::uint32_t *sets,
                    const std::uint32_t *ways, std::size_t n,
                    const LinePoint &from, std::uint32_t *out_d,
                    util::SimdLevel level);

} // namespace authenticache::core

#endif // AUTH_CORE_NEAREST_SCAN_HPP
