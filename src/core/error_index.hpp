/**
 * @file
 * Indexed nearest-error queries over an error plane.
 *
 * nearestErrorBrute walks the whole error list (O(#errors) per
 * query), which dominates the Monte Carlo hot paths: every response
 * bit costs two nearest-error lookups. ErrorIndex exploits the
 * plane's extreme aspect ratio (tens of thousands of sets, a handful
 * of ways) by keeping one sorted set-index bucket per way row. A
 * query binary-searches each row for the two set-neighbors of the
 * query point, so the cost is O(ways * log(errors-per-row)) --
 * independent of the total error count.
 *
 * Results are exactly those of nearestErrorBrute, including the
 * tie rule: among equidistant errors the lexicographically smallest
 * (set, way) coordinate wins.
 *
 * The index is kept incrementally in sync through add/remove, so
 * callers that perturb a plane (noise application, aging) can mirror
 * the mutation instead of rebuilding.
 */

#ifndef AUTH_CORE_ERROR_INDEX_HPP
#define AUTH_CORE_ERROR_INDEX_HPP

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/error_map.hpp"
#include "core/nearest.hpp"
#include "sim/geometry.hpp"
#include "util/arena.hpp"
#include "util/simd.hpp"

namespace authenticache::core {

/**
 * Reusable scratch for ErrorIndex::nearestBatch. One per session (or
 * per thread): the candidate and distance buffers live in the arena
 * and are recycled wholesale each call, so steady-state batch
 * queries perform no heap allocation.
 */
struct NearestScratch
{
    util::Arena arena;
};

class ErrorIndex
{
  public:
    /** Empty index over a geometry. */
    explicit ErrorIndex(const CacheGeometry &geometry);

    /** Bulk-build from a plane's current error set. */
    explicit ErrorIndex(const ErrorPlane &plane);

    /** Mark a line as erroneous; idempotent. */
    void add(const LinePoint &p);

    /** Unmark a line; idempotent. */
    void remove(const LinePoint &p);

    bool contains(const LinePoint &p) const;

    std::size_t errorCount() const { return count; }

    const CacheGeometry &geometry() const { return geom; }

    /**
     * Nearest error by Manhattan distance; identical result to
     * nearestErrorBrute on an equal error set. cellsExamined follows
     * the unified definition in nearest.hpp: every flank candidate
     * whose distance is evaluated counts, including the winner (at
     * most two per way row; rows pruned by the incumbent-distance
     * bound contribute nothing, since none of their cells are
     * examined).
     */
    NearestResult nearest(const LinePoint &from) const;

    /**
     * Batched nearest-error queries: gathers every row's flank
     * candidates for each query into @p scratch and runs the
     * vectorized Manhattan-distance candidate scan
     * (core::manhattanBatch) over them at @p level.
     *
     * found/distance/at are bit-identical to nearest() -- and hence
     * to nearestErrorBrute -- at every vector width; the tie-break
     * compares (distance, set, way) explicitly because the gather
     * order is per-way, not lexicographic. cellsExamined counts the
     * gathered candidates; it can exceed nearest()'s count because
     * the batch path skips the sequential incumbent-distance row
     * pruning (all rows contribute their flanks).
     *
     * @p queries and @p out must have equal lengths. The scratch's
     * previous contents are recycled (spans from earlier calls are
     * invalidated).
     */
    void nearestBatch(std::span<const LinePoint> queries,
                      std::span<NearestResult> out,
                      NearestScratch &scratch,
                      util::SimdLevel level) const;

    /** Same, dispatched at the process-wide util::simdLevel(). */
    void nearestBatch(std::span<const LinePoint> queries,
                      std::span<NearestResult> out,
                      NearestScratch &scratch) const;

    /** Nearest distance, or kInfiniteDistance on an empty index. */
    std::uint64_t distanceOrInfinite(const LinePoint &from) const;

  private:
    CacheGeometry geom;
    /** rows[way] holds the sorted set indices with an error there. */
    std::vector<std::vector<std::uint32_t>> rows;
    std::size_t count = 0;
};

/**
 * One nearest-error index per voltage plane -- the indexed view of a
 * whole ErrorMap (see ErrorMap's plane keying).
 */
using ErrorIndexMap = std::map<VddMv, ErrorIndex>;

/** Build an index for every plane of @p map. */
ErrorIndexMap buildErrorIndexes(const ErrorMap &map);

} // namespace authenticache::core

#endif // AUTH_CORE_ERROR_INDEX_HPP
