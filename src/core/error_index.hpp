/**
 * @file
 * Indexed nearest-error queries over an error plane.
 *
 * nearestErrorBrute walks the whole error list (O(#errors) per
 * query), which dominates the Monte Carlo hot paths: every response
 * bit costs two nearest-error lookups. ErrorIndex exploits the
 * plane's extreme aspect ratio (tens of thousands of sets, a handful
 * of ways) by keeping one sorted set-index bucket per way row. A
 * query binary-searches each row for the two set-neighbors of the
 * query point, so the cost is O(ways * log(errors-per-row)) --
 * independent of the total error count.
 *
 * Results are exactly those of nearestErrorBrute, including the
 * tie rule: among equidistant errors the lexicographically smallest
 * (set, way) coordinate wins.
 *
 * The index is kept incrementally in sync through add/remove, so
 * callers that perturb a plane (noise application, aging) can mirror
 * the mutation instead of rebuilding.
 */

#ifndef AUTH_CORE_ERROR_INDEX_HPP
#define AUTH_CORE_ERROR_INDEX_HPP

#include <cstdint>
#include <vector>

#include "core/error_map.hpp"
#include "core/nearest.hpp"
#include "sim/geometry.hpp"

namespace authenticache::core {

class ErrorIndex
{
  public:
    /** Empty index over a geometry. */
    explicit ErrorIndex(const CacheGeometry &geometry);

    /** Bulk-build from a plane's current error set. */
    explicit ErrorIndex(const ErrorPlane &plane);

    /** Mark a line as erroneous; idempotent. */
    void add(const LinePoint &p);

    /** Unmark a line; idempotent. */
    void remove(const LinePoint &p);

    bool contains(const LinePoint &p) const;

    std::size_t errorCount() const { return count; }

    const CacheGeometry &geometry() const { return geom; }

    /**
     * Nearest error by Manhattan distance; identical result to
     * nearestErrorBrute on an equal error set. cellsExamined counts
     * candidate errors compared (at most two per way row).
     */
    NearestResult nearest(const LinePoint &from) const;

    /** Nearest distance, or kInfiniteDistance on an empty index. */
    std::uint64_t distanceOrInfinite(const LinePoint &from) const;

  private:
    CacheGeometry geom;
    /** rows[way] holds the sorted set indices with an error there. */
    std::vector<std::vector<std::uint32_t>> rows;
    std::size_t count = 0;
};

} // namespace authenticache::core

#endif // AUTH_CORE_ERROR_INDEX_HPP
