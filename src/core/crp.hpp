/**
 * @file
 * CRP capacity accounting (paper Eq 10 and Table 1).
 *
 * The challenge space over an n-line cache is the edge set of the
 * complete graph K_n; consuming each edge at most once (Sec 4.4's
 * no-reuse rule) bounds the authentications available over a device
 * lifetime.
 */

#ifndef AUTH_CORE_CRP_HPP
#define AUTH_CORE_CRP_HPP

#include <cstdint>

#include "sim/geometry.hpp"

namespace authenticache::core {

/** Number of distinct single-bit challenges for n lines (Eq 10). */
constexpr std::uint64_t
possibleCrps(std::uint64_t lines)
{
    return lines * (lines - 1) / 2;
}

/**
 * Whole authentications (of @p crp_bits pairs each) available at a
 * single voltage level.
 */
constexpr std::uint64_t
possibleAuthentications(std::uint64_t lines, std::uint64_t crp_bits)
{
    return crp_bits == 0 ? 0 : possibleCrps(lines) / crp_bits;
}

/**
 * Average daily authentications over a device lifetime (Table 1).
 *
 * @param lines Cache lines at the challenge voltage.
 * @param crp_bits Challenge length in bits.
 * @param lifetime_years Deployment lifetime (paper uses 10 years).
 */
constexpr std::uint64_t
authenticationsPerDay(std::uint64_t lines, std::uint64_t crp_bits,
                      std::uint64_t lifetime_years = 10)
{
    std::uint64_t days = lifetime_years * 365;
    return days == 0 ? 0
                     : possibleAuthentications(lines, crp_bits) / days;
}

} // namespace authenticache::core

#endif // AUTH_CORE_CRP_HPP
