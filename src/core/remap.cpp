#include "core/remap.hpp"

namespace authenticache::core {

LogicalRemap::LogicalRemap(const crypto::Key256 &key,
                           const CacheGeometry &geometry)
    : rootKey(key), geom(geometry), identity(key == crypto::Key256::zero())
{
}

const crypto::FeistelPermutation &
LogicalRemap::permFor(VddMv level) const
{
    auto it = perms.find(level);
    if (it == perms.end()) {
        crypto::SipHashKey sub = crypto::deriveSipHashKey(
            rootKey, "remap-level-" + std::to_string(level));
        it = perms
                 .emplace(level,
                          crypto::FeistelPermutation(sub, geom.lines()))
                 .first;
    }
    return it->second;
}

LinePoint
LogicalRemap::map(const LinePoint &p, VddMv level) const
{
    if (identity)
        return p;
    return geom.pointOf(permFor(level).map(geom.lineIndex(p)));
}

LinePoint
LogicalRemap::unmap(const LinePoint &p, VddMv level) const
{
    if (identity)
        return p;
    return geom.pointOf(permFor(level).unmap(geom.lineIndex(p)));
}

ErrorMap
LogicalRemap::mapErrorMap(const ErrorMap &physical) const
{
    if (identity)
        return physical;
    ErrorMap logical(geom);
    for (VddMv level : physical.levels()) {
        const ErrorPlane &phys = physical.plane(level);
        ErrorPlane &log = logical.plane(level);
        for (const auto &e : phys.errors())
            log.add(map(e, level));
    }
    return logical;
}

Challenge
LogicalRemap::unmapChallenge(const Challenge &logical) const
{
    if (identity)
        return logical;
    Challenge physical;
    physical.bits.reserve(logical.size());
    for (const auto &bit : logical.bits) {
        ChallengeBit out;
        out.a = ChallengePoint{unmap(bit.a.line, bit.a.vddMv),
                               bit.a.vddMv};
        out.b = ChallengePoint{unmap(bit.b.line, bit.b.vddMv),
                               bit.b.vddMv};
        physical.bits.push_back(out);
    }
    return physical;
}

} // namespace authenticache::core
