/**
 * @file
 * The Authenticache error map: the 3D structure of Figure 4.
 *
 * Each supply-voltage level owns a bit plane over the cache's
 * (set, way) coordinates; a set bit marks a line that reports
 * correctable ECC errors at that voltage. Planes are sparse (tens to
 * hundreds of errors in tens of thousands of lines), so each plane
 * stores a sorted list of error coordinates plus a bitmap for O(1)
 * membership.
 */

#ifndef AUTH_CORE_ERROR_MAP_HPP
#define AUTH_CORE_ERROR_MAP_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "sim/geometry.hpp"
#include "util/bitvec.hpp"

namespace authenticache::core {

using sim::CacheGeometry;
using sim::LinePoint;

/** Supply voltage level in millivolts, the z axis of the map. */
using VddMv = std::uint32_t;

/** One voltage level's error plane. */
class ErrorPlane
{
  public:
    explicit ErrorPlane(const CacheGeometry &geometry);

    /** Mark a line as erroneous; idempotent. */
    void add(const LinePoint &p);

    /** Unmark a line; idempotent. */
    void remove(const LinePoint &p);

    bool contains(const LinePoint &p) const;

    /** Error coordinates in sorted (set, way) order. */
    const std::vector<LinePoint> &errors() const { return list; }

    /**
     * Structure-of-arrays mirror of errors(): the set (and way)
     * coordinates in the same sorted order, kept in sync by
     * add/remove. This is the layout the SIMD nearest-error scan
     * (core/nearest_scan.hpp) consumes -- one contiguous lane-friendly
     * stream per coordinate instead of interleaved LinePoints.
     */
    const std::vector<std::uint32_t> &errorSets() const
    {
        return soaSets;
    }
    const std::vector<std::uint32_t> &errorWays() const
    {
        return soaWays;
    }

    std::size_t errorCount() const { return list.size(); }

    const CacheGeometry &geometry() const { return geom; }

    bool operator==(const ErrorPlane &other) const
    {
        return geom == other.geom && list == other.list;
    }

  private:
    CacheGeometry geom;
    std::vector<LinePoint> list; // Sorted.
    // SoA mirror of list, same order (see errorSets/errorWays).
    std::vector<std::uint32_t> soaSets;
    std::vector<std::uint32_t> soaWays;
    util::BitVec bitmap;
};

/** Multi-voltage error map. */
class ErrorMap
{
  public:
    explicit ErrorMap(const CacheGeometry &geometry);

    const CacheGeometry &geometry() const { return geom; }

    /** Get (or create) the plane at a voltage level. */
    ErrorPlane &plane(VddMv level);

    /** Read-only plane access; throws if the level is absent. */
    const ErrorPlane &plane(VddMv level) const;

    bool hasPlane(VddMv level) const { return planes.count(level) > 0; }

    /** All recorded voltage levels, ascending. */
    std::vector<VddMv> levels() const;

    /** Record a whole sweep result at one voltage. */
    void addSweep(VddMv level, const std::vector<LinePoint> &lines);

    /** Total errors across all planes. */
    std::size_t totalErrors() const;

    bool operator==(const ErrorMap &other) const
    {
        return geom == other.geom && planes == other.planes;
    }

  private:
    CacheGeometry geom;
    std::map<VddMv, ErrorPlane> planes;
};

/**
 * Policy for combining error maps captured under different
 * environmental conditions into one enrollment map (robust
 * enrollment: the factory characterizes the die cold and hot so the
 * enrolled fingerprint already spans the field envelope).
 */
enum class CombinePolicy
{
    Union,        ///< A line in any capture is enrolled.
    Intersection, ///< Only lines present in every capture.
    Majority,     ///< Lines present in more than half the captures.
};

/**
 * Combine same-geometry maps level by level under a policy. Levels
 * absent from some captures are treated as empty planes there.
 */
ErrorMap combineErrorMaps(const std::vector<ErrorMap> &maps,
                          CombinePolicy policy);

} // namespace authenticache::core

#endif // AUTH_CORE_ERROR_MAP_HPP
