#include "core/nearest.hpp"

#include <algorithm>

namespace authenticache::core {

NearestResult
nearestErrorBrute(const ErrorPlane &plane, const LinePoint &from)
{
    NearestResult best;
    for (const auto &e : plane.errors()) {
        ++best.cellsExamined;
        std::uint64_t d = sim::manhattan(from, e);
        if (!best.found || d < best.distance ||
            (d == best.distance && e < best.at)) {
            best.found = true;
            best.distance = d;
            best.at = e;
        }
    }
    return best;
}

std::vector<LinePoint>
ringCells(const CacheGeometry &geom, const LinePoint &center,
          std::uint64_t r)
{
    std::vector<LinePoint> cells;
    if (r == 0) {
        cells.push_back(center);
        return cells;
    }

    const std::int64_t cx = center.set;
    const std::int64_t cy = center.way;
    const std::int64_t ways = geom.ways();
    const std::int64_t sets = geom.sets();
    const std::int64_t ri = static_cast<std::int64_t>(r);

    struct Cand
    {
        std::int64_t t; // Clockwise perimeter parameter.
        LinePoint p;
    };
    std::vector<Cand> cand;

    // Only |dy| < ways can ever be in bounds; enumerate those rows.
    std::int64_t dy_lo = std::max(-ri, -cy);
    std::int64_t dy_hi = std::min(ri, ways - 1 - cy);
    for (std::int64_t dy = dy_lo; dy <= dy_hi; ++dy) {
        std::int64_t dx_mag = ri - std::abs(dy);
        for (std::int64_t sign : {+1, -1}) {
            std::int64_t dx = sign * dx_mag;
            if (dx_mag == 0 && sign < 0)
                continue; // Single apex cell, don't emit twice.
            std::int64_t x = cx + dx;
            std::int64_t y = cy + dy;
            if (x < 0 || x >= sets)
                continue;
            // Clockwise parameter starting north (dy = +r):
            //   edge 1 (N->E):  dx >= 0, dy > 0 : t = dx
            //   edge 2 (E->S):  dx > 0, dy <= 0 : t = r - dy
            //   edge 3 (S->W):  dx <= 0, dy < 0 : t = 2r - dx
            //   edge 4 (W->N):  dx < 0, dy >= 0 : t = 3r + dy
            std::int64_t t;
            if (dx >= 0 && dy > 0)
                t = dx;
            else if (dx > 0)
                t = ri - dy;
            else if (dy < 0)
                t = 2 * ri - dx;
            else
                t = 3 * ri + dy;
            cand.push_back(
                {t, LinePoint{static_cast<std::uint32_t>(x),
                              static_cast<std::uint32_t>(y)}});
        }
    }

    std::sort(cand.begin(), cand.end(),
              [](const Cand &a, const Cand &b) { return a.t < b.t; });
    cells.reserve(cand.size());
    for (const auto &c : cand)
        cells.push_back(c.p);
    return cells;
}

NearestResult
spiralSearch(const CacheGeometry &geom, const LinePoint &center,
             std::uint64_t max_radius,
             const std::function<bool(const LinePoint &)> &probe)
{
    NearestResult out;
    for (std::uint64_t r = 0; r <= max_radius; ++r) {
        auto cells = ringCells(geom, center, r);
        // For an in-bounds center, ring r is populated for every r up
        // to the distance of the farthest corner and empty for all
        // larger r, so the first empty ring ends the search.
        if (cells.empty() && r > 0)
            break;
        for (const auto &cell : cells) {
            ++out.cellsExamined;
            if (probe(cell)) {
                out.found = true;
                out.distance = r;
                out.at = cell;
                return out;
            }
        }
    }
    return out;
}

std::uint64_t
maxSearchRadius(const CacheGeometry &geom)
{
    // The farthest pair of in-bounds cells are opposite corners at
    // (sets-1, ways-1) apart; sets + ways would walk two guaranteed
    // empty rings on every miss.
    return static_cast<std::uint64_t>(geom.sets() - 1) +
           (geom.ways() - 1);
}

} // namespace authenticache::core
