/**
 * @file
 * Adaptive error remapping in detail (paper Sec 4.5, Figure 7):
 * reserved voltage levels, the fuzzy-extractor helper data that makes
 * the noisy PUF response reproduce an exact key, and repeated key
 * rotations. Also demonstrates the failure path: helper data that
 * does not match the device (e.g. a cloned record) yields a key the
 * server detects on the next authentication.
 */

#include <iostream>

#include "crypto/fuzzy_extractor.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"

using namespace authenticache;

int
main()
{
    std::cout << "== Adaptive error remapping (key rotation) ==\n\n";

    sim::ChipConfig chip_cfg;
    chip_cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip chip(chip_cfg, 0x4E3);
    firmware::SimulatedMachine machine(4);
    firmware::ClientConfig client_cfg;
    client_cfg.selfTestAttempts = 8; // Clean reserved-level responses.
    firmware::AuthenticacheClient device(chip, machine, client_cfg);
    device.boot();

    server::ServerConfig server_cfg;
    server_cfg.challengeBits = 128;
    server_cfg.remapSecretBits = 32;
    server_cfg.fuzzyRepetition = 5;
    server::AuthenticationServer server(server_cfg, 31337);
    auto levels = server::defaultChallengeLevels(device, 1);
    auto reserved = server::defaultReservedLevel(device);
    server.enroll(1, device, levels, {reserved});

    std::cout << "reserved remap level: " << reserved
              << " mV; remap challenge: "
              << server_cfg.remapSecretBits *
                     server_cfg.fuzzyRepetition
              << " bits -> " << server_cfg.remapSecretBits
              << " secret bits (repetition "
              << server_cfg.fuzzyRepetition << ")\n\n";

    protocol::InMemoryChannel channel;
    protocol::ServerEndpoint server_end(channel);
    server::DeviceAgent agent(1, device,
                              protocol::ClientEndpoint(channel));

    auto authenticate = [&]() {
        agent.requestAuthentication();
        server::runExchange(server, server_end, agent);
        return agent.lastDecision() &&
               agent.lastDecision()->accepted;
    };

    // Rotate the key several times; authentication must survive each.
    for (int rotation = 1; rotation <= 3; ++rotation) {
        crypto::Key256 before = device.mapKey();
        server.startRemap(1, server_end);
        server::runExchange(server, server_end, agent);
        bool key_changed = !(device.mapKey() == before);
        bool in_sync =
            device.mapKey() == server.database().at(1).mapKey();
        bool auth_ok = authenticate();
        std::cout << "rotation " << rotation << ": key changed="
                  << (key_changed ? "yes" : "no ")
                  << " client/server in sync="
                  << (in_sync ? "yes" : "no ") << " next auth="
                  << (auth_ok ? "ACCEPTED" : "REJECTED") << "\n";
    }

    // Failure path: the *protocol* remap is protected by a two-phase
    // commit with key confirmation (a mis-derived key is rejected and
    // both sides keep the old key; see tests/test_remap_commit.cpp).
    // Here we bypass the protocol and corrupt the helper data fed
    // directly into the firmware API, which installs unconditionally:
    // the resulting desynchronization is what the confirmation step
    // exists to prevent.
    std::cout << "\ninjecting a corrupted remap via the raw firmware "
                 "API (bypassing the protocol's confirmation)...\n";
    crypto::Key256 server_key_before =
        server.database().at(1).mapKey();
    {
        // Build a bogus remap by hand: random helper bits.
        util::Rng rng(1);
        core::Challenge challenge = core::randomChallenge(
            chip.geometry(), reserved, 160, rng);
        util::BitVec bogus_helper(160);
        for (std::size_t i = 0; i < 160; ++i)
            bogus_helper.set(i, rng.nextBool());
        crypto::FuzzyExtractor extractor(5);
        device.processRemapRequest(challenge, bogus_helper, extractor);
    }
    bool desynced =
        !(device.mapKey() == server_key_before);
    bool auth_after_bogus = authenticate();
    std::cout << "device key desynchronized: "
              << (desynced ? "yes" : "no") << "; next auth: "
              << (auth_after_bogus ? "ACCEPTED" : "REJECTED")
              << " (expected REJECTED)\n";

    // Recovery: a legitimate remap restores synchronization.
    server.startRemap(1, server_end);
    server::runExchange(server, server_end, agent);
    std::cout << "after legitimate remap: next auth "
              << (authenticate() ? "ACCEPTED" : "REJECTED")
              << " (expected ACCEPTED)\n";

    std::cout << "\nnote: the reserved-level response never crosses "
                 "the wire -- only the helper data does, which reveals "
                 "nothing without the silicon (Sec 4.5).\n";
    return 0;
}
