/**
 * @file
 * Field-noise study: a device enrolled at the factory then deployed
 * through years of aging and temperature swings. Shows how the
 * response Hamming distance drifts with conditions, how the EER
 * threshold absorbs it, and where authentication finally starts to
 * fail -- the practical face of the paper's Sec 6.2 robustness
 * analysis.
 */

#include <iostream>

#include "metrics/identifiability.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    std::cout << "== Authenticache under field noise ==\n\n";

    sim::ChipConfig chip_cfg;
    chip_cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip chip(chip_cfg, 0xA6E);
    firmware::SimulatedMachine machine(4);
    firmware::ClientConfig client_cfg;
    client_cfg.selfTestAttempts = 4;
    firmware::AuthenticacheClient device(chip, machine, client_cfg);
    device.boot();

    server::ServerConfig server_cfg;
    server_cfg.challengeBits = 256;
    server_cfg.verifier.pIntra = 0.08;
    server::AuthenticationServer server(server_cfg, 99);
    // Challenge levels with ~10 mV of headroom above the floor, so
    // moderate environmental drift does not trip the emergency path.
    std::vector<core::VddMv> levels{
        static_cast<core::VddMv>(device.floorMv() + 12.0),
        static_cast<core::VddMv>(device.floorMv() + 22.0)};
    auto reserved = static_cast<core::VddMv>(device.floorMv() + 17.0);
    server.enroll(1, device, levels, {reserved});

    auto threshold =
        server.verifier().thresholdFor(server_cfg.challengeBits);
    std::cout << "EER identification threshold: " << threshold
              << " of " << server_cfg.challengeBits << " bits\n\n";

    protocol::InMemoryChannel channel;
    protocol::ServerEndpoint server_end(channel);
    server::DeviceAgent agent(1, device,
                              protocol::ClientEndpoint(channel));

    // Sweep the environment: each row is a deployment scenario; run a
    // few authentications per scenario and report distances.
    struct Scenario
    {
        const char *name;
        sim::Conditions conditions;
    };
    std::vector<Scenario> scenarios = {
        {"factory (enrollment conditions)", {}},
        {"+25C hot chassis", {25.0, 0.0, 1.0}},
        {"1 year aging", {0.0, 1.0, 1.0}},
        {"2 years aging, +15C", {15.0, 2.0, 1.0}},
        {"3 years aging, +25C", {25.0, 3.0, 2.0}},
        {"6 years aging, +25C, noisy rail", {25.0, 6.0, 3.0}},
    };

    util::Table table({"scenario", "auths", "accepted", "mean_HD",
                       "max_HD"});
    const int rounds = 6;
    for (const auto &scenario : scenarios) {
        chip.setConditions(scenario.conditions);
        util::RunningStats hd;
        int accepted = 0;
        int completed = 0;
        for (int round = 0; round < rounds; ++round) {
            agent.requestAuthentication();
            server::runExchange(server, server_end, agent);
            if (!agent.lastDecision())
                continue; // Aborted (e.g. emergency raise).
            ++completed;
            accepted += agent.lastDecision()->accepted;
            hd.add(agent.lastDecision()->hammingDistance);
        }
        table.row()
            .cell(scenario.name)
            .cell(std::int64_t(completed))
            .cell(std::int64_t(accepted))
            .cell(hd.mean(), 1)
            .cell(hd.count() ? hd.max() : 0.0, 0);
    }
    table.print(std::cout);

    std::cout
        << "\nreading: distances drift upward with aging and heat; "
           "authentication holds while mean HD stays below the "
           "threshold ("
        << threshold
        << ").\nmitigations (paper Sec 5.3): periodic floor "
           "recalibration and re-enrollment absorb long-term drift.\n";

    // Demonstrate recalibration: re-boot shifts the floor to track
    // the aged silicon.
    double old_floor = device.floorMv();
    double new_floor = device.boot();
    std::cout << "\nfloor after recalibration under aged conditions: "
              << old_floor << " -> " << new_floor << " mV\n";
    return 0;
}
