/**
 * @file
 * Fleet enrollment: manufacture a fleet of devices, enroll them all
 * with one server, authenticate each, and report PUF population
 * statistics (uniqueness across dies, acceptance margins). Also shows
 * a stolen-credentials scenario: a device presenting another device's
 * identity is rejected by its silicon.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "metrics/quality.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace authenticache;

namespace {

struct FleetDevice
{
    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<firmware::SimulatedMachine> machine;
    std::unique_ptr<firmware::AuthenticacheClient> client;
    std::uint64_t id = 0;
};

} // namespace

int
main()
{
    std::cout << "== Authenticache fleet enrollment ==\n\n";

    const unsigned fleet_size = 6;
    server::ServerConfig server_cfg;
    server_cfg.challengeBits = 128;
    server::AuthenticationServer server(server_cfg, 7);

    // Manufacture and enroll the fleet.
    std::vector<FleetDevice> fleet(fleet_size);
    for (unsigned i = 0; i < fleet_size; ++i) {
        sim::ChipConfig cfg;
        cfg.cacheBytes = 1024 * 1024;
        fleet[i].id = 100 + i;
        fleet[i].chip = std::make_unique<sim::SimulatedChip>(
            cfg, 0xF1EE7 + i);
        fleet[i].machine =
            std::make_unique<firmware::SimulatedMachine>(4);
        fleet[i].client =
            std::make_unique<firmware::AuthenticacheClient>(
                *fleet[i].chip, *fleet[i].machine);
        fleet[i].client->boot();
        auto levels =
            server::defaultChallengeLevels(*fleet[i].client, 2);
        auto reserved =
            server::defaultReservedLevel(*fleet[i].client);
        const auto &record = server.enroll(
            fleet[i].id, *fleet[i].client, levels, {reserved});
        std::cout << "device " << fleet[i].id << ": floor "
                  << fleet[i].client->floorMv() << " mV, "
                  << record.physicalMap().totalErrors()
                  << " enrolled errors\n";
    }

    // Authenticate every device through the protocol.
    std::cout << "\n";
    util::Table table({"device", "decision", "hamming_distance"});
    protocol::InMemoryChannel channel;
    protocol::ServerEndpoint server_end(channel);
    for (auto &dev : fleet) {
        server::DeviceAgent agent(dev.id, *dev.client,
                                  protocol::ClientEndpoint(channel));
        agent.requestAuthentication();
        server::runExchange(server, server_end, agent);
        const auto &d = agent.lastDecision();
        table.row()
            .cell(dev.id)
            .cell(d ? (d->accepted ? "ACCEPTED" : "REJECTED")
                    : "no decision")
            .cell(d ? std::to_string(d->hammingDistance) : "-");
    }
    table.print(std::cout);

    // Population uniqueness: same challenge geometry, every die.
    util::Rng rng(5);
    const auto &geom = fleet[0].chip->geometry();
    util::RunningStats uniqueness;
    for (int round = 0; round < 10; ++round) {
        std::vector<util::BitVec> responses;
        auto challenge = core::randomChallenge(geom, 0, 64, rng);
        for (auto &dev : fleet) {
            auto level = static_cast<core::VddMv>(
                dev.client->floorMv() + 10.0);
            auto map = dev.client->captureErrorMap({level}, 4);
            auto ch = challenge;
            for (auto &bit : ch.bits) {
                bit.a.vddMv = level;
                bit.b.vddMv = level;
            }
            responses.push_back(core::evaluate(map, ch));
        }
        uniqueness.add(metrics::uniqueness(responses));
    }
    std::cout << "\nfleet uniqueness (ideal 50%): "
              << uniqueness.mean() << "%\n";

    // Stolen identity: device B claims to be device A.
    auto &victim = fleet[0];
    auto &thief = fleet[1];
    server::DeviceAgent imposter(victim.id, *thief.client,
                                 protocol::ClientEndpoint(channel));
    // The thief even knows the victim's logical-map key.
    thief.client->setMapKey(
        server.database().at(victim.id).mapKey());
    imposter.requestAuthentication();
    server::runExchange(server, server_end, imposter);
    if (imposter.lastDecision()) {
        std::cout << "\nimposter presenting device " << victim.id
                  << ": "
                  << (imposter.lastDecision()->accepted ? "ACCEPTED"
                                                        : "REJECTED")
                  << " (HD "
                  << imposter.lastDecision()->hammingDistance
                  << ")\n";
    } else {
        std::cout << "\nimposter presenting device " << victim.id
                  << ": no decision (aborted: its chip cannot reach "
                     "the victim's voltage levels)\n";
    }
    return 0;
}
