/**
 * @file
 * Quickstart: manufacture a device, enroll it with an authentication
 * server, and run one challenge-response authentication over the
 * protocol channel.
 *
 * This is the complete Authenticache loop of the paper's Figure 6:
 *
 *   device (cache + ECC + firmware)  <-- wire -->  server (error maps)
 */

#include <iostream>

#include "server/server.hpp"
#include "sim/chip.hpp"

using namespace authenticache;

int
main()
{
    std::cout << "== Authenticache quickstart ==\n\n";

    // 1. Manufacture a device: a chip whose 1MB cache carries a
    //    process-variation fingerprint determined by the die seed.
    sim::ChipConfig chip_cfg;
    chip_cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip chip(chip_cfg, /*die seed=*/0xD1E);
    firmware::SimulatedMachine machine(/*cores=*/4);
    firmware::AuthenticacheClient device(chip, machine);

    // 2. Boot: firmware calibrates the lowest safe cache voltage.
    double floor = device.boot();
    std::cout << "voltage floor calibrated: " << floor << " mV (chip "
              << "Vcorr " << chip.vminField().vcorrMv() << " mV)\n";

    // 3. Enroll with the server (trusted, factory-side step): the
    //    server captures the device's low-voltage error maps and
    //    installs the logical-map key.
    server::ServerConfig server_cfg;
    server_cfg.challengeBits = 128;
    server::AuthenticationServer server(server_cfg, /*seed=*/42);
    auto levels = server::defaultChallengeLevels(device, 2);
    auto reserved = server::defaultReservedLevel(device);
    const auto &record = server.enroll(/*device id=*/1, device, levels,
                                       {reserved});
    std::cout << "enrolled: " << record.physicalMap().totalErrors()
              << " error lines across " << levels.size() + 1
              << " voltage levels\n";

    // 4. Field authentication over the wire protocol.
    protocol::InMemoryChannel channel;
    protocol::ServerEndpoint server_end(channel);
    server::DeviceAgent agent(1, device,
                              protocol::ClientEndpoint(channel));

    agent.requestAuthentication();
    server::runExchange(server, server_end, agent);

    if (!agent.lastDecision()) {
        std::cout << "no decision reached\n";
        return 1;
    }
    const auto &decision = *agent.lastDecision();
    std::cout << "\nauthentication "
              << (decision.accepted ? "ACCEPTED" : "REJECTED")
              << " (Hamming distance " << decision.hammingDistance
              << " of " << server_cfg.challengeBits << " bits, "
              << "threshold "
              << server.verifier().thresholdFor(
                     server_cfg.challengeBits)
              << ")\n";

    std::cout << "\nremaining authentications at one level: "
              << record.remainingPairs(levels[0]) /
                     server_cfg.challengeBits
              << "\n";
    return decision.accepted ? 0 : 1;
}
