/**
 * @file
 * Eavesdropper study: a passive attacker wiretaps the client/server
 * channel, extracts challenge-response pairs from the transcript,
 * trains the model-building attacker of Sec 6.7, and is then defeated
 * by the adaptive remap countermeasure of Sec 4.5, which re-randomizes
 * the logical coordinate space.
 */

#include <iostream>

#include "attack/model_attack.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    std::cout << "== Model-building attack vs remap countermeasure ==\n\n";

    sim::ChipConfig chip_cfg;
    chip_cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip chip(chip_cfg, 0xBAD);
    firmware::SimulatedMachine machine(4);
    firmware::AuthenticacheClient device(chip, machine);
    device.boot();

    server::ServerConfig server_cfg;
    server_cfg.challengeBits = 256;
    server::AuthenticationServer server(server_cfg, 1234);
    auto levels = server::defaultChallengeLevels(device, 1);
    auto reserved = server::defaultReservedLevel(device);
    server.enroll(1, device, levels, {reserved});

    // The attacker wiretaps the channel.
    protocol::InMemoryChannel channel;
    protocol::Transcript wiretap;
    channel.attachTranscript(&wiretap);
    protocol::ServerEndpoint server_end(channel);
    server::DeviceAgent agent(1, device,
                              protocol::ClientEndpoint(channel));

    // Honest parties run a batch of authentications.
    const int sessions = 24;
    int accepted = 0;
    for (int s = 0; s < sessions; ++s) {
        agent.requestAuthentication();
        server::runExchange(server, server_end, agent);
        if (agent.lastDecision() && agent.lastDecision()->accepted)
            ++accepted;
    }
    std::cout << "honest sessions: " << accepted << "/" << sessions
              << " accepted; attacker observed " << wiretap.size()
              << " frames\n";

    // The attacker decodes CRPs from the transcript and trains.
    auto crps = wiretap.observedCrps();
    std::size_t observed_bits = 0;
    attack::DistanceFieldModel model(chip.geometry());
    for (const auto &[challenge, response] : crps) {
        for (std::size_t i = 0; i < challenge.size(); ++i) {
            model.train(challenge.bits[i], response.get(i));
            ++observed_bits;
        }
    }
    std::cout << "attacker trained on " << crps.size()
              << " transcripts (" << observed_bits << " CRP bits)\n";

    // Measure prediction accuracy against fresh honest sessions.
    auto measure = [&]() {
        std::size_t correct = 0;
        std::size_t total = 0;
        std::size_t before = wiretap.observedCrps().size();
        for (int s = 0; s < 6; ++s) {
            agent.requestAuthentication();
            server::runExchange(server, server_end, agent);
        }
        auto all = wiretap.observedCrps();
        for (std::size_t idx = before; idx < all.size(); ++idx) {
            const auto &[challenge, response] = all[idx];
            for (std::size_t i = 0; i < challenge.size(); ++i) {
                correct += model.predict(challenge.bits[i]) ==
                           response.get(i);
                ++total;
            }
        }
        return total ? static_cast<double>(correct) /
                           static_cast<double>(total)
                     : 0.0;
    };

    double acc_trained = measure();
    std::cout << "\nprediction accuracy on fresh sessions: "
              << acc_trained * 100.0 << "% (coin flip = 50%)\n";

    // Countermeasure: the server rotates the logical map. The
    // attacker's learned field describes the *old* coordinate space.
    server.startRemap(1, server_end);
    server::runExchange(server, server_end, agent);
    std::cout << "\nserver initiated remap; committed: "
              << server.remapsCommitted() << "\n";

    double acc_after = measure();
    std::cout << "prediction accuracy after remap: "
              << acc_after * 100.0 << "%\n";

    std::cout << "\nreading: accuracy above 50% lets the attacker "
                 "predict responses; rotating K_A resets the model to "
                 "chance, so the server should remap before the "
                 "observed-CRP budget is reached (Sec 6.7).\n";
    return 0;
}
