#!/usr/bin/env python3
"""Perf-trajectory regression gate.

Compares a fresh bench_runner output against a checked-in baseline
(BENCH_hotpath.json / BENCH_server.json at the repo root) and exits
non-zero on regression. See EXPERIMENTS.md "Perf trajectory" for the
schema and the baseline-update policy.

Two modes:

  absolute (default)
      Every benchmark series (matched on name+simd) must hold
      ops_per_s within --threshold (default 10%) of the baseline.
      Only meaningful when baseline and current ran on comparable
      hardware -- a developer box against its own previous run.

  --ratios-only
      Only the "derived" ratios (SIMD speedup over scalar, durable
      overhead, thread scaling) and the baseline's "floors" are
      enforced. Ratios divide out the host's absolute speed, so this
      is the mode CI uses on anonymous runners.

In both modes the "floors" object in the *baseline* file is enforced
against the *current* derived ratios (e.g. the nearest-error SIMD
scan must stay >= 2x over scalar) -- unless the current run detected
a CPU without the wide instruction set (floors assume the baseline's
detected_simd is available).

Usage:
  tools/bench_compare.py BASELINE CURRENT [BASELINE2 CURRENT2 ...]
      [--threshold 0.10] [--ratios-only]
"""

import argparse
import json
import sys

# Derived ratios below this are treated as "width unavailable on this
# host" rather than a regression (a scalar-only CI runner can't hold
# a SIMD speedup floor).
_SAME_WIDTH = 1.001


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def series_map(doc):
    return {(s["name"], s["simd"]): s
            for s in doc.get("benchmarks", [])}


def compare_pair(baseline_path, current_path, threshold,
                 ratios_only):
    base = load(baseline_path)
    cur = load(current_path)
    failures = []
    notes = []

    if base.get("schema") != cur.get("schema"):
        failures.append(
            f"schema mismatch: baseline {base.get('schema')} vs "
            f"current {cur.get('schema')}")
        return failures, notes

    if base.get("quick") != cur.get("quick"):
        notes.append(
            f"note: quick={base.get('quick')} baseline vs "
            f"quick={cur.get('quick')} current -- absolute numbers "
            "are not comparable; ratios still are")

    same_width = (base.get("detected_simd") ==
                  cur.get("detected_simd"))

    # Benchmark-set drift is reported in *both* modes: a silently
    # vanished series is how a gate stops gating. In absolute mode a
    # removal is also a failure; in ratios-only mode it stays a note
    # (CI runners enforce ratios/floors, not series identity).
    bmap, cmap = series_map(base), series_map(cur)
    for key in sorted(set(cmap) - set(bmap)):
        notes.append(
            f"note: benchmark added: {key[0]} [{key[1]}] "
            "(in current, no baseline series)")
    for key in sorted(set(bmap) - set(cmap)):
        notes.append(
            f"note: benchmark removed: {key[0]} [{key[1]}] "
            "(in baseline, missing from current)")

    if not ratios_only:
        for key, bs in sorted(bmap.items()):
            cs = cmap.get(key)
            if cs is None:
                failures.append(
                    f"{key[0]} [{key[1]}]: missing from current run")
                continue
            floor = bs["ops_per_s"] * (1.0 - threshold)
            if cs["ops_per_s"] < floor:
                failures.append(
                    f"{key[0]} [{key[1]}]: {cs['ops_per_s']:.0f} "
                    f"ops/s < {floor:.0f} "
                    f"(baseline {bs['ops_per_s']:.0f}, "
                    f"threshold {threshold:.0%})")

    bder = base.get("derived", {})
    cder = cur.get("derived", {})
    for name, bval in sorted(bder.items()):
        cval = cder.get(name)
        if cval is None:
            failures.append(f"derived {name}: missing from current")
            continue
        if bval <= _SAME_WIDTH:
            continue  # Baseline itself saw no headroom; nothing to hold.
        if not same_width and cval <= _SAME_WIDTH:
            notes.append(
                f"note: derived {name} skipped (current host lacks "
                f"{base.get('detected_simd')})")
            continue
        floor = bval * (1.0 - threshold)
        if cval < floor:
            failures.append(
                f"derived {name}: {cval:.3f} < {floor:.3f} "
                f"(baseline {bval:.3f}, threshold {threshold:.0%})")

    for name, floor in sorted(base.get("floors", {}).items()):
        cval = cder.get(name)
        if cval is None:
            failures.append(f"floor {name}: missing from current")
            continue
        if not same_width and cval <= _SAME_WIDTH:
            notes.append(
                f"note: floor {name} skipped (current host lacks "
                f"{base.get('detected_simd')})")
            continue
        if cval < floor:
            failures.append(
                f"floor {name}: {cval:.3f} < required {floor:.3f}")

    return failures, notes


def main():
    ap = argparse.ArgumentParser(
        description="Perf-trajectory regression gate")
    ap.add_argument("files", nargs="+",
                    help="BASELINE CURRENT file pairs")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed fractional regression "
                         "(default 0.10)")
    ap.add_argument("--ratios-only", action="store_true",
                    help="enforce only derived ratios and floors "
                         "(hardware-independent; CI mode)")
    args = ap.parse_args()

    if len(args.files) % 2 != 0:
        ap.error("files must come in BASELINE CURRENT pairs")

    any_failures = False
    for i in range(0, len(args.files), 2):
        baseline, current = args.files[i], args.files[i + 1]
        failures, notes = compare_pair(
            baseline, current, args.threshold, args.ratios_only)
        tag = f"[{baseline} vs {current}]"
        for n in notes:
            print(f"{tag} {n}")
        for f in failures:
            print(f"{tag} FAIL: {f}", file=sys.stderr)
            any_failures = True
        if not failures:
            print(f"{tag} OK"
                  + (" (ratios-only)" if args.ratios_only else ""))

    return 1 if any_failures else 0


if __name__ == "__main__":
    sys.exit(main())
