#include "source_model.hpp"

#include <cctype>
#include <cstdlib>
#include <set>

#include "lint_core.hpp"

namespace authenticache::lint {

namespace {

constexpr std::size_t npos = std::string::npos;

bool
isIdentStart(char c)
{
    return (std::isalpha(static_cast<unsigned char>(c)) != 0) ||
           c == '_';
}

std::size_t
skipWs(const std::string &s, std::size_t p)
{
    while (p < s.size() &&
           std::isspace(static_cast<unsigned char>(s[p])))
        ++p;
    return p;
}

/** Index of the delimiter matching s[open], or npos. */
std::size_t
matchForward(const std::string &s, std::size_t open, char oc, char cc)
{
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        if (s[i] == oc)
            ++depth;
        else if (s[i] == cc && --depth == 0)
            return i;
    }
    return npos;
}

std::string
readIdent(const std::string &s, std::size_t p, std::size_t *end)
{
    std::string out;
    if (p < s.size() && isIdentStart(s[p])) {
        while (p < s.size() && isIdentChar(s[p]))
            out += s[p++];
    }
    if (end != nullptr)
        *end = p;
    return out;
}

/** Identifier whose last character sits just before @p p (skipping
 *  whitespace backwards); empty if none. */
std::string
identEndingBefore(const std::string &s, std::size_t p)
{
    while (p > 0 &&
           std::isspace(static_cast<unsigned char>(s[p - 1])))
        --p;
    std::size_t e = p;
    while (p > 0 && isIdentChar(s[p - 1]))
        --p;
    return s.substr(p, e - p);
}

bool
isAnnotationMacro(const std::string &w)
{
    return w.rfind("AUTH_", 0) == 0 || w == "decltype" ||
           w == "alignas" || w == "noexcept";
}

std::vector<std::string>
identTokens(const std::string &s)
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < s.size();) {
        if (isIdentStart(s[i])) {
            std::size_t e = i;
            out.push_back(readIdent(s, i, &e));
            i = e;
        } else {
            ++i;
        }
    }
    return out;
}

void
extractIncludes(const std::vector<std::string> &raw_lines,
                std::vector<std::string> &out)
{
    for (const auto &line : raw_lines) {
        std::size_t p = skipWs(line, 0);
        if (p >= line.size() || line[p] != '#')
            continue;
        p = skipWs(line, p + 1);
        if (line.compare(p, 7, "include") != 0)
            continue;
        p = skipWs(line, p + 7);
        if (p >= line.size() || line[p] != '"')
            continue;
        const std::size_t close = line.find('"', p + 1);
        if (close == npos)
            continue;
        out.push_back(line.substr(p + 1, close - p - 1));
    }
}

void
extractEnums(const std::string &s, std::vector<EnumDef> &out)
{
    for (std::size_t pos : findToken(s, "enum")) {
        std::size_t p = skipWs(s, pos + 4);
        std::size_t e = p;
        std::string word = readIdent(s, p, &e);
        if (word == "class" || word == "struct") {
            p = skipWs(s, e);
            word = readIdent(s, p, &e);
        }
        if (word.empty())
            continue; // Anonymous enum: never a contract target.
        p = skipWs(s, e);
        // Optional underlying type, then the body (or a fwd decl).
        while (p < s.size() && s[p] != '{' && s[p] != ';')
            ++p;
        if (p >= s.size() || s[p] != '{')
            continue;
        const std::size_t close = matchForward(s, p, '{', '}');
        if (close == npos)
            continue;
        EnumDef def;
        def.name = word;
        def.line = lineOfOffset(s, pos);
        long long next_value = 0;
        std::size_t item = p + 1;
        while (item < close) {
            std::size_t comma = item;
            int depth = 0;
            for (; comma < close; ++comma) {
                const char c = s[comma];
                if (c == '(' || c == '{' || c == '<')
                    ++depth;
                else if (c == ')' || c == '}' || c == '>')
                    --depth;
                else if (c == ',' && depth == 0)
                    break;
            }
            std::size_t q = skipWs(s, item);
            std::size_t qe = q;
            const std::string name = readIdent(s, q, &qe);
            if (!name.empty()) {
                long long value = next_value;
                const std::size_t eq =
                    s.find('=', qe) < comma ? s.find('=', qe) : npos;
                if (eq != npos && eq < comma)
                    value = std::strtoll(s.c_str() + eq + 1, nullptr,
                                         0);
                def.enumerators.push_back({name, value});
                next_value = value + 1;
            }
            item = comma + 1;
        }
        if (!def.enumerators.empty())
            out.push_back(def);
    }
}

void
extractSwitches(const std::string &s, std::vector<SwitchDef> &out)
{
    for (std::size_t pos : findToken(s, "switch")) {
        std::size_t p = skipWs(s, pos + 6);
        if (p >= s.size() || s[p] != '(')
            continue;
        const std::size_t cend = matchForward(s, p, '(', ')');
        if (cend == npos)
            continue;
        std::size_t bp = skipWs(s, cend + 1);
        if (bp >= s.size() || s[bp] != '{')
            continue;
        const std::size_t bend = matchForward(s, bp, '{', '}');
        if (bend == npos)
            continue;
        const std::string body = s.substr(bp, bend - bp + 1);
        SwitchDef def;
        def.line = lineOfOffset(s, pos);
        for (std::size_t cp : findToken(body, "case")) {
            const std::size_t colon_limit = body.find(';', cp);
            std::string last;
            std::size_t q = cp + 4;
            while (q < body.size() &&
                   (colon_limit == npos || q < colon_limit)) {
                if (body[q] == ':' &&
                    (q + 1 >= body.size() || body[q + 1] != ':') &&
                    (q == 0 || body[q - 1] != ':'))
                    break;
                if (isIdentStart(body[q])) {
                    last = readIdent(body, q, &q);
                    continue;
                }
                ++q;
            }
            if (!last.empty())
                def.caseNames.push_back(last);
        }
        for (std::size_t dp : findToken(body, "default")) {
            const std::size_t q = skipWs(body, dp + 7);
            if (q < body.size() && body[q] == ':')
                def.hasDefault = true;
        }
        out.push_back(def);
    }
}

/**
 * Classify one member-declaration statement (annotation macros and
 * initializers included in the text) and append it as a field.
 * @p stmt_begin / @p stmt_end delimit the statement in @p s, with the
 * trailing ';' / '{' excluded.
 */
void
finalizeField(const std::string &s, std::size_t stmt_begin,
              std::size_t stmt_end, ClassDef &cls)
{
    const std::string stmt =
        s.substr(stmt_begin, stmt_end - stmt_begin);

    // The declarator part: everything before the first annotation
    // macro, initializer, or array extent.
    std::size_t cut = stmt.size();
    for (const char *macro :
         {"AUTH_GUARDED_BY", "AUTH_PT_GUARDED_BY",
          "AUTH_ACQUIRED_BEFORE", "AUTH_ACQUIRED_AFTER"}) {
        const auto hits = findToken(stmt, macro);
        if (!hits.empty() && hits.front() < cut)
            cut = hits.front();
    }
    for (const char c : {'=', '['}) {
        const std::size_t p = stmt.find(c);
        if (p != npos && p < cut)
            cut = p;
    }
    const std::string decl = stmt.substr(0, cut);

    const auto tokens = identTokens(decl);
    if (tokens.empty())
        return;
    static const std::set<std::string> skip_first = {
        "using",  "friend",  "typedef",   "static", "template",
        "enum",   "struct",  "class",     "union",  "public",
        "private", "protected", "operator"};
    if (skip_first.count(tokens.front()) != 0 ||
        tokens.back() == "operator")
        return;

    FieldDef field;
    field.name = tokens.back();
    // Anchor the diagnostic at the declarator's last identifier.
    const auto name_hits = findToken(decl, field.name);
    const std::size_t name_off =
        name_hits.empty() ? 0 : name_hits.back();
    field.line = lineOfOffset(s, stmt_begin + name_off);
    field.guarded = !findToken(stmt, "AUTH_GUARDED_BY").empty() ||
                    !findToken(stmt, "AUTH_PT_GUARDED_BY").empty();
    field.mutexLike = !findToken(decl, "Mutex").empty() ||
                      !findToken(decl, "SharedMutex").empty();
    field.waitable = !findToken(decl, "CondVar").empty() ||
                     !findToken(decl, "condition_variable").empty();
    field.isAtomic = !findToken(decl, "atomic").empty();
    // const pointers-to-const stay mutable; only a const value (no
    // top-level '*') is immutable by construction.
    field.isConst = (!findToken(decl, "const").empty() ||
                     !findToken(decl, "constexpr").empty()) &&
                    decl.find('*') == npos;
    field.isRef = decl.find('&') != npos;
    cls.fields.push_back(field);
}

void
parseClassBody(const std::string &s, std::size_t body_open,
               std::size_t body_close, ClassDef &cls)
{
    std::size_t i = body_open + 1;
    std::size_t stmt_begin = i;
    bool saw_call_paren = false;
    bool in_init = false;
    int angle_depth = 0;
    const auto reset = [&](std::size_t next) {
        i = next;
        stmt_begin = next;
        saw_call_paren = false;
        in_init = false;
        angle_depth = 0;
    };
    while (i < body_close) {
        const char c = s[i];
        if (c == '(') {
            const std::size_t close = matchForward(s, i, '(', ')');
            if (close == npos || close > body_close)
                return;
            if (!in_init && angle_depth == 0 &&
                !isAnnotationMacro(identEndingBefore(s, i)))
                saw_call_paren = true;
            i = close + 1;
            continue;
        }
        if (c == '<' && !in_init) {
            ++angle_depth;
            ++i;
            continue;
        }
        if (c == '>' && !in_init) {
            if (angle_depth > 0)
                --angle_depth;
            ++i;
            continue;
        }
        if (c == '=' && !in_init && angle_depth == 0) {
            in_init = true;
            ++i;
            continue;
        }
        if (c == '{') {
            const std::size_t close = matchForward(s, i, '{', '}');
            if (close == npos || close > body_close)
                return;
            if (in_init) {
                i = close + 1;
                continue;
            }
            std::size_t q = skipWs(s, stmt_begin);
            std::size_t qe = q;
            const std::string first = readIdent(s, q, &qe);
            if (saw_call_paren || first == "enum" ||
                first == "struct" || first == "class" ||
                first == "union") {
                // Inline function body or nested type: skip it.
                i = skipWs(s, close + 1);
                if (i < body_close && s[i] == ';')
                    ++i;
                reset(i);
                continue;
            }
            // Brace-initialized field.
            finalizeField(s, stmt_begin, i, cls);
            i = skipWs(s, close + 1);
            if (i < body_close && s[i] == ';')
                ++i;
            reset(i);
            continue;
        }
        if (c == ';') {
            if (!saw_call_paren)
                finalizeField(s, stmt_begin, i, cls);
            reset(i + 1);
            continue;
        }
        if (c == ':' && !in_init &&
            (i + 1 >= s.size() || s[i + 1] != ':') &&
            (i == 0 || s[i - 1] != ':')) {
            std::size_t q = skipWs(s, stmt_begin);
            std::size_t qe = q;
            const std::string word = readIdent(s, q, &qe);
            if ((word == "public" || word == "private" ||
                 word == "protected") &&
                skipWs(s, qe) >= i) {
                reset(i + 1);
                continue;
            }
        }
        ++i;
    }
}

void
extractClasses(const std::string &s, std::vector<ClassDef> &out)
{
    std::vector<std::size_t> starts = findToken(s, "class");
    for (std::size_t p : findToken(s, "struct"))
        starts.push_back(p);
    for (std::size_t pos : starts) {
        const std::string prev = identEndingBefore(s, pos);
        if (prev == "enum" || prev == "friend")
            continue;
        const std::size_t kw_len = s[pos] == 'c' ? 5 : 6;
        std::size_t p = skipWs(s, pos + kw_len);
        std::size_t e = p;
        const std::string name = readIdent(s, p, &e);
        if (name.empty())
            continue;
        p = skipWs(s, e);
        std::size_t fe = p;
        if (readIdent(s, p, &fe) == "final")
            p = skipWs(s, fe);
        if (p < s.size() && s[p] == ':') {
            // Base list: advance to the body brace (template
            // arguments and parens balanced).
            int depth = 0;
            for (; p < s.size(); ++p) {
                const char c = s[p];
                if (c == '<' || c == '(')
                    ++depth;
                else if (c == '>' || c == ')')
                    --depth;
                else if ((c == '{' || c == ';') && depth == 0)
                    break;
            }
        }
        if (p >= s.size() || s[p] != '{')
            continue; // Fwd decl, template parameter, variable decl.
        const std::size_t close = matchForward(s, p, '{', '}');
        if (close == npos)
            continue;
        ClassDef def;
        def.name = name;
        def.line = lineOfOffset(s, pos);
        parseClassBody(s, p, close, def);
        out.push_back(def);
    }
}

bool
isStmtKeyword(const std::string &w)
{
    static const std::set<std::string> kw = {
        "if",     "for",    "while",    "switch", "catch",
        "return", "sizeof", "alignof",  "new",    "delete",
        "throw",  "static_assert", "decltype", "typeid",
        "assert", "co_return", "co_await", "co_yield"};
    return kw.count(w) != 0;
}

/** Advance past a constructor member-init list; returns the offset of
 *  the body '{', or npos when the shape is not an init list. */
std::size_t
skipCtorInitList(const std::string &s, std::size_t p)
{
    while (true) {
        p = skipWs(s, p);
        // Member name, possibly qualified.
        std::size_t e = p;
        if (readIdent(s, p, &e).empty())
            return npos;
        while (e + 1 < s.size() && s[e] == ':' && s[e + 1] == ':') {
            std::size_t f = e + 2;
            if (readIdent(s, f, &f).empty())
                return npos;
            e = f;
        }
        p = skipWs(s, e);
        if (p >= s.size() || (s[p] != '(' && s[p] != '{'))
            return npos;
        const std::size_t close =
            s[p] == '(' ? matchForward(s, p, '(', ')')
                        : matchForward(s, p, '{', '}');
        if (close == npos)
            return npos;
        p = skipWs(s, close + 1);
        if (p < s.size() && s[p] == ',') {
            ++p;
            continue;
        }
        if (p < s.size() && s[p] == '{')
            return p;
        return npos;
    }
}

void
extractFunctions(const std::string &s, std::vector<FunctionDef> &out)
{
    std::size_t i = 0;
    while (i < s.size()) {
        if (!isIdentStart(s[i])) {
            ++i;
            continue;
        }
        const std::size_t b = i;
        const std::string name = readIdent(s, i, &i);
        if (isStmtKeyword(name))
            continue;
        std::size_t p = skipWs(s, i);
        if (p >= s.size() || s[p] != '(')
            continue;
        const std::size_t close = matchForward(s, p, '(', ')');
        if (close == npos)
            break;
        std::size_t q = close + 1;
        bool fail = false;
        while (true) {
            q = skipWs(s, q);
            if (q >= s.size()) {
                fail = true;
                break;
            }
            const char c = s[q];
            if (c == '{')
                break;
            if (isIdentStart(c)) {
                std::size_t e = q;
                const std::string w = readIdent(s, q, &e);
                if (w == "const" || w == "noexcept" ||
                    w == "override" || w == "final" ||
                    w == "mutable" || w.rfind("AUTH_", 0) == 0) {
                    q = skipWs(s, e);
                    if (q < s.size() && s[q] == '(') {
                        const std::size_t mc =
                            matchForward(s, q, '(', ')');
                        if (mc == npos) {
                            fail = true;
                            break;
                        }
                        q = mc + 1;
                    }
                    continue;
                }
                fail = true;
                break;
            }
            if (c == '-' && q + 1 < s.size() && s[q + 1] == '>') {
                // Trailing return type: consume up to the body.
                q += 2;
                while (q < s.size() && s[q] != '{' && s[q] != ';') {
                    if (s[q] == '(') {
                        const std::size_t mc =
                            matchForward(s, q, '(', ')');
                        if (mc == npos)
                            break;
                        q = mc + 1;
                    } else {
                        ++q;
                    }
                }
                continue;
            }
            if (c == ':' &&
                (q + 1 >= s.size() || s[q + 1] != ':')) {
                const std::size_t body = skipCtorInitList(s, q + 1);
                if (body == npos) {
                    fail = true;
                    break;
                }
                q = body;
                continue;
            }
            fail = true;
            break;
        }
        if (fail)
            continue;
        const std::size_t body_close = matchForward(s, q, '{', '}');
        if (body_close == npos)
            break;
        FunctionDef fn;
        fn.name = name;
        fn.line = lineOfOffset(s, b);
        fn.bodyOffset = q;
        fn.body = s.substr(q, body_close - q + 1);
        out.push_back(fn);
        i = body_close + 1;
    }
}

void
extractStatsCalls(const std::string &stripped, const std::string &raw,
                  std::vector<StatsCall> &out)
{
    for (const char *method : {"set(", "add("}) {
        for (std::size_t pos : findToken(stripped, method)) {
            if (pos == 0 || stripped[pos - 1] != '.')
                continue;
            const std::size_t open = stripped.find('(', pos);
            const std::size_t close =
                matchForward(stripped, open, '(', ')');
            if (close == npos)
                continue;
            // Top-level comma split of the argument list.
            std::vector<std::pair<std::size_t, std::size_t>> args;
            std::size_t arg_begin = open + 1;
            int depth = 0;
            for (std::size_t q = open + 1; q <= close; ++q) {
                const char c = stripped[q];
                if (c == '(' || c == '{' || c == '[') {
                    ++depth;
                } else if (c == ')' || c == '}' || c == ']') {
                    if (q == close) {
                        args.emplace_back(arg_begin, q);
                        break;
                    }
                    --depth;
                } else if (c == ',' && depth == 0) {
                    args.emplace_back(arg_begin, q);
                    arg_begin = q + 1;
                }
            }
            if (args.size() < 3)
                continue; // set/add(component, name, value).
            const auto literalIn =
                [&raw](std::size_t b, std::size_t e) -> std::string {
                const std::size_t q1 = raw.find('"', b);
                if (q1 == npos || q1 >= e)
                    return "";
                const std::size_t q2 = raw.find('"', q1 + 1);
                if (q2 == npos || q2 > e)
                    return "";
                return raw.substr(q1 + 1, q2 - q1 - 1);
            };
            const std::string key =
                literalIn(args[1].first, args[1].second);
            if (key.empty())
                continue; // Key is a variable: not a literal to check.
            StatsCall call;
            call.method = std::string(method, 3);
            call.component =
                literalIn(args[0].first, args[0].second);
            call.keyName = key;
            call.line = lineOfOffset(stripped, pos);
            out.push_back(call);
        }
    }
}

} // namespace

SourceModel
buildSourceModel(const std::string &label,
                 const std::string &contents)
{
    SourceModel model;
    model.label = label;
    model.raw = contents;
    model.stripped = stripCommentsAndStrings(contents);
    model.rawLines = splitLines(contents);
    extractIncludes(model.rawLines, model.includes);
    extractEnums(model.stripped, model.enums);
    extractSwitches(model.stripped, model.switches);
    extractClasses(model.stripped, model.classes);
    extractFunctions(model.stripped, model.functions);
    extractStatsCalls(model.stripped, model.raw, model.statsCalls);
    return model;
}

} // namespace authenticache::lint
