/**
 * @file
 * Shared scanning substrate for the project lints (determinism lint,
 * invariant lint). The core primitive is stripCommentsAndStrings: a
 * state machine that blanks comments and string/char literals while
 * preserving offsets and newlines, so token searches never trip on
 * prose and every hit maps back to a real source line. On top of that
 * sit identifier-boundary token search, the `// LINT:allow(rule)`
 * escape hatch, and the Finding record all lints report.
 */

#ifndef AUTH_TOOLS_LINT_LINT_CORE_HPP
#define AUTH_TOOLS_LINT_LINT_CORE_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace authenticache::lint {

/** One rule violation, with a file:line anchor for the diagnostic. */
struct Finding
{
    std::string file; ///< Path label as given to the lint entry point.
    std::size_t line = 0;
    std::string rule;
    std::string message;

    /**
     * Stable identity for baseline matching: line-number-free, so a
     * baselined finding survives unrelated edits above it. Empty for
     * lints that do not support baselining (determinism lint).
     */
    std::string key = {};
};

bool isIdentChar(char c);

/**
 * Replace comments and string/char literals with spaces (newlines
 * kept, so line numbers survive). Handles //, block comments, escape
 * sequences, and the simple R"( ... )" raw-string form.
 */
std::string stripCommentsAndStrings(const std::string &text);

/** 1-based line number of @p offset within @p text. */
std::size_t lineOfOffset(const std::string &text, std::size_t offset);

std::vector<std::string> splitLines(const std::string &text);

/** `// LINT:allow(rule)` on the finding's line or the line above. */
bool allowedByComment(const std::vector<std::string> &raw_lines,
                      std::size_t line, const std::string &rule);

/** True when @p path contains any of @p fragments as a substring. */
bool pathMatchesAny(const std::vector<std::string> &fragments,
                    const std::string &path);

/** All offsets where @p token occurs as a standalone identifier (not
 *  preceded/followed by identifier chars). A trailing '(' in the
 *  token pins call sites specifically. */
std::vector<std::size_t> findToken(const std::string &text,
                                   const std::string &token);

} // namespace authenticache::lint

#endif // AUTH_TOOLS_LINT_LINT_CORE_HPP
