/**
 * @file
 * Per-file source model for the invariant lint: a lightweight,
 * token-level extraction of the declarations and statements the
 * cross-file rules reason about. This is deliberately not a C++
 * parser -- it relies on the project's clang-format conventions and
 * errs toward recall, with the LINT:allow escape hatch and the
 * baseline absorbing the residue.
 *
 * Extracted facts (all offsets into the comment/string-stripped text,
 * so line numbers survive):
 *   - named enum definitions with enumerator names and values
 *   - switch statements: case-label names and default: presence
 *   - quoted #include directives (project-relative paths)
 *   - class/struct definitions with data-member classification
 *     (GUARDED_BY annotation, const, reference, mutex, condvar,
 *     atomic) for the lock-annotation rule
 *   - function bodies with their names, for ordered-call-sequence
 *     scans (sync-before-reply) and site-scoped exhaustiveness checks
 *   - StatsRegistry set()/add() calls whose key argument is a string
 *     literal, for the stats-key registry rule
 */

#ifndef AUTH_TOOLS_LINT_SOURCE_MODEL_HPP
#define AUTH_TOOLS_LINT_SOURCE_MODEL_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace authenticache::lint {

struct EnumeratorDef
{
    std::string name;
    long long value = 0;
};

struct EnumDef
{
    std::string name;
    std::size_t line = 0;
    std::vector<EnumeratorDef> enumerators;
};

struct SwitchDef
{
    std::size_t line = 0;
    bool hasDefault = false;
    /** Last identifier of each case label (MessageType::X -> X). */
    std::vector<std::string> caseNames;
};

struct FieldDef
{
    std::string name;
    std::size_t line = 0;
    bool guarded = false;   ///< AUTH_GUARDED_BY / AUTH_PT_GUARDED_BY
    bool isConst = false;   ///< const/constexpr value (not ptr-to-const)
    bool isRef = false;
    bool mutexLike = false; ///< util::Mutex / util::SharedMutex
    bool waitable = false;  ///< CondVar / condition_variable
    bool isAtomic = false;
};

struct ClassDef
{
    std::string name;
    std::size_t line = 0;
    std::vector<FieldDef> fields;

    bool holdsMutex() const
    {
        for (const auto &f : fields)
            if (f.mutexLike)
                return true;
        return false;
    }
};

struct FunctionDef
{
    std::string name;
    std::size_t line = 0;
    std::size_t bodyOffset = 0; ///< Offset of '{' in the stripped text.
    std::string body;           ///< Stripped body text, braces included.
};

struct StatsCall
{
    std::string method;    ///< "set" or "add"
    std::string component; ///< First-arg literal, or "" if a variable.
    std::string keyName;   ///< Second-arg string literal.
    std::size_t line = 0;
};

struct SourceModel
{
    std::string label; ///< Repo-relative path, forward slashes.
    std::string raw;
    std::string stripped;
    std::vector<std::string> rawLines;
    std::vector<std::string> includes; ///< Quoted includes, verbatim.
    std::vector<EnumDef> enums;
    std::vector<SwitchDef> switches;
    std::vector<ClassDef> classes;
    std::vector<FunctionDef> functions;
    std::vector<StatsCall> statsCalls;
};

SourceModel buildSourceModel(const std::string &label,
                             const std::string &contents);

} // namespace authenticache::lint

#endif // AUTH_TOOLS_LINT_SOURCE_MODEL_HPP
