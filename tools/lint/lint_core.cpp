#include "lint_core.hpp"

#include <algorithm>
#include <cctype>

namespace authenticache::lint {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out = text;
    enum class State { Code, Line, Block, Str, Chr, Raw } st =
        State::Code;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        const char nx = i + 1 < out.size() ? out[i + 1] : '\0';
        switch (st) {
          case State::Code:
            if (c == '/' && nx == '/') {
                st = State::Line;
                out[i] = ' ';
            } else if (c == '/' && nx == '*') {
                st = State::Block;
                out[i] = ' ';
            } else if (c == 'R' && nx == '"' &&
                       (i == 0 || !isIdentChar(out[i - 1]))) {
                st = State::Raw;
                out[i] = ' ';
            } else if (c == '"') {
                st = State::Str;
                out[i] = ' ';
            } else if (c == '\'' && i > 0 && !isIdentChar(out[i - 1])) {
                // Identifier check skips digit separators (1'000).
                st = State::Chr;
                out[i] = ' ';
            }
            break;
          case State::Line:
            if (c == '\n')
                st = State::Code;
            else
                out[i] = ' ';
            break;
          case State::Block:
            if (c == '*' && nx == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Str:
            if (c == '\\' && nx != '\0') {
                out[i] = ' ';
                if (nx != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                out[i] = ' ';
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Chr:
            if (c == '\\' && nx != '\0') {
                out[i] = ' ';
                if (nx != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                out[i] = ' ';
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Raw:
            // Plain R"( ... )" only -- no custom delimiters in-tree.
            if (c == ')' && nx == '"') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

std::size_t
lineOfOffset(const std::string &text, std::size_t offset)
{
    return static_cast<std::size_t>(
               std::count(text.begin(), text.begin() + offset, '\n')) +
           1;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    lines.push_back(cur);
    return lines;
}

bool
allowedByComment(const std::vector<std::string> &raw_lines,
                 std::size_t line, const std::string &rule)
{
    const std::string needle = "LINT:allow(" + rule + ")";
    for (std::size_t l : {line, line - 1}) {
        if (l >= 1 && l <= raw_lines.size() &&
            raw_lines[l - 1].find(needle) != std::string::npos)
            return true;
    }
    return false;
}

bool
pathMatchesAny(const std::vector<std::string> &fragments,
               const std::string &path)
{
    for (const auto &fragment : fragments) {
        if (path.find(fragment) != std::string::npos)
            return true;
    }
    return false;
}

std::vector<std::size_t>
findToken(const std::string &text, const std::string &token)
{
    std::vector<std::size_t> hits;
    const bool call = !token.empty() && token.back() == '(';
    const std::string word =
        call ? token.substr(0, token.size() - 1) : token;
    std::size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        const bool lead_ok =
            pos == 0 || !isIdentChar(text[pos - 1]);
        std::size_t end = pos + word.size();
        bool trail_ok;
        if (call) {
            // Allow whitespace between the name and the paren.
            std::size_t p = end;
            while (p < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[p])) &&
                   text[p] != '\n')
                ++p;
            trail_ok = p < text.size() && text[p] == '(';
        } else {
            trail_ok = end >= text.size() || !isIdentChar(text[end]);
        }
        if (lead_ok && trail_ok)
            hits.push_back(pos);
        pos = end;
    }
    return hits;
}

} // namespace authenticache::lint
