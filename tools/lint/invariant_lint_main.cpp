/**
 * @file
 * CLI for the invariant lint (see invariant_lint.hpp). Run by ctest
 * (InvariantLint.Tree) and the static-analysis CI job:
 *
 *   invariant_lint [--list-rules] [--baseline FILE]
 *                  [--update-baseline] [--json FILE] <repo-root>
 *
 * Exit 0: clean (baselined findings tolerated). Exit 1: unbaselined
 * findings, or stale baseline entries (the ratchet only shrinks).
 * Exit 2: usage / I/O error.
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "invariant_lint.hpp"

int
main(int argc, char **argv)
{
    using namespace authenticache::lint;
    const InvariantOptions options = InvariantOptions::defaults();

    const char *root = nullptr;
    const char *baseline_path = nullptr;
    const char *json_path = nullptr;
    bool update_baseline = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list-rules") == 0) {
            for (const auto &[rule, summary] :
                 invariantRuleInventory())
                std::cout << rule << ": " << summary << "\n";
            return 0;
        }
        if (std::strcmp(argv[i], "--baseline") == 0 &&
            i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--update-baseline") == 0) {
            update_baseline = true;
        } else if (root == nullptr) {
            root = argv[i];
        } else {
            root = nullptr;
            break;
        }
    }
    if (root == nullptr || (update_baseline && baseline_path == nullptr)) {
        std::cerr << "usage: invariant_lint [--list-rules] "
                     "[--baseline FILE] [--update-baseline] "
                     "[--json FILE] <repo-root>\n";
        return 2;
    }

    std::vector<std::string> baseline;
    if (baseline_path != nullptr && !update_baseline)
        baseline = loadBaselineFile(baseline_path);

    const InvariantReport report =
        lintInvariantTree(root, options, baseline);

    if (update_baseline) {
        std::ofstream out(baseline_path);
        if (!out.good()) {
            std::cerr << "invariant_lint: cannot write "
                      << baseline_path << "\n";
            return 2;
        }
        out << "# Invariant-lint baseline (ratchet: shrink-only).\n"
               "# One finding key per line; '#' comments allowed.\n"
               "# Regenerate: invariant_lint --baseline <this> "
               "--update-baseline <repo-root>\n";
        for (const auto &f : report.findings)
            out << f.key << "\n";
        std::cout << "invariant_lint: wrote " << baseline_path
                  << " with " << report.findings.size()
                  << " entr(ies)\n";
        return 0;
    }

    if (json_path != nullptr) {
        std::ofstream out(json_path);
        if (!out.good()) {
            std::cerr << "invariant_lint: cannot write " << json_path
                      << "\n";
            return 2;
        }
        out << reportToJson(report);
    }

    for (const auto &f : report.findings)
        std::cerr << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n    baseline key: "
                  << f.key << "\n";
    for (const auto &stale : report.staleBaseline)
        std::cerr << "stale baseline entry (violation fixed -- "
                     "delete the line): "
                  << stale << "\n";
    if (!report.findings.empty() || !report.staleBaseline.empty()) {
        std::cerr << report.findings.size() << " finding(s), "
                  << report.staleBaseline.size()
                  << " stale baseline entr(ies); see "
                     "tools/lint/invariant_lint.hpp for the rule "
                     "inventory, the LINT:allow escape hatch and the "
                     "baseline ratchet\n";
        return 1;
    }
    return 0;
}
