/**
 * @file
 * CLI for the determinism lint (see determinism_lint.hpp). Run by
 * ctest (DeterminismLint.Tree) and the static-analysis CI job:
 *
 *   determinism_lint [--list-rules] <dir-or-file>...
 *
 * Exit 0: clean. Exit 1: findings (printed as file:line: [rule] msg).
 */

#include <cstring>
#include <iostream>

#include "determinism_lint.hpp"

int
main(int argc, char **argv)
{
    using namespace authenticache::lint;
    const Options options = Options::defaults();

    std::vector<const char *> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list-rules") == 0) {
            for (const auto &[rule, summary] : ruleInventory())
                std::cout << rule << ": " << summary << "\n";
            return 0;
        }
        paths.push_back(argv[i]);
    }
    if (paths.empty()) {
        std::cerr << "usage: determinism_lint [--list-rules] "
                     "<dir-or-file>...\n";
        return 2;
    }

    std::vector<Finding> findings;
    for (const char *path : paths) {
        auto one = lintTree(path, options);
        findings.insert(findings.end(), one.begin(), one.end());
    }
    for (const auto &f : findings)
        std::cerr << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
    if (!findings.empty()) {
        std::cerr << findings.size()
                  << " determinism-lint finding(s); see "
                     "tools/lint/determinism_lint.hpp for the rule "
                     "inventory and the LINT:allow escape hatch\n";
        return 1;
    }
    return 0;
}
