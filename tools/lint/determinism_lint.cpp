#include "determinism_lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace authenticache::lint {

namespace {

// stripCommentsAndStrings / findToken / allowedByComment and friends
// live in lint_core (shared with the invariant lint).

bool
pathAllowed(const Options &options, const std::string &rule,
            const std::string &path)
{
    auto it = options.allow.find(rule);
    if (it == options.allow.end())
        return false;
    return pathMatchesAny(it->second, path);
}

struct TokenRule
{
    std::string rule;
    std::vector<std::string> tokens;
    std::string message;
};

const std::vector<TokenRule> &
tokenRules()
{
    static const std::vector<TokenRule> rules = {
        {"raw-rand",
         {"rand(", "srand(", "rand_r("},
         "libc rand() is not replayable; draw from util::Rng streams"},
        {"random-device",
         {"random_device"},
         "std::random_device seeds nondeterministically; derive seeds "
         "from the experiment config"},
        {"raw-engine",
         {"mt19937", "minstd_rand", "default_random_engine", "ranlux24",
          "ranlux48"},
         "raw std engines bypass the forStream() splitting contract; "
         "use util::Rng"},
        {"wall-clock",
         {"system_clock", "steady_clock", "high_resolution_clock",
          "time(", "clock_gettime(", "gettimeofday("},
         "wall-clock time varies run to run; use util::SimClock"},
        {"naked-durability-io",
         {"fsync(", "fdatasync(", "fwrite("},
         "raw durability I/O bypasses the crash-injection hooks; go "
         "through server/durable_io"},
    };
    return rules;
}

/**
 * Names declared in this file with an unordered container type:
 * after each "unordered_map<...>" (angles balanced), the next
 * identifier -- member, local, parameter, or function name -- is
 * recorded. Heuristic by design; combined with the accessor list and
 * the escape hatch it errs toward flagging.
 */
std::vector<std::string>
declaredUnorderedNames(const std::string &stripped)
{
    static const char *kinds[] = {"unordered_map", "unordered_set",
                                  "unordered_multimap",
                                  "unordered_multiset"};
    std::vector<std::string> names;
    for (const char *kind : kinds) {
        for (std::size_t pos : findToken(stripped, kind)) {
            std::size_t p = pos + std::string(kind).size();
            while (p < stripped.size() &&
                   std::isspace(static_cast<unsigned char>(stripped[p])))
                ++p;
            if (p >= stripped.size() || stripped[p] != '<')
                continue;
            int depth = 0;
            for (; p < stripped.size(); ++p) {
                if (stripped[p] == '<')
                    ++depth;
                else if (stripped[p] == '>' && --depth == 0) {
                    ++p;
                    break;
                }
            }
            while (p < stripped.size() &&
                   (std::isspace(
                        static_cast<unsigned char>(stripped[p])) ||
                    stripped[p] == '&' || stripped[p] == '*'))
                ++p;
            std::string name;
            while (p < stripped.size() && isIdentChar(stripped[p]))
                name += stripped[p++];
            if (!name.empty() &&
                !std::isdigit(static_cast<unsigned char>(name[0])))
                names.push_back(name);
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

void
lintUnorderedIteration(const std::string &path_label,
                       const std::string &stripped,
                       const std::vector<std::string> &raw_lines,
                       const Options &options,
                       std::vector<Finding> &findings)
{
    const std::string rule = "unordered-iter";
    if (pathAllowed(options, rule, path_label))
        return;
    const auto names = declaredUnorderedNames(stripped);
    for (std::size_t pos : findToken(stripped, "for")) {
        std::size_t p = pos + 3;
        while (p < stripped.size() &&
               std::isspace(static_cast<unsigned char>(stripped[p])))
            ++p;
        if (p >= stripped.size() || stripped[p] != '(')
            continue;
        // Find the matching close and a top-level ':' (skipping '::').
        int depth = 0;
        std::size_t colon = std::string::npos;
        std::size_t close = std::string::npos;
        for (std::size_t q = p; q < stripped.size(); ++q) {
            const char c = stripped[q];
            if (c == '(' || c == '[' || c == '{') {
                ++depth;
            } else if (c == ')' || c == ']' || c == '}') {
                if (--depth == 0 && c == ')') {
                    close = q;
                    break;
                }
            } else if (c == ':' && depth == 1 &&
                       colon == std::string::npos) {
                const bool dbl =
                    (q + 1 < stripped.size() &&
                     stripped[q + 1] == ':') ||
                    (q > 0 && stripped[q - 1] == ':');
                if (!dbl)
                    colon = q;
            }
        }
        if (colon == std::string::npos || close == std::string::npos)
            continue; // Classic for loop (or unparsable).
        const std::string range =
            stripped.substr(colon + 1, close - colon - 1);

        bool hit = false;
        for (const auto &accessor : options.unorderedAccessors) {
            if (range.find(accessor) != std::string::npos)
                hit = true;
        }
        for (const auto &name : names) {
            if (hit)
                break;
            for (std::size_t off : findToken(range, name)) {
                (void)off;
                hit = true;
                break;
            }
        }
        if (!hit)
            continue;
        const std::size_t line = lineOfOffset(stripped, pos);
        if (allowedByComment(raw_lines, line, rule))
            continue;
        findings.push_back(
            {path_label, line, rule,
             "range-for over an unordered container: iteration order "
             "is implementation-defined -- canonicalize (sort or "
             "order-independent fold) and annotate with "
             "LINT:allow(unordered-iter)"});
    }
}

} // namespace

Options
Options::defaults()
{
    Options o;
    o.allow["raw-engine"] = {"util/rng."};
    o.allow["wall-clock"] = {"util/sim_clock.hpp"};
    o.allow["naked-durability-io"] = {"server/durable_io."};
    o.unorderedAccessors = {".all()"};
    return o;
}

std::vector<std::pair<std::string, std::string>>
ruleInventory()
{
    std::vector<std::pair<std::string, std::string>> inv;
    for (const auto &rule : tokenRules())
        inv.emplace_back(rule.rule, rule.message);
    inv.emplace_back("unordered-iter",
                     "range-for over an unordered container in a "
                     "result-producing loop must canonicalize");
    return inv;
}

std::vector<Finding>
lintSource(const std::string &path_label, const std::string &contents,
           const Options &options)
{
    std::vector<Finding> findings;
    const std::string stripped = stripCommentsAndStrings(contents);
    const std::vector<std::string> raw_lines = splitLines(contents);

    for (const auto &rule : tokenRules()) {
        if (pathAllowed(options, rule.rule, path_label))
            continue;
        for (const auto &token : rule.tokens) {
            for (std::size_t pos : findToken(stripped, token)) {
                const std::size_t line = lineOfOffset(stripped, pos);
                if (allowedByComment(raw_lines, line, rule.rule))
                    continue;
                findings.push_back({path_label, line, rule.rule,
                                    token + ": " + rule.message});
            }
        }
    }
    lintUnorderedIteration(path_label, stripped, raw_lines, options,
                           findings);

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.line, a.rule) <
                         std::tie(b.line, b.rule);
              });
    return findings;
}

std::vector<Finding>
lintTree(const std::filesystem::path &root, const Options &options)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    const fs::path base = root.has_parent_path() ? root.parent_path()
                                                 : fs::path(".");
    if (fs::is_regular_file(root)) {
        files.push_back(root);
    } else {
        for (auto it = fs::recursive_directory_iterator(root);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                it->path().filename() == "build") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".cpp" || ext == ".hpp" || ext == ".h" ||
                ext == ".cc" || ext == ".hh")
                files.push_back(it->path());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> findings;
    for (const auto &file : files) {
        std::ifstream in(file, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string label =
            fs::relative(file, base).generic_string();
        auto one = lintSource(label, buf.str(), options);
        findings.insert(findings.end(), one.begin(), one.end());
    }
    return findings;
}

} // namespace authenticache::lint
