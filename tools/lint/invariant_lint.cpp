#include "invariant_lint.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

#include "source_model.hpp"

namespace authenticache::lint {

namespace {

namespace fs = std::filesystem;

constexpr std::size_t npos = std::string::npos;

bool
pathAllowed(const InvariantOptions &options, const std::string &rule,
            const std::string &path)
{
    auto it = options.allow.find(rule);
    if (it == options.allow.end())
        return false;
    return pathMatchesAny(it->second, path);
}

std::optional<std::string>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/**
 * Levenshtein distance, single-row DP. Mirrors the platform-config
 * loader's suggestion machinery (src/substrate/config.cpp) so stats
 * keys get the same "did you mean" ergonomics as config keys.
 */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t prev = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t ins = row[j - 1] + 1;
            const std::size_t del = row[j] + 1;
            const std::size_t sub =
                prev + (a[i - 1] == b[j - 1] ? 0 : 1);
            prev = row[j];
            row[j] = std::min({ins, del, sub});
        }
    }
    return row[b.size()];
}

/** All models plus lazily-loaded coverage files outside src/. */
struct Tree
{
    fs::path root;
    std::vector<SourceModel> srcModels;
    std::map<std::string, SourceModel> coverage; // relpath -> model

    const SourceModel *
    findByFragment(const std::string &fragment)
    {
        for (const auto &m : srcModels) {
            if (m.label.find(fragment) != npos)
                return &m;
        }
        auto it = coverage.find(fragment);
        if (it != coverage.end())
            return &it->second;
        auto contents = readFile(root / fragment);
        if (!contents)
            return nullptr;
        auto [ins, ok] = coverage.emplace(
            fragment, buildSourceModel(fragment, *contents));
        (void)ok;
        return &ins->second;
    }
};

Tree
loadTree(const fs::path &root)
{
    Tree tree;
    tree.root = root;
    const fs::path src = root / "src";
    std::vector<fs::path> files;
    if (fs::is_directory(src)) {
        for (auto it = fs::recursive_directory_iterator(src);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                it->path().filename() == "build") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".cpp" || ext == ".hpp" || ext == ".h" ||
                ext == ".cc" || ext == ".hh")
                files.push_back(it->path());
        }
    }
    std::sort(files.begin(), files.end());
    for (const auto &file : files) {
        auto contents = readFile(file);
        if (!contents)
            continue;
        tree.srcModels.push_back(buildSourceModel(
            fs::relative(file, root).generic_string(), *contents));
    }
    return tree;
}

void
push(std::vector<Finding> &findings, std::string file,
     std::size_t line, std::string rule, std::string message,
     std::string key)
{
    Finding f;
    f.file = std::move(file);
    f.line = line;
    f.rule = std::move(rule);
    f.message = std::move(message);
    f.key = std::move(key);
    findings.push_back(std::move(f));
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

// ---------------------------------------------------------------- //
// Rule: exhaustiveness                                             //
// ---------------------------------------------------------------- //

const FunctionDef *
findFunction(const SourceModel &model, const std::string &name)
{
    for (const auto &fn : model.functions) {
        if (fn.name == name)
            return &fn;
    }
    return nullptr;
}

void
lintExhaustiveness(Tree &tree, const InvariantOptions &options,
                   std::vector<Finding> &findings)
{
    const std::string rule = "exhaustiveness";
    for (const auto &contract : options.contracts) {
        const SourceModel *enum_model = nullptr;
        const EnumDef *def = nullptr;
        for (const auto &m : tree.srcModels) {
            if (m.label.find(contract.enumFile) == npos)
                continue;
            for (const auto &e : m.enums) {
                if (e.name == contract.enumName) {
                    enum_model = &m;
                    def = &e;
                    break;
                }
            }
            if (def != nullptr)
                break;
        }
        if (def == nullptr)
            continue; // Enum not in this tree (e.g. rule fixtures).

        const auto variantName = [&](const std::string &n) {
            const auto &p = contract.stripPrefix;
            return (!p.empty() && n.rfind(p, 0) == 0)
                       ? n.substr(p.size())
                       : n;
        };

        for (const auto &site : contract.sites) {
            const SourceModel *sm =
                tree.findByFragment(site.fileFragment);
            if (sm == nullptr) {
                push(findings, enum_model->label, def->line, rule,
                     contract.enumName + ": required site \"" +
                         site.label + "\" (" + site.fileFragment +
                         ") does not exist",
                     contract.enumName + ":site:" +
                         site.fileFragment);
                continue;
            }
            const std::string *text = &sm->stripped;
            std::size_t anchor_line = 1;
            if (!site.function.empty()) {
                const FunctionDef *fn =
                    findFunction(*sm, site.function);
                if (fn == nullptr) {
                    push(findings, sm->label, 1, rule,
                         contract.enumName + ": required site \"" +
                             site.label + "\" -- function " +
                             site.function + "() not found in " +
                             sm->label,
                         contract.enumName + ":site-fn:" +
                             site.function);
                    continue;
                }
                text = &fn->body;
                anchor_line = fn->line;
            }
            for (const auto &e : def->enumerators) {
                const std::string token = site.useVariantName
                                              ? variantName(e.name)
                                              : e.name;
                if (!findToken(*text, token).empty())
                    continue;
                push(findings, sm->label, anchor_line, rule,
                     contract.enumName + "::" + e.name + " (" +
                         variantName(e.name) +
                         ") is not exercised by the " + site.label +
                         " in " + sm->label +
                         " -- every value must thread through it",
                     contract.enumName + "::" + e.name + "@" +
                         site.fileFragment +
                         (site.function.empty()
                              ? ""
                              : ":" + site.function));
            }
        }

        if (!contract.rangeGuardFunction.empty()) {
            const SourceModel *gm = nullptr;
            const FunctionDef *guard = nullptr;
            for (const auto &m : tree.srcModels) {
                guard = findFunction(m, contract.rangeGuardFunction);
                if (guard != nullptr) {
                    gm = &m;
                    break;
                }
            }
            if (guard == nullptr) {
                push(findings, enum_model->label, def->line, rule,
                     contract.enumName + ": range guard function " +
                         contract.rangeGuardFunction +
                         "() not found anywhere under src/",
                     contract.enumName + ":range-guard-missing");
            } else if (!def->enumerators.empty()) {
                const auto [lo, hi] = std::minmax_element(
                    def->enumerators.begin(), def->enumerators.end(),
                    [](const EnumeratorDef &a,
                       const EnumeratorDef &b) {
                        return a.value < b.value;
                    });
                for (const EnumeratorDef *bound :
                     {&*lo, &*hi}) {
                    if (!findToken(guard->body, bound->name)
                             .empty())
                        continue;
                    push(findings, gm->label, guard->line, rule,
                         contract.rangeGuardFunction +
                             "() does not reference " +
                             contract.enumName + "::" + bound->name +
                             " -- its accept range no longer tracks "
                             "the enum's bounds",
                         contract.enumName + ":range-guard:" +
                             bound->name);
                }
            }
        }

        // Switches over the enum may not hide values.
        std::set<std::string> names;
        for (const auto &e : def->enumerators)
            names.insert(e.name);
        for (const auto &m : tree.srcModels) {
            if (pathAllowed(options, rule, m.label))
                continue;
            for (const auto &sw : m.switches) {
                bool over_enum = false;
                std::set<std::string> covered;
                for (const auto &c : sw.caseNames) {
                    if (names.count(c) != 0) {
                        over_enum = true;
                        covered.insert(c);
                    }
                }
                if (!over_enum)
                    continue;
                std::vector<std::string> missing;
                for (const auto &e : def->enumerators) {
                    if (covered.count(e.name) == 0)
                        missing.push_back(e.name);
                }
                if (missing.empty())
                    continue;
                if (allowedByComment(m.rawLines, sw.line, rule))
                    continue;
                push(findings, m.label, sw.line, rule,
                     std::string("switch over ") + contract.enumName +
                         (sw.hasDefault
                              ? " hides values behind default:: "
                              : " is not exhaustive: missing ") +
                         joinNames(missing) +
                         " -- list every value (a default: guard for "
                         "out-of-range wire bytes is fine only on top "
                         "of a full case list)",
                     "switch:" + m.label + ":" + contract.enumName);
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Rule: sync-before-reply                                          //
// ---------------------------------------------------------------- //

void
lintSyncBeforeReply(Tree &tree, const InvariantOptions &options,
                    std::vector<Finding> &findings)
{
    const std::string rule = "sync-before-reply";
    for (const auto &m : tree.srcModels) {
        if (!pathMatchesAny(options.flowPathFragments, m.label) ||
            m.label.size() < 4 ||
            m.label.compare(m.label.size() - 4, 4, ".cpp") != 0)
            continue;
        if (pathAllowed(options, rule, m.label))
            continue;
        for (const auto &fn : m.functions) {
            enum class Kind { Mutate, Barrier, Reply };
            std::vector<std::pair<std::size_t, Kind>> events;
            const auto collect = [&](const std::vector<std::string>
                                         &tokens,
                                     Kind kind) {
                for (const auto &t : tokens)
                    for (std::size_t pos : findToken(fn.body, t))
                        events.emplace_back(pos, kind);
            };
            collect(options.mutateTokens, Kind::Mutate);
            collect(options.barrierTokens, Kind::Barrier);
            collect(options.replyTokens, Kind::Reply);
            std::sort(events.begin(), events.end());
            std::size_t unsynced = npos;
            for (const auto &[pos, kind] : events) {
                if (kind == Kind::Mutate) {
                    unsynced = pos;
                } else if (kind == Kind::Barrier) {
                    unsynced = npos;
                } else if (unsynced != npos) {
                    const std::size_t line = lineOfOffset(
                        m.stripped, fn.bodyOffset + pos);
                    if (!allowedByComment(m.rawLines, line, rule)) {
                        push(findings, m.label, line, rule,
                             fn.name + "() journals (token order: "
                                       "append/wal.push_back at line " +
                                 std::to_string(lineOfOffset(
                                     m.stripped,
                                     fn.bodyOffset + unsynced)) +
                                 ") and then replies without an "
                                 "intervening sync()/flushJournal() "
                                 "-- a crash here discloses "
                                 "un-journaled state",
                             m.label + ":" + fn.name);
                    }
                    break; // One finding per function is enough.
                }
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Rule: layering                                                   //
// ---------------------------------------------------------------- //

std::string
dirOf(const std::string &label)
{
    const std::size_t slash = label.rfind('/');
    return slash == npos ? std::string() : label.substr(0, slash);
}

void
lintLayering(Tree &tree, const InvariantOptions &options,
             std::vector<Finding> &findings)
{
    const std::string rule = "layering";
    std::map<std::string, const SourceModel *> by_label;
    for (const auto &m : tree.srcModels)
        by_label[m.label] = &m;

    const auto resolve = [&](const std::string &includer,
                             const std::string &inc) -> std::string {
        const std::string as_src = "src/" + inc;
        if (by_label.count(as_src) != 0)
            return as_src;
        const std::string sibling = dirOf(includer) + "/" + inc;
        if (by_label.count(sibling) != 0)
            return sibling;
        return "";
    };
    const auto isInterface = [&](const std::string &label) {
        return std::find(options.interfaceHeaders.begin(),
                         options.interfaceHeaders.end(),
                         label) != options.interfaceHeaders.end();
    };

    for (const auto &m : tree.srcModels) {
        if (!pathMatchesAny(options.restrictedDirs, m.label))
            continue;
        if (pathAllowed(options, rule, m.label))
            continue;
        // BFS over the quoted-include closure; interface headers are
        // opaque (their own sim/ includes are the published surface).
        std::map<std::string, std::string> parent;   // node -> includer
        std::map<std::string, std::string> edge_inc; // node -> #include text
        std::vector<std::string> queue;
        const auto visit = [&](const std::string &from,
                               const std::string &inc) {
            const std::string target = resolve(from, inc);
            if (target.empty() || parent.count(target) != 0 ||
                target == m.label)
                return;
            parent[target] = from;
            edge_inc[target] = inc;
            if (!isInterface(target) &&
                !pathMatchesAny(options.forbiddenDirs, target))
                queue.push_back(target);
        };
        for (const auto &inc : m.includes)
            visit(m.label, inc);
        for (std::size_t qi = 0; qi < queue.size(); ++qi) {
            const SourceModel *node = by_label[queue[qi]];
            for (const auto &inc : node->includes)
                visit(node->label, inc);
        }
        for (const auto &[target, from] : parent) {
            if (!pathMatchesAny(options.forbiddenDirs, target) ||
                isInterface(target))
                continue;
            // Reconstruct the include chain back to this file.
            std::vector<std::string> chain{target};
            while (chain.back() != m.label)
                chain.push_back(parent.at(chain.back()));
            std::reverse(chain.begin(), chain.end());
            // Anchor at the #include in this file that starts the
            // chain, so the escape hatch can sit next to it.
            const std::string &first_inc = edge_inc.at(chain[1]);
            std::size_t line = 1;
            for (std::size_t l = 0; l < m.rawLines.size(); ++l) {
                if (m.rawLines[l].find("\"" + first_inc + "\"") !=
                    npos) {
                    line = l + 1;
                    break;
                }
            }
            if (allowedByComment(m.rawLines, line, rule))
                continue;
            std::string chain_text;
            for (const auto &hop : chain) {
                if (!chain_text.empty())
                    chain_text += " -> ";
                chain_text += hop;
            }
            push(findings, m.label, line, rule,
                 "reaches the concrete substrate/simulator header " +
                     target + " (" + chain_text +
                     "); restricted layers must stay "
                     "substrate-blind -- go through the published "
                     "interface headers",
                 m.label + "->" + target);
        }
    }
}

// ---------------------------------------------------------------- //
// Rule: lock-annotation                                            //
// ---------------------------------------------------------------- //

void
lintLockAnnotation(Tree &tree, const InvariantOptions &options,
                   std::vector<Finding> &findings)
{
    const std::string rule = "lock-annotation";
    for (const auto &m : tree.srcModels) {
        if (pathAllowed(options, rule, m.label))
            continue;
        for (const auto &cls : m.classes) {
            if (!cls.holdsMutex())
                continue;
            for (const auto &f : cls.fields) {
                if (f.guarded || f.isConst || f.isRef ||
                    f.mutexLike || f.waitable || f.isAtomic)
                    continue;
                if (allowedByComment(m.rawLines, f.line, rule))
                    continue;
                push(findings, m.label, f.line, rule,
                     cls.name + "::" + f.name +
                         " sits next to a util::Mutex but carries no "
                         "AUTH_GUARDED_BY -- annotate it (or mark "
                         "the documented publication-immutable "
                         "exception with LINT:allow)",
                     m.label + ":" + cls.name + "::" + f.name);
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Rule: stats-key                                                  //
// ---------------------------------------------------------------- //

void
lintStatsKeys(Tree &tree, const InvariantOptions &options,
              std::vector<Finding> &findings)
{
    const std::string rule = "stats-key";
    std::string corpus;
    for (const auto &file : options.statsCoverageFiles) {
        const SourceModel *cm = tree.findByFragment(file);
        if (cm != nullptr) {
            corpus += cm->raw;
            corpus += '\n';
        }
    }

    std::set<std::string> covered;
    std::vector<std::pair<const SourceModel *, const StatsCall *>>
        uncovered;
    std::set<std::string> reported; // file:key dedup
    for (const auto &m : tree.srcModels) {
        for (const auto &call : m.statsCalls) {
            if (!findToken(corpus, call.keyName).empty())
                covered.insert(call.keyName);
            else
                uncovered.emplace_back(&m, &call);
        }
    }
    for (const auto &[m, call] : uncovered) {
        if (pathAllowed(options, rule, m->label))
            continue;
        if (!reported.insert(m->label + ":" + call->keyName).second)
            continue;
        if (allowedByComment(m->rawLines, call->line, rule))
            continue;
        // Near-miss: a typo'd key silently forks the schema; point
        // at the closest covered key the author probably meant.
        std::string best;
        std::size_t best_dist = options.statsSuggestDistance + 1;
        for (const auto &k : covered) {
            const std::size_t d = editDistance(call->keyName, k);
            if (d < best_dist) {
                best_dist = d;
                best = k;
            }
        }
        std::string message =
            "stats key \"" + call->keyName +
            "\" is not covered by any of: " +
            joinNames(options.statsCoverageFiles);
        message += best.empty()
                       ? " -- add it to the test schema or the "
                         "STATS.md catalog"
                       : " -- did you mean \"" + best + "\"?";
        push(findings, m->label, call->line, rule, message,
             m->label + ":" + call->keyName);
    }
}

} // namespace

InvariantOptions
InvariantOptions::defaults()
{
    InvariantOptions o;

    EnumContract journal;
    journal.enumFile = "src/server/journal.cpp";
    journal.enumName = "EventType";
    journal.stripPrefix = "k";
    journal.sites = {
        {"serializer (encodeEvent)", "src/server/journal.cpp",
         false, "encodeEvent"},
        {"decoder (decodeEvent)", "src/server/journal.cpp", false,
         "decodeEvent"},
        {"replay handler (applyEvent)", "src/server/journal.cpp",
         true, "applyEvent"},
        {"serializer round-trip test", "tests/test_journal.cpp",
         true, ""},
        {"crash-sweep reference workload",
         "tests/test_crash_recovery.cpp", true, ""},
    };

    EnumContract protocol;
    protocol.enumFile = "src/protocol/messages.hpp";
    protocol.enumName = "MessageType";
    protocol.sites = {
        {"wire codec", "src/protocol/messages.cpp", false, ""},
        {"round-trip fuzzer", "tests/test_protocol_fuzz.cpp", false,
         ""},
    };
    protocol.rangeGuardFunction = "peekMessageType";

    o.contracts = {journal, protocol};

    o.restrictedDirs = {"src/server/", "src/protocol/",
                        "src/firmware/", "src/net/"};
    o.forbiddenDirs = {"src/substrate/", "src/sim/"};
    o.interfaceHeaders = {"src/substrate/substrate.hpp",
                          "src/sim/geometry.hpp"};

    o.flowPathFragments = {"src/server/"};
    o.mutateTokens = {"append(", "wal.push_back",
                      "wal.emplace_back"};
    o.barrierTokens = {"sync(", "flushJournal("};
    o.replyTokens = {"send("};

    o.statsCoverageFiles = {"tests/test_stats.cpp",
                            "docs/STATS.md"};
    return o;
}

std::vector<std::pair<std::string, std::string>>
invariantRuleInventory()
{
    return {
        {"exhaustiveness",
         "every journal::EventType / protocol::MessageType value must "
         "thread through its codec, replay handler, tests and range "
         "guards; switches may not hide values behind default:"},
        {"sync-before-reply",
         "in src/server/ a journal mutation must be followed by "
         "sync()/flushJournal() before any send() on the same "
         "function's token order"},
        {"layering",
         "src/server, src/protocol, src/firmware and src/net may not "
         "reach concrete src/substrate// src/sim/ headers through the "
         "include graph"},
        {"lock-annotation",
         "a class holding util::Mutex/SharedMutex must carry "
         "AUTH_GUARDED_BY on every mutable field"},
        {"stats-key",
         "every StatsRegistry key literal must be covered by "
         "tests/test_stats.cpp or docs/STATS.md (with did-you-mean "
         "near-miss detection)"},
    };
}

InvariantReport
lintInvariantTree(const fs::path &root,
                  const InvariantOptions &options,
                  const std::vector<std::string> &baseline)
{
    Tree tree = loadTree(root);
    std::vector<Finding> raw;
    lintExhaustiveness(tree, options, raw);
    lintSyncBeforeReply(tree, options, raw);
    lintLayering(tree, options, raw);
    lintLockAnnotation(tree, options, raw);
    lintStatsKeys(tree, options, raw);
    std::sort(raw.begin(), raw.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });

    InvariantReport report;
    std::set<std::string> matched;
    const std::set<std::string> baseline_set(baseline.begin(),
                                             baseline.end());
    for (auto &f : raw) {
        const std::string key = f.rule + ":" + f.key;
        f.key = key;
        if (baseline_set.count(key) != 0) {
            matched.insert(key);
            report.baselined.push_back(std::move(f));
        } else {
            report.findings.push_back(std::move(f));
        }
    }
    for (const auto &entry : baseline) {
        if (matched.count(entry) == 0)
            report.staleBaseline.push_back(entry);
    }
    return report;
}

std::vector<std::string>
loadBaselineFile(const fs::path &path)
{
    std::vector<std::string> entries;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != npos)
            line = line.substr(0, hash);
        while (!line.empty() &&
               (line.back() == ' ' || line.back() == '\t' ||
                line.back() == '\r'))
            line.pop_back();
        std::size_t b = 0;
        while (b < line.size() &&
               (line[b] == ' ' || line[b] == '\t'))
            ++b;
        line = line.substr(b);
        if (!line.empty())
            entries.push_back(line);
    }
    return entries;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendFindings(std::string &out, const std::vector<Finding> &list)
{
    for (std::size_t i = 0; i < list.size(); ++i) {
        const Finding &f = list[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"file\": \"" + jsonEscape(f.file) +
               "\", \"line\": " + std::to_string(f.line) +
               ", \"rule\": \"" + jsonEscape(f.rule) +
               "\", \"key\": \"" + jsonEscape(f.key) +
               "\", \"message\": \"" + jsonEscape(f.message) + "\"}";
    }
    if (!list.empty())
        out += "\n  ";
}

} // namespace

std::string
reportToJson(const InvariantReport &report)
{
    std::string out = "{\n  \"findings\": [";
    appendFindings(out, report.findings);
    out += "],\n  \"baselined\": [";
    appendFindings(out, report.baselined);
    out += "],\n  \"stale_baseline\": [";
    for (std::size_t i = 0; i < report.staleBaseline.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    \"" + jsonEscape(report.staleBaseline[i]) + "\"";
    }
    if (!report.staleBaseline.empty())
        out += "\n  ";
    out += "],\n  \"counts\": {\"findings\": " +
           std::to_string(report.findings.size()) +
           ", \"baselined\": " +
           std::to_string(report.baselined.size()) +
           ", \"stale_baseline\": " +
           std::to_string(report.staleBaseline.size()) + "}\n}\n";
    return out;
}

} // namespace authenticache::lint
