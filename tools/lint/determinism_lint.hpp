/**
 * @file
 * Determinism lint: a source scanner that rejects the constructs that
 * would silently break the project's replay/determinism contract
 * (DESIGN.md 5c-5f, EXPERIMENTS.md). Every result-producing path must
 * draw randomness from util::Rng streams, time from util::SimClock,
 * and durability bytes from server/durable_io -- this tool makes that
 * contract a CI gate instead of a review convention.
 *
 * Rules (all file-allowlist-driven, see Options::defaults):
 *   raw-rand            rand( / srand( / rand_r( anywhere
 *   random-device       std::random_device anywhere (nondeterministic
 *                       seeding defeats replay)
 *   raw-engine          mt19937 / minstd_rand / default_random_engine /
 *                       ranlux outside src/util/rng.*
 *   wall-clock          system_clock / steady_clock /
 *                       high_resolution_clock / time( /
 *                       clock_gettime( / gettimeofday( outside
 *                       src/util/sim_clock.hpp
 *   naked-durability-io fsync( / fdatasync( / fwrite( outside
 *                       src/server/durable_io.* (raw syncs bypass the
 *                       crash-injection hooks)
 *   unordered-iter      range-for over an unordered_{map,set} (or an
 *                       accessor known to return one, e.g. .all()):
 *                       iteration order is implementation-defined, so
 *                       a result-producing loop must canonicalize
 *                       (sort / order-independent fold) and say so
 *                       with the escape hatch
 *
 * Escape hatch: a `// LINT:allow(<rule>)` comment on the flagged line
 * or the line directly above suppresses that one finding -- reviewed,
 * greppable, and rule-specific.
 *
 * Comments and string/char literals are stripped before matching, so
 * prose about "randomness" or logged text never trips the scanner.
 */

#ifndef AUTH_TOOLS_LINT_DETERMINISM_LINT_HPP
#define AUTH_TOOLS_LINT_DETERMINISM_LINT_HPP

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace authenticache::lint {

/** Scanner configuration: per-rule path allowlists. */
struct Options
{
    /**
     * rule -> path substrings (forward-slash-normalized) where the
     * rule does not apply. Substring match keeps the list short:
     * "util/rng." covers util/rng.hpp and util/rng.cpp.
     */
    std::map<std::string, std::vector<std::string>> allow;

    /**
     * Range expressions containing one of these substrings are
     * treated as iterating an unordered container even when the
     * declaration is in another file (e.g. ".all()" returning the
     * enrollment database's unordered_map).
     */
    std::vector<std::string> unorderedAccessors;

    /** The project's shipping configuration. */
    static Options defaults();
};

/** Names + one-line summaries of every rule, for --list-rules. */
std::vector<std::pair<std::string, std::string>> ruleInventory();

/** Lint one in-memory source file. @p path_label is used both for
 *  diagnostics and for allowlist matching. */
std::vector<Finding> lintSource(const std::string &path_label,
                                const std::string &contents,
                                const Options &options);

/**
 * Lint every C++ source/header under @p root (recursively; any
 * directory named "build" is skipped). Path labels in the findings
 * are relative to @p root's parent, so "src/util/rng.cpp" style
 * allowlists match regardless of where the tree is checked out.
 */
std::vector<Finding> lintTree(const std::filesystem::path &root,
                              const Options &options);

} // namespace authenticache::lint

#endif // AUTH_TOOLS_LINT_DETERMINISM_LINT_HPP
