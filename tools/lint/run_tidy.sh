#!/usr/bin/env bash
# clang-tidy ratchet wrapper.
#
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# src/ and tools/ translation unit in a compile_commands.json,
# normalizes the findings to stable "<relpath>:<check>" lines, and
# diffs them against the checked-in suppression baseline
# (tools/lint/tidy_baseline.txt). Only findings NOT in the baseline
# fail the gate, so legacy noise never blocks a PR while new
# violations always do. Shrink the baseline over time; never grow it
# without review.
#
# Usage:
#   tools/lint/run_tidy.sh [BUILD_DIR]            # gate (default: build)
#   UPDATE_BASELINE=1 tools/lint/run_tidy.sh ...  # regenerate baseline
#   TIDY_REUSE=1 tools/lint/run_tidy.sh ...       # reuse cached findings
#                                                 # file if present (CI
#                                                 # cache hit)
#
# Requires: clang-tidy in PATH, python3 (to parse the compilation
# database), and a build configured with CMAKE_EXPORT_COMPILE_COMMANDS
# (the repo's CMakeLists sets it unconditionally).
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BASELINE="$REPO_ROOT/tools/lint/tidy_baseline.txt"
DB="$BUILD_DIR/compile_commands.json"
FINDINGS="$BUILD_DIR/tidy_findings.txt"
RAW="$BUILD_DIR/tidy_raw.log"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_tidy.sh: clang-tidy not found in PATH" >&2
    exit 2
fi
if [ ! -f "$DB" ]; then
    echo "run_tidy.sh: $DB not found (configure with cmake first)" >&2
    exit 2
fi

if [ "${TIDY_REUSE:-0}" != "1" ] || [ ! -f "$FINDINGS" ]; then
    # Only first-party translation units; tests/bench/examples link the
    # same library code and would triple the runtime for no new signal.
    # Exception: the perf-trajectory runner is gate infrastructure (its
    # JSON feeds tools/bench_compare.py), so it is held to the same bar.
    python3 - "$DB" <<'EOF' > "$BUILD_DIR/tidy_files.txt"
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if "/src/" in f or "/tools/" in f \
            or f.endswith("/bench/bench_runner.cpp"):
        print(f)
EOF
    sort -u "$BUILD_DIR/tidy_files.txt" -o "$BUILD_DIR/tidy_files.txt"

    : > "$RAW"
    # clang-tidy exits nonzero on findings; the gate decision is ours.
    xargs -a "$BUILD_DIR/tidy_files.txt" -r \
        clang-tidy -p "$BUILD_DIR" --quiet >> "$RAW" 2>/dev/null || true

    # "path:line:col: warning: ... [check]" -> "relpath:check",
    # deduplicated. Line numbers are left out of the key so baseline
    # entries survive unrelated edits above them.
    sed -n 's/^\([^ :][^:]*\):[0-9][0-9]*:[0-9][0-9]*: \(warning\|error\): .*\[\(.*\)\]$/\1:\3/p' "$RAW" \
        | sed "s#^$REPO_ROOT/##" \
        | sort -u > "$FINDINGS"
fi

if [ "${UPDATE_BASELINE:-0}" = "1" ]; then
    {
        echo "# clang-tidy suppression baseline (relpath:check, sorted)."
        echo "# Regenerate: UPDATE_BASELINE=1 tools/lint/run_tidy.sh <build-dir>"
        echo "# The gate fails only on findings NOT listed here; shrink,"
        echo "# don't grow."
        cat "$FINDINGS"
    } > "$BASELINE"
    echo "run_tidy.sh: baseline updated with $(wc -l < "$FINDINGS") entries"
    exit 0
fi

grep -v '^#' "$BASELINE" | sort -u > "$BUILD_DIR/tidy_baseline_sorted.txt"
NEW="$(comm -13 "$BUILD_DIR/tidy_baseline_sorted.txt" "$FINDINGS")"
if [ -n "$NEW" ]; then
    echo "run_tidy.sh: new clang-tidy findings (not in baseline):" >&2
    echo "$NEW" >&2
    echo "--- full diagnostics for the new findings are in $RAW ---" >&2
    exit 1
fi
echo "run_tidy.sh: clean ($(wc -l < "$FINDINGS") finding(s), all baselined)"
