/**
 * @file
 * Invariant lint: cross-file static analysis for the contracts the
 * compiler cannot see (DESIGN.md §5k). Where the determinism lint
 * judges one file at a time, these rules join facts extracted from
 * the whole tree (source_model.hpp) against a declarative contract
 * table:
 *
 *   exhaustiveness    every journal::EventType value must thread
 *                     through the serializer, the decoder, the replay
 *                     handler, the round-trip test, and the crash
 *                     sweep; every protocol::MessageType through the
 *                     wire codec, peekMessageType's range guard, and
 *                     the round-trip fuzzer. Switches over either
 *                     enum may not hide values behind `default:`.
 *   sync-before-reply in src/server/ flow files, a journal mutation
 *                     (append / wal.push_back) must be followed by a
 *                     durability barrier (sync / flushJournal) before
 *                     any send() on the same function's token order.
 *   layering          src/server, src/protocol, src/firmware and
 *                     src/net may not reach concrete src/substrate/ or
 *                     src/sim/ headers through the #include graph;
 *                     only the published interface headers are legal.
 *   lock-annotation   a class holding util::Mutex/SharedMutex must
 *                     carry AUTH_GUARDED_BY on every mutable field
 *                     (const values, references, condvars and atomics
 *                     are exempt).
 *   stats-key         every StatsRegistry set()/add() key literal in
 *                     src/ must appear in tests/test_stats.cpp or
 *                     docs/STATS.md; near-misses (edit distance <= 2
 *                     from a covered key) get a "did you mean"
 *                     diagnostic, catching typo'd keys.
 *
 * Escapes, in review-visibility order: `// LINT:allow(<rule>)` on or
 * above the flagged line, per-rule path allowlists in the options,
 * and the shrink-only checked-in baseline (invariant_baseline.txt,
 * ratchet semantics like tidy_baseline.txt: a baselined finding is
 * tolerated, a fixed one must be removed, a new one fails).
 */

#ifndef AUTH_TOOLS_LINT_INVARIANT_LINT_HPP
#define AUTH_TOOLS_LINT_INVARIANT_LINT_HPP

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace authenticache::lint {

/** Scanner configuration; defaults() is the project's contract. */
struct InvariantOptions
{
    /** rule -> path substrings where the rule does not apply. */
    std::map<std::string, std::vector<std::string>> allow;

    /** One place an enum's values must all be exercised. */
    struct EnumSite
    {
        std::string label;        ///< Human name for diagnostics.
        std::string fileFragment; ///< Path substring of the site file.
        /** Match the variant-alternative name (enumerator minus the
         *  contract's stripPrefix) instead of the enumerator. */
        bool useVariantName = false;
        /** Restrict the search to this function's body ("" = whole
         *  file). */
        std::string function;
    };

    struct EnumContract
    {
        std::string enumFile; ///< Path substring of the definition.
        std::string enumName;
        std::string stripPrefix; ///< e.g. "k" for journal EventType.
        std::vector<EnumSite> sites;
        /** Function whose body must mention the lowest- and
         *  highest-valued enumerator (wire-range guards like
         *  peekMessageType); "" disables the check. */
        std::string rangeGuardFunction;
    };
    std::vector<EnumContract> contracts;

    /** Layering: files under restrictedDirs may not reach files under
     *  forbiddenDirs via quoted includes, except interfaceHeaders
     *  (which are also not traversed through). */
    std::vector<std::string> restrictedDirs;
    std::vector<std::string> forbiddenDirs;
    std::vector<std::string> interfaceHeaders;

    /** Sync-before-reply: scanned files and token classes. */
    std::vector<std::string> flowPathFragments;
    std::vector<std::string> mutateTokens;
    std::vector<std::string> barrierTokens;
    std::vector<std::string> replyTokens;

    /** Stats-key coverage corpus, repo-root-relative. */
    std::vector<std::string> statsCoverageFiles;
    std::size_t statsSuggestDistance = 2;

    /** The project's shipping configuration. */
    static InvariantOptions defaults();
};

/** Names + one-line summaries of every rule, for --list-rules. */
std::vector<std::pair<std::string, std::string>>
invariantRuleInventory();

struct InvariantReport
{
    /** Findings that fail the gate (allow-list and baseline already
     *  applied). */
    std::vector<Finding> findings;
    /** Findings tolerated by a baseline entry. */
    std::vector<Finding> baselined;
    /** Baseline keys that matched nothing: the violation was fixed,
     *  so ratchet semantics demand the entry be deleted. */
    std::vector<std::string> staleBaseline;
};

/**
 * Run every rule over the repo at @p root (models built for C++
 * sources under root/src; coverage files read relative to root).
 * @p baseline holds finding keys (see Finding::key) to tolerate.
 */
InvariantReport
lintInvariantTree(const std::filesystem::path &root,
                  const InvariantOptions &options,
                  const std::vector<std::string> &baseline);

/** Baseline file: one finding key per line, '#' comments and blank
 *  lines skipped. */
std::vector<std::string>
loadBaselineFile(const std::filesystem::path &path);

/** Machine-readable report (uploaded as a CI artifact). */
std::string reportToJson(const InvariantReport &report);

} // namespace authenticache::lint

#endif // AUTH_TOOLS_LINT_INVARIANT_LINT_HPP
