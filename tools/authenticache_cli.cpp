/**
 * @file
 * Command-line front end for the Authenticache library.
 *
 *   authenticache_cli enroll --db FILE --device ID [--device ID ...]
 *       Manufacture the devices (die seed = ID), enroll them, and
 *       persist the server database.
 *
 *   authenticache_cli auth --db FILE --device ID [--rounds N]
 *       Reload the database, re-manufacture the device from its die
 *       seed, and run N protocol authentications (consuming fresh
 *       CRPs; the updated database is written back). With
 *       --durable DIR the server journals every mutation to DIR
 *       (write-ahead log + snapshot generations) and starts from
 *       whatever state crash recovery finds there.
 *
 *   authenticache_cli recover --durable DIR [--export FILE]
 *       Run crash recovery against a durability directory, report
 *       what it found, and optionally export the recovered database
 *       as a plain snapshot file.
 *
 *   authenticache_cli heartbeat --db FILE --device ID [--steps N]
 *       Open a continuous-authentication heartbeat session and drive
 *       it N simulated clock steps, printing the trust trajectory.
 *       With --drift the device experiences a deterministic
 *       temperature/aging/noise excursion while the session runs, so
 *       the graceful-degradation ladder (step-up challenges,
 *       proactive remap, re-enrollment, revocation) can be observed
 *       from the command line.
 *
 *   authenticache_cli revoke --db FILE --device ID
 *   authenticache_cli unlock --db FILE --device ID
 *       Administratively revoke a device, or clear a lockout /
 *       revocation / re-enrollment flag and restore trust.
 *
 *   authenticache_cli imposter --db FILE --device ID --die SEED
 *       A different die (SEED) presents device ID's identity.
 *
 *   authenticache_cli keygen --die SEED
 *       Provision a PUF-backed key and regenerate it under drift.
 *
 *   authenticache_cli info --db FILE
 *       Summarize the enrollment database.
 *
 * Device-manufacturing commands accept --platform FILE to pick the
 * fingerprint substrate (sram_vmin, dram_mra) and its physics from a
 * platform config; the default is the SRAM Vmin chip the paper
 * models. --stats dumps the substrate.* and ecc.* self-reported
 * counters alongside the client and server ones.
 */

#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "firmware/keygen.hpp"
#include "server/durability.hpp"
#include "server/server.hpp"
#include "server/storage.hpp"
#include "sim/drift.hpp"
#include "substrate/config.hpp"
#include "substrate/drift_injector.hpp"
#include "substrate/registry.hpp"
#include "util/table.hpp"

using namespace authenticache;

namespace {

struct Args
{
    std::string command;
    std::map<std::string, std::vector<std::string>> options;

    bool
    has(const std::string &key) const
    {
        return options.count(key) > 0;
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = options.find(key);
        return it == options.end() || it->second.empty()
                   ? fallback
                   : it->second.front();
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t fallback) const
    {
        auto v = get(key);
        return v.empty() ? fallback : std::stoull(v, nullptr, 0);
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc >= 2)
        args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) == 0) {
            std::string key = token.substr(2);
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2)) {
                args.options[key].push_back(argv[++i]);
            } else {
                args.options[key].push_back("");
            }
        }
    }
    return args;
}

int
usage()
{
    std::cerr
        << "usage:\n"
        << "  authenticache_cli enroll   --db FILE --device ID"
           " [--device ID ...] [--cache-kb N] [--platform FILE]\n"
        << "  authenticache_cli auth     --db FILE --device ID"
           " [--rounds N] [--cache-kb N] [--platform FILE]"
           " [--shards N] [--stats] [--durable DIR]\n"
        << "  authenticache_cli recover  --durable DIR"
           " [--export FILE]\n"
        << "  authenticache_cli heartbeat --db FILE --device ID"
           " [--steps N] [--drift] [--cache-kb N] [--platform FILE]"
           " [--stats] [--durable DIR]\n"
        << "  authenticache_cli revoke   --db FILE --device ID"
           " [--durable DIR]\n"
        << "  authenticache_cli unlock   --db FILE --device ID"
           " [--durable DIR]\n"
        << "  authenticache_cli imposter --db FILE --device ID"
           " --die SEED [--cache-kb N] [--platform FILE]\n"
        << "  authenticache_cli keygen   --die SEED [--cache-kb N]"
           " [--platform FILE]\n"
        << "  authenticache_cli info     --db FILE\n";
    return 2;
}

/**
 * Substrate selection: --platform FILE loads a platform config
 * (substrate kind, ECC scheme, device physics); otherwise the
 * defaults model the paper's SRAM Vmin chip. --cache-kb overrides
 * the array size either way, preserving the pre-plugin CLI default
 * of a 1 MB cache.
 */
substrate::PlatformConfig
devicePlatform(const Args &args)
{
    substrate::PlatformConfig cfg;
    std::string path = args.get("platform");
    if (!path.empty())
        cfg = substrate::loadPlatformConfigFile(path);
    if (args.has("cache-kb") || path.empty())
        cfg.cacheBytes = args.getU64("cache-kb", 1024) * 1024;
    return cfg;
}

/** A device re-manufactured from its die seed. */
struct Device
{
    std::unique_ptr<substrate::FingerprintSubstrate> chip;
    firmware::SimulatedMachine machine;
    firmware::AuthenticacheClient client;

    Device(std::uint64_t die_seed,
           const substrate::PlatformConfig &platform)
        : chip(substrate::makeSubstrate(platform, die_seed)),
          machine(4),
          client(*chip, machine,
                 [] {
                     firmware::ClientConfig cfg;
                     cfg.selfTestAttempts = 8;
                     return cfg;
                 }())
    {
        client.boot();
    }
};

int
cmdEnroll(const Args &args)
{
    std::string path = args.get("db");
    if (path.empty() || !args.has("device"))
        return usage();
    const auto platform = devicePlatform(args);

    server::ServerConfig cfg;
    cfg.challengeBits = 128;
    cfg.verifier.pIntra = 0.08;
    server::AuthenticationServer server(cfg, /*seed=*/0x5E4E4);

    for (const auto &id_str : args.options.at("device")) {
        std::uint64_t id = std::stoull(id_str, nullptr, 0);
        Device device(id, platform);
        auto levels =
            server::defaultChallengeLevels(device.client, 2);
        auto reserved = server::defaultReservedLevel(device.client);
        const auto &record =
            server.enroll(id, device.client, levels, {reserved});
        std::cout << "enrolled device " << id << ": floor "
                  << device.client.floorMv() << " mV, "
                  << record.physicalMap().totalErrors()
                  << " error lines\n";
    }
    server::saveDatabaseFile(server.database(), path);
    std::cout << "database written to " << path << "\n";
    return 0;
}

/**
 * Adopt server state. With --durable DIR the durability directory is
 * authoritative: run crash recovery and continue from whatever state
 * it restores (the --db snapshot only seeds a fresh directory).
 * Without it, the plain snapshot file is loaded directly.
 */
void
adoptState(const Args &args, server::AuthenticationServer &server,
           std::optional<server::DurabilityManager> &durability)
{
    std::string path = args.get("db");
    std::string durable_dir = args.get("durable");
    if (!durable_dir.empty()) {
        server::DurabilityConfig dcfg{durable_dir, 4096};
        auto recovered = server::DurabilityManager::recover(dcfg);
        if (recovered.freshStart)
            server.adoptDatabase(server::loadDatabaseFile(path));
        else
            server.adoptDatabase(std::move(recovered.db));
        durability.emplace(dcfg, server.database(),
                           recovered.lastSeq);
        durability->noteRecovery(recovered);
        server.attachDurability(&*durability);
        server.seedCompletedRemaps(recovered.remapOutcomes);
    } else {
        server.adoptDatabase(server::loadDatabaseFile(path));
    }
}

int
cmdAuth(const Args &args)
{
    std::string path = args.get("db");
    if (path.empty() || !args.has("device"))
        return usage();
    std::uint64_t id = args.getU64("device", 0);
    std::uint64_t rounds = args.getU64("rounds", 1);
    const auto platform = devicePlatform(args);

    server::ServerConfig cfg;
    cfg.challengeBits = 128;
    cfg.verifier.pIntra = 0.08;
    cfg.sessionShards =
        static_cast<unsigned>(args.getU64("shards", 8));
    server::AuthenticationServer server(cfg, 0xA17A);

    std::optional<server::DurabilityManager> durability;
    adoptState(args, server, durability);
    if (!server.database().contains(id)) {
        std::cerr << "device " << id << " not enrolled in " << path
                  << "\n";
        return 1;
    }

    Device device(id, platform);
    device.client.setMapKey(server.database().at(id).mapKey());

    protocol::InMemoryChannel channel;
    protocol::ServerEndpoint server_end(channel);
    server::DeviceAgent agent(id, device.client,
                              protocol::ClientEndpoint(channel));

    util::Table table({"round", "decision", "hamming_distance"});
    for (std::uint64_t round = 1; round <= rounds; ++round) {
        agent.requestAuthentication();
        server::runExchange(server, server_end, agent);
        const auto &d = agent.lastDecision();
        table.row()
            .cell(round)
            .cell(d ? (d->accepted ? "ACCEPTED" : "REJECTED")
                    : (agent.errors().empty()
                           ? "no decision"
                           : agent.errors().back()))
            .cell(d ? std::to_string(d->hammingDistance) : "-");
    }
    table.print(std::cout);

    if (args.has("stats")) {
        util::StatsRegistry registry;
        device.chip->reportStats(registry, "substrate");
        firmware::collectClientStats(device.client, registry);
        server::collectServerStats(server, registry);
        std::cout << "\n";
        registry.dump(std::cout);
    }

    if (durability) {
        // Compact on clean exit: the final state becomes a complete
        // snapshot generation, so the next recovery replays nothing.
        durability->rotate(server.database());
    }
    server::saveDatabaseFile(server.database(), path);
    std::cout << "database updated (consumed pairs persisted)\n";
    return 0;
}

int
cmdRecover(const Args &args)
{
    std::string dir = args.get("durable");
    if (dir.empty())
        return usage();

    server::DurabilityConfig dcfg{dir, 0};
    auto recovered = server::DurabilityManager::recover(dcfg);

    const char *outcome = "?";
    switch (recovered.outcome()) {
    case server::RecoveryOutcome::FreshStart:
        outcome = "fresh start (empty directory)";
        break;
    case server::RecoveryOutcome::SnapshotOnly:
        outcome = "snapshot only";
        break;
    case server::RecoveryOutcome::SnapshotPlusJournal:
        outcome = "snapshot + journal replay";
        break;
    case server::RecoveryOutcome::FallbackSnapshot:
        outcome = "fallback to previous snapshot generation";
        break;
    }
    util::Table table({"field", "value"});
    table.row().cell("outcome").cell(outcome);
    table.row().cell("generation").cell(recovered.generation);
    table.row().cell("last_sequence").cell(recovered.lastSeq);
    table.row()
        .cell("replayed_records")
        .cell(recovered.replayedRecords);
    table.row()
        .cell("snapshot_fallbacks")
        .cell(recovered.snapshotFallbacks);
    table.row()
        .cell("torn_tail_truncated")
        .cell(recovered.tornTailTruncated ? "yes" : "no");
    table.row()
        .cell("remap_outcomes")
        .cell(std::uint64_t(recovered.remapOutcomes.size()));
    table.row()
        .cell("devices")
        .cell(std::uint64_t(recovered.db.size()));
    table.print(std::cout);

    std::string export_path = args.get("export");
    if (!export_path.empty()) {
        server::saveDatabaseFile(recovered.db, export_path);
        std::cout << "recovered database exported to " << export_path
                  << "\n";
    }
    return 0;
}

const char *
tierName(std::uint8_t tier)
{
    switch (static_cast<protocol::TrustTier>(tier)) {
    case protocol::TrustTier::Nominal:
        return "nominal";
    case protocol::TrustTier::StepUp:
        return "step-up";
    case protocol::TrustTier::RemapScheduled:
        return "remap-scheduled";
    case protocol::TrustTier::ReenrollRequired:
        return "reenroll-required";
    case protocol::TrustTier::Revoked:
        return "revoked";
    }
    return "?";
}

int
cmdHeartbeat(const Args &args)
{
    std::string path = args.get("db");
    if (path.empty() || !args.has("device"))
        return usage();
    std::uint64_t id = args.getU64("device", 0);
    std::uint64_t steps = args.getU64("steps", 64);
    const auto platform = devicePlatform(args);

    server::ServerConfig cfg;
    cfg.challengeBits = 128;
    cfg.verifier.pIntra = 0.08;
    server::AuthenticationServer server(cfg, 0xBEA7);

    std::optional<server::DurabilityManager> durability;
    adoptState(args, server, durability);
    if (!server.database().contains(id)) {
        std::cerr << "device " << id << " not enrolled in " << path
                  << "\n";
        return 1;
    }

    Device device(id, platform);
    device.client.setMapKey(server.database().at(id).mapKey());

    util::SimClock clock;
    server.bindClock(&clock);

    protocol::InMemoryChannel channel;
    protocol::ServerEndpoint server_end(channel);
    server::DeviceAgent agent(id, device.client,
                              protocol::ClientEndpoint(channel));
    agent.bindClock(&clock);

    // --drift: a deterministic excursion peaking halfway through the
    // run and holding, so short runs still reach the interesting part
    // of the degradation ladder.
    std::optional<substrate::DriftInjector> drift;
    if (args.has("drift")) {
        sim::DriftScheduleConfig dcfg;
        dcfg.rampSteps = steps / 2 == 0 ? 1 : steps / 2;
        dcfg.holdSteps = steps;
        dcfg.returnToNominal = false;
        drift.emplace(*device.chip,
                      sim::DriftSchedule(0xD21F7, id, dcfg));
        drift->apply(clock.now());
    }

    server.startHeartbeat(id, server_end);

    util::Table table(
        {"step", "trust", "tier", "round", "hamming_distance"});
    std::optional<std::uint32_t> seen_trust;
    std::optional<std::uint8_t> seen_tier;
    std::uint64_t seen_rounds = 0;
    for (std::uint64_t s = 0; s < steps; ++s) {
        bool progress = true;
        while (progress) {
            progress = server.pumpOnce(server_end);
            progress |= agent.pumpOnce();
        }
        if (agent.lastTrust() != seen_trust ||
            agent.lastTier() != seen_tier ||
            agent.heartbeatsAnswered() != seen_rounds) {
            seen_trust = agent.lastTrust();
            seen_tier = agent.lastTier();
            seen_rounds = agent.heartbeatsAnswered();
            const auto &v = agent.lastVerdict();
            if (seen_trust && seen_tier)
                table.row()
                    .cell(clock.now())
                    .cell(std::uint64_t(*seen_trust))
                    .cell(tierName(*seen_tier))
                    .cell(v ? (v->accepted ? "accepted" : "failed")
                            : "-")
                    .cell(v ? std::to_string(v->hammingDistance)
                            : "-");
        }
        if (agent.revoked())
            break;
        clock.advance(1);
        if (drift)
            drift->apply(clock.now());
        server.tickHeartbeats(server_end);
        server.tick();
        agent.tick();
    }
    server.stopHeartbeat(id);

    table.print(std::cout);
    std::cout << "\nheartbeats answered: "
              << agent.heartbeatsAnswered() << ", remaps: "
              << agent.remapsProcessed() << ", final trust: "
              << (seen_trust ? std::to_string(*seen_trust) : "-")
              << " ("
              << (seen_tier ? tierName(*seen_tier) : "no verdict")
              << ")" << (agent.revoked() ? ", REVOKED" : "") << "\n";
    const auto &record = server.database().at(id);
    std::cout << "server record: trust " << record.trustScore()
              << ", remap budget used " << record.remapBudgetUsed()
              << (record.reenrollRequired()
                      ? ", re-enrollment required"
                      : "")
              << (record.revoked() ? ", revoked" : "") << "\n";

    if (args.has("stats")) {
        util::StatsRegistry registry;
        device.chip->reportStats(registry, "substrate");
        firmware::collectClientStats(device.client, registry);
        server::collectServerStats(server, registry);
        std::cout << "\n";
        registry.dump(std::cout);
    }

    if (durability)
        durability->rotate(server.database());
    server::saveDatabaseFile(server.database(), path);
    return 0;
}

int
cmdAdmin(const Args &args, bool revoke)
{
    std::string path = args.get("db");
    if (path.empty() || !args.has("device"))
        return usage();
    std::uint64_t id = args.getU64("device", 0);

    server::ServerConfig cfg;
    server::AuthenticationServer server(cfg, 0xAD317);
    std::optional<server::DurabilityManager> durability;
    adoptState(args, server, durability);
    if (!server.database().contains(id)) {
        std::cerr << "device " << id << " not enrolled in " << path
                  << "\n";
        return 1;
    }

    if (revoke) {
        server.revokeDevice(id);
        std::cout << "device " << id << " revoked\n";
    } else {
        server.unlockDevice(id);
        std::cout << "device " << id
                  << " unlocked (trust restored to "
                  << server.database().at(id).trustScore() << ")\n";
    }
    if (durability)
        durability->rotate(server.database());
    server::saveDatabaseFile(server.database(), path);
    return 0;
}

int
cmdImposter(const Args &args)
{
    std::string path = args.get("db");
    if (path.empty() || !args.has("device") || !args.has("die"))
        return usage();
    std::uint64_t id = args.getU64("device", 0);
    std::uint64_t die = args.getU64("die", 0);
    const auto platform = devicePlatform(args);

    server::ServerConfig cfg;
    cfg.challengeBits = 128;
    cfg.verifier.pIntra = 0.08;
    server::AuthenticationServer server(cfg, 0x1290);
    auto db = server::loadDatabaseFile(path);
    for (const auto &[record_id, record] : db.all())
        server.database().enroll(record);

    Device imposter(die, platform);
    imposter.client.setMapKey(server.database().at(id).mapKey());

    protocol::InMemoryChannel channel;
    protocol::ServerEndpoint server_end(channel);
    server::DeviceAgent agent(id, imposter.client,
                              protocol::ClientEndpoint(channel));
    agent.requestAuthentication();
    server::runExchange(server, server_end, agent);

    if (agent.lastDecision()) {
        std::cout << "imposter die " << die << " presenting device "
                  << id << ": "
                  << (agent.lastDecision()->accepted ? "ACCEPTED"
                                                     : "REJECTED")
                  << " (HD " << agent.lastDecision()->hammingDistance
                  << ")\n";
        return agent.lastDecision()->accepted ? 1 : 0;
    }
    std::cout << "imposter aborted: "
              << (agent.errors().empty() ? "no decision"
                                         : agent.errors().back())
              << "\n";
    return 0;
}

int
cmdKeygen(const Args &args)
{
    if (!args.has("die"))
        return usage();
    std::uint64_t die = args.getU64("die", 0);

    Device device(die, devicePlatform(args));
    firmware::PufKeyGenerator keygen(device.client);
    auto level = static_cast<core::VddMv>(
        device.client.floorMv() + 10.0);

    util::Rng rng(die ^ 0x6EA);
    auto provisioned = keygen.provision(level, rng);
    std::cout << "provisioned a " << keygen.secretBits()
              << "-bit-secret key (BCH n=" << keygen.responseBits()
              << ", t=" << keygen.tolerance() << ")\n";

    for (double dt : {0.0, 15.0, 25.0}) {
        sim::Conditions c;
        c.temperatureDeltaC = dt;
        device.chip->setConditions(c);
        auto key = keygen.regenerate(provisioned.slot);
        std::cout << "regenerate at +" << dt << "C: "
                  << (key ? (*key == provisioned.key
                                 ? "OK"
                                 : "WRONG KEY")
                          : "FAILED (flagged)")
                  << "\n";
    }
    return 0;
}

int
cmdInfo(const Args &args)
{
    std::string path = args.get("db");
    if (path.empty())
        return usage();
    auto db = server::loadDatabaseFile(path);
    std::cout << db.size() << " device(s) in " << path << "\n\n";

    util::Table table({"device", "geometry", "errors", "levels",
                       "accepted", "rejected", "locked"});
    for (const auto &[id, record] : db.all()) {
        table.row()
            .cell(id)
            .cell(record.physicalMap().geometry().describe())
            .cell(std::uint64_t(record.physicalMap().totalErrors()))
            .cell(std::uint64_t(record.challengeLevels().size()))
            .cell(record.accepted())
            .cell(record.rejected())
            .cell(record.locked() ? "yes" : "no");
    }
    table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    try {
        if (args.command == "enroll")
            return cmdEnroll(args);
        if (args.command == "auth")
            return cmdAuth(args);
        if (args.command == "recover")
            return cmdRecover(args);
        if (args.command == "heartbeat")
            return cmdHeartbeat(args);
        if (args.command == "revoke")
            return cmdAdmin(args, /*revoke=*/true);
        if (args.command == "unlock")
            return cmdAdmin(args, /*revoke=*/false);
        if (args.command == "imposter")
            return cmdImposter(args);
        if (args.command == "keygen")
            return cmdKeygen(args);
        if (args.command == "info")
            return cmdInfo(args);
        return usage();
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
