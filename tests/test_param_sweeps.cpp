/**
 * @file
 * Parameterized sweeps over code/extractor/verifier configuration
 * spaces: BCH (m, t) grid, repetition factors, verifier thresholds
 * across CRP sizes, and challenge-generation exhaustion.
 */

#include <gtest/gtest.h>

#include "crypto/fuzzy_extractor.hpp"
#include "core/crp.hpp"
#include "ecc/bch.hpp"
#include "mc/mapgen.hpp"
#include "server/challenge_gen.hpp"
#include "server/verifier.hpp"
#include "util/rng.hpp"

namespace e = authenticache::ecc;
namespace c = authenticache::crypto;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace srv = authenticache::server;
using authenticache::util::BitVec;
using authenticache::util::Rng;

// ---------------------------------------------------------------- BCH

class BchGrid
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(BchGrid, EncodeDecodeAtFullCorrectionPower)
{
    auto [m, t] = GetParam();
    e::BchCode code(m, t);
    EXPECT_EQ(code.n(), (1u << m) - 1);
    EXPECT_GT(code.k(), 0u);

    Rng rng(m * 100 + t);
    for (int trial = 0; trial < 10; ++trial) {
        BitVec message(code.k());
        for (std::size_t i = 0; i < message.size(); ++i)
            message.set(i, rng.nextBool());
        auto codeword = code.encode(message);

        BitVec corrupted = codeword;
        for (auto pos : rng.sampleDistinct(code.n(), t))
            corrupted.flip(pos);

        auto decoded = code.decode(corrupted);
        ASSERT_TRUE(decoded.has_value());
        ASSERT_EQ(code.extractMessage(*decoded), message);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BchGrid,
    ::testing::Values(std::pair<unsigned, unsigned>{5, 3},
                      std::pair<unsigned, unsigned>{6, 4},
                      std::pair<unsigned, unsigned>{6, 7},
                      std::pair<unsigned, unsigned>{7, 5},
                      std::pair<unsigned, unsigned>{8, 23},
                      std::pair<unsigned, unsigned>{9, 11}));

// ------------------------------------------------- repetition factors

class RepetitionFactors : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RepetitionFactors, CorrectsBelowHalfPerGroup)
{
    const unsigned rep = GetParam();
    c::FuzzyExtractor fe(rep);
    Rng rng(rep);
    const std::size_t groups = 24;
    BitVec response(groups * rep);
    for (std::size_t i = 0; i < response.size(); ++i)
        response.set(i, rng.nextBool());
    auto out = fe.generate(response, rng);

    // Flip floor(rep/2) bits in every group: still corrects.
    BitVec noisy = response;
    for (std::size_t g = 0; g < groups; ++g) {
        for (unsigned j = 0; j < rep / 2; ++j)
            noisy.flip(g * rep + j);
    }
    EXPECT_EQ(fe.reproduce(noisy, out.helper), out.key);

    // One more flip in one group: that group majority-flips.
    noisy.flip(rep / 2);
    EXPECT_NE(fe.reproduce(noisy, out.helper), out.key);
}

INSTANTIATE_TEST_SUITE_P(OddFactors, RepetitionFactors,
                         ::testing::Values(3u, 5u, 7u, 9u));

// -------------------------------------------------- verifier policy

class VerifierSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(VerifierSizes, ThresholdScalesWithResponseLength)
{
    const std::size_t bits = GetParam();
    srv::Verifier verifier;
    auto threshold = verifier.thresholdFor(bits);
    // Threshold sits strictly between the intra mean (6% of n) and
    // the inter mean (50% of n).
    EXPECT_GT(static_cast<double>(threshold), 0.06 * bits);
    EXPECT_LT(static_cast<double>(threshold), 0.5 * bits);

    // Doubling the response grows the threshold, but sub-linearly:
    // the binomial tails sharpen with n, so the crossing point moves
    // proportionally closer to the intra mean.
    auto twice = verifier.thresholdFor(bits * 2);
    EXPECT_GT(twice, threshold);
    // +1 slack: the threshold is an integer and the crossing point
    // can round up.
    EXPECT_LE(twice, 2 * threshold + 1);
    double frac = static_cast<double>(threshold) /
                  static_cast<double>(bits);
    double frac2 = static_cast<double>(twice) /
                   static_cast<double>(2 * bits);
    EXPECT_LE(frac2, frac + 0.5 / static_cast<double>(bits));
}

INSTANTIATE_TEST_SUITE_P(CrpSizes, VerifierSizes,
                         ::testing::Values(64u, 128u, 256u, 512u));

// ----------------------------------------- challenge-space exhaustion

TEST(ChallengeExhaustion, TinyCacheRunsOutOfFreshPairs)
{
    // 8KB cache: 128 lines, 8128 possible pairs. Draw until dry.
    sim::CacheGeometry tiny(8 * 1024);
    Rng rng(1);
    auto map = authenticache::mc::randomErrorMap(tiny, 700, 5, rng);
    srv::DeviceRecord record(1, std::move(map), {700}, {});
    srv::ChallengeGenerator gen(Rng(2));

    const std::uint64_t total = core::possibleCrps(tiny.lines());
    std::uint64_t consumed = 0;
    // Generate 63-bit challenges until the generator gives up.
    bool exhausted = false;
    for (int round = 0; round < 200 && !exhausted; ++round) {
        try {
            auto out = gen.generate(record, 700, 63);
            consumed += out.challenge.size();
        } catch (const std::runtime_error &) {
            exhausted = true;
        }
    }
    EXPECT_TRUE(exhausted);
    // Nearly the whole pair space was served before giving up.
    EXPECT_GT(consumed, total * 9 / 10);
    EXPECT_LE(consumed, total);
}

TEST(ChallengeExhaustion, RemainingPairsTracksConsumption)
{
    sim::CacheGeometry tiny(8 * 1024);
    Rng rng(3);
    auto map = authenticache::mc::randomErrorMap(tiny, 700, 5, rng);
    srv::DeviceRecord record(1, std::move(map), {700}, {});
    srv::ChallengeGenerator gen(Rng(4));

    auto before = record.remainingPairs(700);
    gen.generate(record, 700, 32);
    EXPECT_EQ(record.remainingPairs(700), before - 32);
}

// -------------------------------------------------- SMM bookkeeping

#include "firmware/machine.hpp"

TEST(SmmBookkeeping, SmiCountAccumulatesAcrossSessions)
{
    authenticache::firmware::SimulatedMachine machine(2);
    for (int i = 0; i < 5; ++i)
        authenticache::firmware::SmmSession session(machine, i % 2);
    EXPECT_EQ(machine.smiCount(), 5u);
    EXPECT_FALSE(machine.inSmm());
}
