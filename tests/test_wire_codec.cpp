/**
 * @file
 * Wire-codec conformance: the streaming frame decoder must survive
 * hostile and fragmented input without crashing, over-reading, or
 * accepting a damaged frame.
 *
 *  - Round-trip of all 12 protocol message types through
 *    encodeWireMessage -> WireDecoder -> decodeMessage, across
 *    boundary stream ids.
 *  - Torn reads: a multi-frame byte stream split at *every* offset,
 *    and fed one byte at a time (slow-loris shape).
 *  - Length-prefix abuse: oversized and undersized payload lengths,
 *    including both exact bounds.
 *  - Corruption: every single-byte flip across an entire frame must
 *    be rejected (CRC or a header check), never yield a frame.
 *  - Garbage preambles and sticky-error semantics: once poisoned, a
 *    decoder stays poisoned even when valid frames follow.
 *
 * The suite runs under ASan/UBSan in CI (transport-soak), which turns
 * "never over-reads" from a comment into a checked property.
 */

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.hpp"
#include "protocol/messages.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace net = authenticache::net;
namespace proto = authenticache::protocol;
namespace core = authenticache::core;
namespace util = authenticache::util;

namespace {

core::Challenge
sampleChallenge()
{
    core::CacheGeometry geom(64 * 1024);
    util::Rng rng(0xC0DEC);
    return core::randomChallenge(geom, 700.0, 32, rng);
}

util::BitVec
sampleBits(std::size_t n)
{
    util::BitVec v(n);
    for (std::size_t i = 0; i < n; i += 3)
        v.set(i, true);
    return v;
}

/** One of each protocol message type, with non-trivial payloads. */
std::vector<proto::Message>
allMessageTypes()
{
    proto::RemapAck ack;
    ack.nonce = 77;
    ack.success = true;
    for (std::size_t i = 0; i < ack.confirmation.size(); ++i)
        ack.confirmation[i] = static_cast<std::uint8_t>(i * 7);

    proto::TrustUpdate verdict;
    verdict.nonce = 48;
    verdict.trust = 73;
    verdict.tier = 1;
    verdict.accepted = true;
    verdict.hammingDistance = 9;

    return {
        proto::AuthRequest{0xDEADBEEFCAFEULL},
        proto::ChallengeMsg{42, sampleChallenge()},
        proto::ResponseMsg{43, sampleBits(64)},
        proto::AuthDecision{44, true, 3},
        proto::RemapRequest{45, sampleChallenge(), sampleBits(160), 5},
        ack,
        proto::ErrorMsg{"wire codec test"},
        proto::RemapCommit{46, true},
        proto::Heartbeat{47, 12, sampleChallenge()},
        proto::HeartbeatProof{47, sampleBits(96)},
        verdict,
        proto::Revoke{0xFEEDULL, "trust exhausted"},
    };
}

/** Feed @p bytes in one go and pull every frame. */
std::vector<net::WireFrame>
decodeAll(net::WireDecoder &dec, std::span<const std::uint8_t> bytes)
{
    dec.feed(bytes);
    std::vector<net::WireFrame> out;
    while (auto f = dec.next())
        out.push_back(std::move(*f));
    return out;
}

/** Raw frame with an arbitrary payload length field and body. */
std::vector<std::uint8_t>
rawFrame(std::uint64_t stream, std::uint32_t claimed_len,
         const std::vector<std::uint8_t> &body)
{
    std::vector<std::uint8_t> f;
    auto putU32 = [&](std::uint32_t v) {
        f.push_back(static_cast<std::uint8_t>(v));
        f.push_back(static_cast<std::uint8_t>(v >> 8));
        f.push_back(static_cast<std::uint8_t>(v >> 16));
        f.push_back(static_cast<std::uint8_t>(v >> 24));
    };
    putU32(net::kWireMagic);
    putU32(static_cast<std::uint32_t>(stream));
    putU32(static_cast<std::uint32_t>(stream >> 32));
    putU32(claimed_len);
    f.insert(f.end(), body.begin(), body.end());
    putU32(util::crc32(
        std::span<const std::uint8_t>(f.data() + 4, f.size() - 4)));
    return f;
}

} // namespace

TEST(WireCodec, RoundTripsAllMessageTypes)
{
    const std::uint64_t streams[] = {0, 1, 0xFFFFFFFFULL,
                                     0xFFFFFFFFFFFFFFFFULL};
    std::size_t s = 0;
    for (const auto &m : allMessageTypes()) {
        std::uint64_t stream = streams[s++ % std::size(streams)];
        auto bytes = net::encodeWireMessage(stream, m);

        net::WireDecoder dec;
        auto frames = decodeAll(dec, bytes);
        ASSERT_EQ(frames.size(), 1u)
            << "type " << int(proto::messageType(m));
        EXPECT_EQ(frames[0].stream, stream);
        EXPECT_FALSE(dec.failed());
        EXPECT_EQ(dec.buffered(), 0u);

        // The inner payload decodes back to the same message bytes.
        auto decoded = proto::decodeMessage(frames[0].payload);
        EXPECT_EQ(proto::encodeMessage(decoded),
                  proto::encodeMessage(m));
    }
}

TEST(WireCodec, TornReadAtEverySplitOffset)
{
    // One frame of every message type back to back; the stream is
    // split into two feeds at every possible offset. Decoding must be
    // split-invariant.
    auto msgs = allMessageTypes();
    std::vector<std::uint8_t> stream;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
        auto f = net::encodeWireMessage(100 + i, msgs[i]);
        stream.insert(stream.end(), f.begin(), f.end());
    }

    for (std::size_t split = 0; split <= stream.size(); ++split) {
        net::WireDecoder dec;
        std::vector<net::WireFrame> got;
        dec.feed(std::span<const std::uint8_t>(stream.data(), split));
        while (auto f = dec.next())
            got.push_back(std::move(*f));
        dec.feed(std::span<const std::uint8_t>(stream.data() + split,
                                               stream.size() - split));
        while (auto f = dec.next())
            got.push_back(std::move(*f));

        ASSERT_FALSE(dec.failed()) << "split=" << split;
        ASSERT_EQ(got.size(), msgs.size()) << "split=" << split;
        for (std::size_t i = 0; i < msgs.size(); ++i) {
            EXPECT_EQ(got[i].stream, 100 + i);
            EXPECT_EQ(got[i].payload, proto::encodeMessage(msgs[i]));
        }
        EXPECT_EQ(dec.buffered(), 0u);
    }
}

TEST(WireCodec, ByteAtATimeSlowLoris)
{
    // 64 frames dribbled one byte at a time: correctness plus the
    // lazy-compaction path (the buffer must not keep every dead byte).
    net::WireDecoder dec;
    std::size_t got = 0;
    for (std::size_t i = 0; i < 64; ++i) {
        auto f = net::encodeWireMessage(
            i, proto::Message{proto::AuthRequest{i}});
        for (std::uint8_t b : f) {
            dec.feed(std::span<const std::uint8_t>(&b, 1));
            while (auto frame = dec.next()) {
                EXPECT_EQ(frame->stream, got);
                ++got;
            }
        }
    }
    EXPECT_EQ(got, 64u);
    EXPECT_FALSE(dec.failed());
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireCodec, OversizedLengthRejected)
{
    // Claimed length just past the cap: rejected *before* waiting for
    // (or allocating) a payload of that size.
    auto f = rawFrame(7, net::kMaxWirePayload + 1, {});
    f.resize(net::kWireHeaderBytes); // Header only; no body needed.
    net::WireDecoder dec;
    EXPECT_TRUE(decodeAll(dec, f).empty());
    EXPECT_TRUE(dec.failed());
    EXPECT_EQ(dec.error(), net::WireError::Oversized);
}

TEST(WireCodec, UndersizedLengthRejected)
{
    for (std::uint32_t len = 0; len < net::kMinWirePayload; ++len) {
        auto f = rawFrame(7, len,
                          std::vector<std::uint8_t>(len, 0xAA));
        net::WireDecoder dec;
        EXPECT_TRUE(decodeAll(dec, f).empty()) << "len=" << len;
        EXPECT_EQ(dec.error(), net::WireError::Undersized)
            << "len=" << len;
    }
}

TEST(WireCodec, ExactBoundsAccepted)
{
    // The wire layer's bounds are inclusive: kMinWirePayload and
    // kMaxWirePayload both pass (inner message decoding is a separate
    // layer's business).
    for (std::size_t len : {net::kMinWirePayload,
                            net::kMaxWirePayload}) {
        std::vector<std::uint8_t> body(len, 0x5C);
        auto f = rawFrame(
            9, static_cast<std::uint32_t>(len), body);
        net::WireDecoder dec;
        auto frames = decodeAll(dec, f);
        ASSERT_EQ(frames.size(), 1u) << "len=" << len;
        EXPECT_EQ(frames[0].payload, body);
        EXPECT_FALSE(dec.failed());
    }
}

TEST(WireCodec, EverySingleByteCorruptionRejected)
{
    // Representative small frames of both classic and heartbeat-era
    // message types; every type gets the every-byte-flip treatment.
    proto::TrustUpdate verdict;
    verdict.nonce = 5;
    verdict.trust = 41;
    verdict.tier = 2;
    verdict.accepted = false;
    verdict.hammingDistance = 17;
    const std::vector<proto::Message> victims = {
        proto::AuthDecision{5, true, 1},
        proto::HeartbeatProof{6, sampleBits(48)},
        verdict,
        proto::Revoke{9, "corruption test"},
    };

    // A flipped length byte can *grow* the claimed payload, which
    // legitimately looks like a torn frame until that many bytes
    // arrive -- so pad generously past any reachable claimed length.
    // The outer CRC then convicts the frame (it covers the length
    // field), so every flip must end in failure with zero frames.
    const std::vector<std::uint8_t> padding(20000, 0);
    for (const auto &victim : victims) {
        auto clean = net::encodeWireMessage(0x1234, victim);
        for (std::size_t pos = 0; pos < clean.size(); ++pos) {
            auto bad = clean;
            bad[pos] ^= 0x40;
            net::WireDecoder dec;
            auto frames = decodeAll(dec, bad);
            EXPECT_TRUE(frames.empty())
                << "type " << int(proto::messageType(victim))
                << " corrupt byte " << pos;
            dec.feed(padding);
            EXPECT_FALSE(dec.next().has_value())
                << "type " << int(proto::messageType(victim))
                << " corrupt byte " << pos;
            EXPECT_TRUE(dec.failed())
                << "type " << int(proto::messageType(victim))
                << " corrupt byte " << pos;
        }
    }
}

TEST(WireCodec, GarbagePreambleRejectedAndSticky)
{
    util::Rng rng(0xBADF00D);
    for (int trial = 0; trial < 32; ++trial) {
        std::vector<std::uint8_t> junk(net::kWireHeaderBytes + 16);
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        // Make sure the preamble really is garbage.
        junk[0] ^= 0xFF;

        net::WireDecoder dec;
        EXPECT_TRUE(decodeAll(dec, junk).empty());
        EXPECT_TRUE(dec.failed());
        EXPECT_EQ(dec.error(), net::WireError::BadMagic);

        // Sticky: a perfectly valid frame after the poison must not
        // resurrect the stream.
        auto good = net::encodeWireMessage(
            1, proto::Message{proto::AuthRequest{1}});
        EXPECT_TRUE(decodeAll(dec, good).empty());
        EXPECT_TRUE(dec.failed());
    }
}

TEST(WireCodec, TruncatedFrameNeverProducesOutput)
{
    // Every proper prefix of a valid frame yields nothing and no
    // error -- the decoder just waits. (ASan guards the "no read past
    // the fed bytes" half of the property.)
    auto f = net::encodeWireMessage(
        3, proto::Message{proto::ErrorMsg{"truncate me"}});
    for (std::size_t keep = 0; keep < f.size(); ++keep) {
        net::WireDecoder dec;
        dec.feed(std::span<const std::uint8_t>(f.data(), keep));
        EXPECT_FALSE(dec.next().has_value()) << "keep=" << keep;
        EXPECT_FALSE(dec.failed()) << "keep=" << keep;
        EXPECT_EQ(dec.buffered(), keep);
    }
}

TEST(WireCodec, InterleavedStreamsShareOneConnection)
{
    // Frames from many logical streams interleave arbitrarily on one
    // connection; the decoder preserves (stream, payload) pairing and
    // arrival order.
    net::WireDecoder dec;
    std::vector<std::uint8_t> bytes;
    for (std::uint64_t s = 0; s < 40; ++s) {
        auto f = net::encodeWireMessage(
            s % 5, proto::Message{proto::AuthRequest{1000 + s}});
        bytes.insert(bytes.end(), f.begin(), f.end());
    }
    auto frames = decodeAll(dec, bytes);
    ASSERT_EQ(frames.size(), 40u);
    for (std::uint64_t s = 0; s < 40; ++s) {
        EXPECT_EQ(frames[s].stream, s % 5);
        auto m = proto::decodeMessage(frames[s].payload);
        EXPECT_EQ(std::get<proto::AuthRequest>(m).deviceId, 1000 + s);
    }
}
