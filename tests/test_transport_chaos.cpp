/**
 * @file
 * Chaos suite for the real-socket transport: the fault classes the
 * in-memory channel injects via FaultPlan (drop, duplicate, corrupt,
 * delay), recreated at the socket layer against a live EpollTransport,
 * plus the failure shapes only a real wire has -- mid-frame
 * disconnects, half-open peers, slow-loris single-byte writers, and
 * reconnect-with-session-resume.
 *
 * The properties under test are the server-side invariants the
 * loopback suites establish, now asserted over TCP: a torn or
 * corrupted connection dies alone (other tenants keep
 * authenticating), duplicate frames hit the session dedup path
 * idempotently, session GC reclaims sessions whose peer vanished, and
 * an authentication started on one connection completes on another
 * (sessions belong to devices, not sockets).
 *
 * Everything runs single-threaded around a non-blocking pump, so the
 * suite is free of sleeps and wall-clock timing; waiting is bounded
 * pump iterations with millisecond poll budgets.
 */

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/remap.hpp"
#include "mc/mapgen.hpp"
#include "net/epoll_transport.hpp"
#include "net/socket_client.hpp"
#include "server/server.hpp"
#include "util/sim_clock.hpp"

namespace net = authenticache::net;
namespace proto = authenticache::protocol;
namespace core = authenticache::core;
namespace srv = authenticache::server;
namespace mc = authenticache::mc;
namespace util = authenticache::util;

namespace {

constexpr std::uint64_t kServerSeed = 0xC4A05;
constexpr std::uint64_t kFirstId = 701;
constexpr core::VddMv kLevel = 700.0;
constexpr std::uint64_t kSessionTimeout = 50;

srv::ServerConfig
serverConfig()
{
    srv::ServerConfig cfg;
    cfg.challengeBits = 32;
    cfg.remapSecretBits = 8;
    cfg.fuzzyRepetition = 5;
    cfg.verifier.pIntra = 0.08;
    cfg.sessionShards = 4;
    cfg.sessionTimeoutSteps = kSessionTimeout;
    return cfg;
}

struct Rig
{
    srv::ServerConfig cfg;
    srv::AuthenticationServer server;
    util::SimClock clock;
    net::EpollTransport transport;
    util::ThreadPool pool{2};

    explicit Rig(std::size_t n_devices)
        : cfg(serverConfig()), server(cfg, kServerSeed),
          transport(server.frontEnd(), net::TransportConfig{})
    {
        server.bindClock(&clock);
        core::CacheGeometry geom(64 * 1024);
        for (std::size_t i = 0; i < n_devices; ++i) {
            std::uint64_t id = kFirstId + i;
            util::Rng mr = util::Rng::forStream(0xD1CE, id);
            server.database().enroll(srv::DeviceRecord(
                id, mc::randomErrorMap(geom, kLevel, 40, mr),
                {kLevel}, {}));
        }
    }

    /** Pump @p cycles service cycles (1 ms poll budget each). */
    void
    pumpFor(int cycles)
    {
        for (int i = 0; i < cycles; ++i)
            transport.pump(pool, 1);
    }

    /** Pump until @p client yields a reply or the budget runs out. */
    std::optional<std::pair<std::uint64_t, proto::Message>>
    awaitReply(net::SocketClient &client, int budget = 2000)
    {
        for (int i = 0; i < budget; ++i) {
            transport.pump(pool, 1);
            if (auto m = client.readMessage(2))
                return m;
            if (client.failed())
                return std::nullopt;
        }
        return std::nullopt;
    }
};

/** The response an honest, noiseless device returns. */
util::BitVec
honestResponse(const srv::DeviceRecord &rec, const core::Challenge &ch)
{
    core::LogicalRemap remap(rec.mapKey(),
                             rec.physicalMap().geometry());
    return core::evaluate(remap.mapErrorMap(rec.physicalMap()), ch);
}

/** Run one full auth for @p device over @p client; expect accept. */
void
completeAuth(Rig &rig, net::SocketClient &client,
             std::uint64_t device)
{
    ASSERT_TRUE(client.sendMessage(
        device, proto::Message{proto::AuthRequest{device}}));
    auto challenge = rig.awaitReply(client);
    ASSERT_TRUE(challenge.has_value());
    auto *ch = std::get_if<proto::ChallengeMsg>(&challenge->second);
    ASSERT_NE(ch, nullptr);

    auto resp = honestResponse(rig.server.database().at(device),
                               ch->challenge);
    ASSERT_TRUE(client.sendMessage(
        device,
        proto::Message{proto::ResponseMsg{ch->nonce, resp}}));
    auto decision = rig.awaitReply(client);
    ASSERT_TRUE(decision.has_value());
    auto *d = std::get_if<proto::AuthDecision>(&decision->second);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->accepted);
}

} // namespace

TEST(TransportChaos, HonestAuthOverRealSocket)
{
    Rig rig(1);
    net::SocketClient client;
    ASSERT_TRUE(client.connectTo(rig.transport.port()));
    completeAuth(rig, client, kFirstId);
    EXPECT_EQ(rig.transport.counters().codecErrors, 0u);
}

TEST(TransportChaos, MidFrameDisconnectDiesAlone)
{
    Rig rig(2);
    net::SocketClient victim;
    net::SocketClient bystander;
    ASSERT_TRUE(victim.connectTo(rig.transport.port()));
    ASSERT_TRUE(bystander.connectTo(rig.transport.port()));
    rig.pumpFor(5); // Both connections accepted.

    // The victim sends half a frame, lets the server ingest it, then
    // resets the connection mid-frame.
    auto frame = net::encodeWireMessage(
        kFirstId, proto::Message{proto::AuthRequest{kFirstId}});
    ASSERT_TRUE(victim.writeRaw(
        std::span<const std::uint8_t>(frame.data(),
                                      frame.size() / 2)));
    rig.pumpFor(10);
    victim.abort();
    rig.pumpFor(20);

    // The torn connection is gone; the bystander is untouched and
    // authenticates end to end.
    EXPECT_EQ(rig.transport.connectionCount(), 1u);
    completeAuth(rig, bystander, kFirstId + 1);
    EXPECT_EQ(rig.transport.counters().codecErrors, 0u);
}

TEST(TransportChaos, CorruptFrameKillsOnlyItsConnection)
{
    Rig rig(2);
    net::SocketClient evil;
    net::SocketClient honest;
    ASSERT_TRUE(evil.connectTo(rig.transport.port()));
    ASSERT_TRUE(honest.connectTo(rig.transport.port()));
    rig.pumpFor(5);

    // FaultPlan's Corrupt, at the socket layer: one flipped payload
    // byte. The wire CRC convicts the frame; the transport treats it
    // as connection-fatal.
    auto frame = net::encodeWireMessage(
        kFirstId, proto::Message{proto::AuthRequest{kFirstId}});
    frame[net::kWireHeaderBytes + 2] ^= 0x10;
    ASSERT_TRUE(evil.writeRaw(frame));
    rig.pumpFor(20);

    EXPECT_EQ(rig.transport.counters().codecErrors, 1u);
    EXPECT_EQ(rig.transport.connectionCount(), 1u);

    // The poisoned peer gets a clean close, not a reply.
    EXPECT_FALSE(evil.readMessage(10).has_value());

    completeAuth(rig, honest, kFirstId + 1);
}

TEST(TransportChaos, GarbagePreambleRejected)
{
    Rig rig(1);
    net::SocketClient client;
    ASSERT_TRUE(client.connectTo(rig.transport.port()));
    rig.pumpFor(5);

    std::vector<std::uint8_t> junk = {0xDE, 0xAD, 0xBE, 0xEF, 0x00,
                                      0x01, 0x02, 0x03, 0x04, 0x05,
                                      0x06, 0x07, 0x08, 0x09, 0x0A,
                                      0x0B, 0x0C, 0x0D};
    ASSERT_TRUE(client.writeRaw(junk));
    rig.pumpFor(20);

    EXPECT_EQ(rig.transport.counters().codecErrors, 1u);
    EXPECT_EQ(rig.transport.connectionCount(), 0u);
}

TEST(TransportChaos, SlowLorisSingleByteWriter)
{
    Rig rig(1);
    net::SocketClient client;
    ASSERT_TRUE(client.connectTo(rig.transport.port()));

    // One byte per service cycle: the frame trickles in across ~40
    // pumps and must still decode to exactly one request.
    auto frame = net::encodeWireMessage(
        kFirstId, proto::Message{proto::AuthRequest{kFirstId}});
    for (std::uint8_t b : frame) {
        ASSERT_TRUE(client.writeRaw(
            std::span<const std::uint8_t>(&b, 1)));
        rig.transport.pump(rig.pool, 1);
    }

    auto reply = rig.awaitReply(client);
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(std::get_if<proto::ChallengeMsg>(&reply->second),
              nullptr);
    EXPECT_EQ(rig.transport.counters().framesIn, 1u);
}

TEST(TransportChaos, DuplicateFramesAreIdempotent)
{
    // FaultPlan's Duplicate at the socket layer: the same request
    // frame twice back to back. The session layer's dedup must
    // re-issue the same challenge, not open a second session.
    Rig rig(1);
    net::SocketClient client;
    ASSERT_TRUE(client.connectTo(rig.transport.port()));

    auto frame = net::encodeWireMessage(
        kFirstId, proto::Message{proto::AuthRequest{kFirstId}});
    ASSERT_TRUE(client.writeRaw(frame));
    ASSERT_TRUE(client.writeRaw(frame));

    auto first = rig.awaitReply(client);
    auto second = rig.awaitReply(client);
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    auto *c1 = std::get_if<proto::ChallengeMsg>(&first->second);
    auto *c2 = std::get_if<proto::ChallengeMsg>(&second->second);
    ASSERT_NE(c1, nullptr);
    ASSERT_NE(c2, nullptr);
    EXPECT_EQ(c1->nonce, c2->nonce);
    EXPECT_EQ(rig.server.duplicateRequests(), 1u);
    EXPECT_EQ(rig.server.pendingSessions(), 1u);
}

TEST(TransportChaos, HalfOpenConnectionIsGcdNotServed)
{
    // A peer that opens a session and vanishes without closing (half
    // open: no FIN, no RST, no bytes). The connection itself can
    // linger, but the *session* must not: GC reclaims it at the
    // timeout, exactly as over the in-memory channel.
    Rig rig(1);
    net::SocketClient client;
    ASSERT_TRUE(client.connectTo(rig.transport.port()));
    ASSERT_TRUE(client.sendMessage(
        kFirstId, proto::Message{proto::AuthRequest{kFirstId}}));
    auto challenge = rig.awaitReply(client);
    ASSERT_TRUE(challenge.has_value());
    ASSERT_EQ(rig.server.pendingSessions(), 1u);

    // The peer goes silent forever. Time passes; GC fires.
    rig.clock.advance(kSessionTimeout + 1);
    rig.server.tick();
    rig.pumpFor(5);
    EXPECT_EQ(rig.server.pendingSessions(), 0u);
    EXPECT_EQ(rig.server.sessionsExpired(), 1u);

    // A late response on the reclaimed session earns an error, not a
    // resurrection.
    auto *ch = std::get_if<proto::ChallengeMsg>(&challenge->second);
    auto resp = honestResponse(rig.server.database().at(kFirstId),
                               ch->challenge);
    ASSERT_TRUE(client.sendMessage(
        kFirstId,
        proto::Message{proto::ResponseMsg{ch->nonce, resp}}));
    auto reply = rig.awaitReply(client);
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(std::get_if<proto::ErrorMsg>(&reply->second), nullptr);
    EXPECT_EQ(rig.server.pendingSessions(), 0u);
}

TEST(TransportChaos, ReconnectResumesSession)
{
    // Sessions belong to devices, not sockets: a challenge issued on
    // one connection is answerable from a fresh one after the first
    // dies (the reconnect path of a flaky but honest device).
    Rig rig(1);
    net::SocketClient first;
    ASSERT_TRUE(first.connectTo(rig.transport.port()));
    ASSERT_TRUE(first.sendMessage(
        kFirstId, proto::Message{proto::AuthRequest{kFirstId}}));
    auto challenge = rig.awaitReply(first);
    ASSERT_TRUE(challenge.has_value());
    auto *ch = std::get_if<proto::ChallengeMsg>(&challenge->second);
    ASSERT_NE(ch, nullptr);

    first.close(); // Orderly FIN; the server reaps the connection.
    rig.pumpFor(20);
    EXPECT_EQ(rig.transport.connectionCount(), 0u);
    EXPECT_EQ(rig.server.pendingSessions(), 1u);

    net::SocketClient second;
    ASSERT_TRUE(second.connectTo(rig.transport.port()));
    auto resp = honestResponse(rig.server.database().at(kFirstId),
                               ch->challenge);
    ASSERT_TRUE(second.sendMessage(
        kFirstId,
        proto::Message{proto::ResponseMsg{ch->nonce, resp}}));
    auto decision = rig.awaitReply(second);
    ASSERT_TRUE(decision.has_value());
    auto *d = std::get_if<proto::AuthDecision>(&decision->second);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->accepted);
    EXPECT_EQ(rig.server.pendingSessions(), 0u);
}

TEST(TransportChaos, DroppedRequestLeavesNoTrace)
{
    // FaultPlan's Drop at the socket layer is trivial -- the frame
    // never leaves the client -- but the server-visible property
    // still matters: no session, no reply, and the next real request
    // behaves as if nothing happened.
    Rig rig(1);
    net::SocketClient client;
    ASSERT_TRUE(client.connectTo(rig.transport.port()));
    rig.pumpFor(10);
    EXPECT_EQ(rig.server.pendingSessions(), 0u);
    EXPECT_EQ(rig.transport.counters().framesIn, 0u);
    completeAuth(rig, client, kFirstId);
}

TEST(TransportChaos, LongLivedConnectionDoesNotGrowSinkTable)
{
    // A device that reuses one connection for many exchanges, each on
    // a fresh stream id. Without per-stream sink GC the connection's
    // stream table would gain one entry per exchange forever; with it,
    // every terminal AuthDecision retires its sink and the table is
    // empty between exchanges.
    Rig rig(1);
    net::SocketClient client;
    ASSERT_TRUE(client.connectTo(rig.transport.port()));

    constexpr int kRounds = 16;
    for (int i = 0; i < kRounds; ++i) {
        const std::uint64_t stream = 1000 + i;
        ASSERT_TRUE(client.sendMessage(
            stream, proto::Message{proto::AuthRequest{kFirstId}}));
        auto challenge = rig.awaitReply(client);
        ASSERT_TRUE(challenge.has_value());
        auto *ch = std::get_if<proto::ChallengeMsg>(&challenge->second);
        ASSERT_NE(ch, nullptr);

        auto resp = honestResponse(rig.server.database().at(kFirstId),
                                   ch->challenge);
        ASSERT_TRUE(client.sendMessage(
            stream,
            proto::Message{proto::ResponseMsg{ch->nonce, resp}}));
        auto decision = rig.awaitReply(client);
        ASSERT_TRUE(decision.has_value());
        ASSERT_NE(std::get_if<proto::AuthDecision>(&decision->second),
                  nullptr);
    }

    std::size_t live_sinks = 0;
    for (auto &[id, conn] :
         rig.transport.transportCore().connections())
        live_sinks += conn->streams.size();
    EXPECT_EQ(live_sinks, 0u);
    EXPECT_EQ(rig.transport.counters().sinksRetired,
              static_cast<std::uint64_t>(kRounds));
}

TEST(TransportChaos, ManyConnectionsSurviveOneAbusiveNeighbor)
{
    // One slow-loris + one corrupter + one resetter, interleaved with
    // three honest devices authenticating: the honest traffic must
    // complete, and exactly the two poisoned connections die.
    Rig rig(3);
    net::SocketClient loris;
    net::SocketClient corrupter;
    net::SocketClient resetter;
    std::vector<net::SocketClient> honest(3);
    ASSERT_TRUE(loris.connectTo(rig.transport.port()));
    ASSERT_TRUE(corrupter.connectTo(rig.transport.port()));
    ASSERT_TRUE(resetter.connectTo(rig.transport.port()));
    for (std::size_t i = 0; i < honest.size(); ++i)
        ASSERT_TRUE(honest[i].connectTo(rig.transport.port()));
    rig.pumpFor(5);

    auto frame = net::encodeWireMessage(
        kFirstId, proto::Message{proto::AuthRequest{kFirstId}});
    // Loris: forever mid-frame.
    ASSERT_TRUE(loris.writeRaw(std::span<const std::uint8_t>(
        frame.data(), frame.size() - 1)));
    // Corrupter: CRC-broken frame.
    auto bad = frame;
    bad[net::kWireHeaderBytes] ^= 0x01;
    ASSERT_TRUE(corrupter.writeRaw(bad));
    // Resetter: half a frame then RST.
    ASSERT_TRUE(resetter.writeRaw(std::span<const std::uint8_t>(
        frame.data(), frame.size() / 2)));
    rig.pumpFor(10);
    resetter.abort();

    for (std::size_t i = 0; i < honest.size(); ++i)
        completeAuth(rig, honest[i], kFirstId + i);

    rig.pumpFor(20);
    // Corrupter and resetter are dead; loris plus the three honest
    // connections remain.
    EXPECT_EQ(rig.transport.counters().codecErrors, 1u);
    EXPECT_EQ(rig.transport.connectionCount(), 4u);

    // Drain still terminates with a wedged mid-frame peer attached.
    rig.transport.drain(rig.pool);
    EXPECT_EQ(rig.transport.connectionCount(), 0u);
}
