/**
 * @file
 * Tests for the model-building attacker (Fig 16) and the replay
 * attacker plumbing.
 */

#include <gtest/gtest.h>

#include "attack/model_attack.hpp"
#include "attack/replay.hpp"
#include "core/nearest.hpp"
#include "mc/mapgen.hpp"

namespace attack = authenticache::attack;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(64 * 1024); // 128 sets x 8 ways.

core::ChallengeBit
pair(std::uint32_t sa, std::uint32_t wa, std::uint32_t sb,
     std::uint32_t wb)
{
    core::ChallengeBit bit;
    bit.a = core::ChallengePoint{{sa, wa}, 0};
    bit.b = core::ChallengePoint{{sb, wb}, 0};
    return bit;
}

} // namespace

TEST(Model, StartsUninformed)
{
    attack::DistanceFieldModel model(kGeom);
    EXPECT_EQ(model.observed(), 0u);
    // Flat field: every prediction is "0" (no strict inequality).
    EXPECT_FALSE(model.predict(pair(0, 0, 100, 5)));
}

TEST(Model, LearnsASingleConstraint)
{
    attack::DistanceFieldModel model(kGeom);
    auto bit = pair(10, 2, 90, 5);
    // Observe response 1: d(A) > d(B).
    for (int i = 0; i < 5; ++i)
        model.train(bit, true);
    EXPECT_TRUE(model.predict(bit));
    EXPECT_GT(model.fieldAt({10, 2}), model.fieldAt({90, 5}));
    EXPECT_EQ(model.observed(), 5u);
}

TEST(Model, FieldStaysNonNegative)
{
    attack::DistanceFieldModel model(kGeom);
    auto bit = pair(10, 2, 90, 5);
    for (int i = 0; i < 100; ++i)
        model.train(bit, false); // Push d(A) down relentlessly.
    EXPECT_GE(model.fieldAt({10, 2}), 0.0);
}

TEST(Model, SmoothingInformsNeighbors)
{
    attack::DistanceFieldModel model(kGeom);
    auto bit = pair(50, 3, 120, 3);
    for (int i = 0; i < 10; ++i)
        model.train(bit, true);
    // A set-adjacent neighbor of A (same way) moved with it.
    EXPECT_GT(model.fieldAt({51, 3}), 0.0);
}

TEST(Model, ResetClearsState)
{
    attack::DistanceFieldModel model(kGeom);
    model.train(pair(1, 1, 2, 2), true);
    model.reset();
    EXPECT_EQ(model.observed(), 0u);
    EXPECT_EQ(model.fieldAt({1, 1}), 0.0);
}

TEST(Model, AccuracyHandlesDegenerateInput)
{
    attack::DistanceFieldModel model(kGeom);
    EXPECT_EQ(model.accuracy({}, {}), 0.0);
}

TEST(ModelAttack, LearningCurveRises)
{
    Rng rng(99);
    auto plane = authenticache::mc::randomPlane(kGeom, 20, rng);

    auto curve = attack::runModelAttack(plane, 30000, 6, 1500,
                                        attack::ModelParams{}, rng);
    ASSERT_EQ(curve.size(), 7u);
    EXPECT_EQ(curve.front().observedCrps, 0u);
    EXPECT_EQ(curve.back().observedCrps, 30000u);

    // Untrained: coin-flip accuracy (Authenticache's near-ideal
    // uniformity); trained: substantially better.
    EXPECT_NEAR(curve.front().predictionRate, 0.5, 0.1);
    EXPECT_GT(curve.back().predictionRate, 0.70);
    EXPECT_GT(curve.back().predictionRate,
              curve.front().predictionRate + 0.15);
}

TEST(ModelAttack, MoreTrainingHelps)
{
    Rng rng(7);
    auto plane = authenticache::mc::randomPlane(kGeom, 20, rng);
    Rng rng_a(1);
    Rng rng_b(1);
    auto short_run = attack::runModelAttack(
        plane, 2000, 1, 1500, attack::ModelParams{}, rng_a);
    auto long_run = attack::runModelAttack(
        plane, 40000, 1, 1500, attack::ModelParams{}, rng_b);
    EXPECT_GE(long_run.back().predictionRate,
              short_run.back().predictionRate);
}

TEST(ModelAttack, ResetAfterRemapDropsAccuracy)
{
    // The paper's countermeasure: rotating the logical map forces the
    // attacker to retrain. Model that as accuracy against a fresh
    // permutation of the same physical map.
    Rng rng(13);
    auto plane_before = authenticache::mc::randomPlane(kGeom, 20, rng);
    auto plane_after = authenticache::mc::randomPlane(kGeom, 20, rng);

    attack::DistanceFieldModel model(kGeom);
    attack::ModelParams params;

    // Train hard on the pre-remap map.
    std::vector<core::ChallengeBit> val_bits;
    std::vector<bool> truth_before;
    std::vector<bool> truth_after;
    Rng vrng(17);
    auto truth = [&](const core::ErrorPlane &plane,
                     const core::ChallengeBit &bit) {
        auto da = core::nearestErrorBrute(plane, bit.a.line);
        auto db = core::nearestErrorBrute(plane, bit.b.line);
        return core::responseBitFromDistances(
            da.found ? da.distance : core::kInfiniteDistance,
            db.found ? db.distance : core::kInfiniteDistance);
    };
    for (int i = 0; i < 1000; ++i) {
        auto bit = pair(
            static_cast<std::uint32_t>(vrng.nextBelow(kGeom.sets())),
            static_cast<std::uint32_t>(vrng.nextBelow(kGeom.ways())),
            static_cast<std::uint32_t>(vrng.nextBelow(kGeom.sets())),
            static_cast<std::uint32_t>(vrng.nextBelow(kGeom.ways())));
        val_bits.push_back(bit);
        truth_before.push_back(truth(plane_before, bit));
        truth_after.push_back(truth(plane_after, bit));
    }
    for (int i = 0; i < 30000; ++i) {
        auto bit = pair(
            static_cast<std::uint32_t>(vrng.nextBelow(kGeom.sets())),
            static_cast<std::uint32_t>(vrng.nextBelow(kGeom.ways())),
            static_cast<std::uint32_t>(vrng.nextBelow(kGeom.sets())),
            static_cast<std::uint32_t>(vrng.nextBelow(kGeom.ways())));
        model.train(bit, truth(plane_before, bit));
    }

    double acc_before = model.accuracy(val_bits, truth_before);
    double acc_after = model.accuracy(val_bits, truth_after);
    EXPECT_GT(acc_before, 0.70);
    EXPECT_LT(acc_after, 0.60); // Knowledge does not transfer.
}

TEST(ReplayAttacker, FindsLatestFramesByType)
{
    authenticache::protocol::InMemoryChannel channel;
    authenticache::protocol::Transcript transcript;
    channel.attachTranscript(&transcript);
    authenticache::protocol::ClientEndpoint client(channel);

    client.send(authenticache::protocol::AuthRequest{1});
    client.send(authenticache::protocol::AuthRequest{2});
    authenticache::protocol::ResponseMsg resp;
    resp.nonce = 7;
    resp.response = authenticache::util::BitVec(8);
    client.send(resp);

    authenticache::attack::ReplayAttacker attacker(transcript);
    auto req = attacker.lastRequestFrame();
    ASSERT_TRUE(req.has_value());
    auto decoded = authenticache::protocol::decodeMessage(*req);
    EXPECT_EQ(std::get<authenticache::protocol::AuthRequest>(decoded)
                  .deviceId,
              2u); // Latest request, not the first.

    ASSERT_TRUE(attacker.lastResponseFrame().has_value());

    // Replaying re-enqueues the captured frame verbatim (drain the
    // originals first: the queue is FIFO).
    while (channel.receiveAtServer()) {
    }
    attacker.replayToServer(channel, *req);
    auto arrived = channel.receiveAtServer();
    ASSERT_TRUE(arrived.has_value());
    EXPECT_EQ(*arrived, *req);
}

TEST(ReplayAttacker, EmptyTranscriptYieldsNothing)
{
    authenticache::protocol::Transcript transcript;
    authenticache::attack::ReplayAttacker attacker(transcript);
    EXPECT_FALSE(attacker.lastRequestFrame().has_value());
    EXPECT_FALSE(attacker.lastResponseFrame().has_value());
}
