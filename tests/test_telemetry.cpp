/**
 * @file
 * Tests for the stats registry and the chip/client/server collectors.
 */

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "server/server.hpp"
#include "sim/chip.hpp"
#include "util/stats_registry.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace core = authenticache::core;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
namespace u = authenticache::util;
using authenticache::util::Rng;

TEST(StatsRegistry, SetGetAndTypes)
{
    u::StatsRegistry reg;
    reg.set("chip", "reads", std::uint64_t(42));
    reg.set("chip", "vdd", 0.75);
    EXPECT_EQ(reg.getInt("chip", "reads"), 42u);
    EXPECT_DOUBLE_EQ(*reg.getFloat("chip", "vdd"), 0.75);
    EXPECT_FALSE(reg.getInt("chip", "nope").has_value());
    EXPECT_FALSE(reg.getFloat("chip", "reads").has_value());
    EXPECT_EQ(reg.size(), 2u);
}

TEST(StatsRegistry, AddAccumulates)
{
    u::StatsRegistry reg;
    reg.add("x", "count", 3);
    reg.add("x", "count", 4);
    EXPECT_EQ(reg.getInt("x", "count"), 7u);
}

TEST(StatsRegistry, ClearAndDump)
{
    u::StatsRegistry reg;
    reg.set("a", "one", std::uint64_t(1));
    reg.set("b", "two", 2.0);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.one"), std::string::npos);
    EXPECT_NE(os.str().find("b.two"), std::string::npos);
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
}

TEST(Telemetry, CollectorsCaptureSystemActivity)
{
    sim::ChipConfig cfg;
    cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip chip(cfg, 321);
    fw::SimulatedMachine machine(2);
    fw::ClientConfig ccfg;
    ccfg.selfTestAttempts = 8;
    fw::AuthenticacheClient client(chip, machine, ccfg);
    client.boot();

    srv::ServerConfig scfg;
    scfg.challengeBits = 64;
    srv::AuthenticationServer server(scfg, 1);
    auto levels = srv::defaultChallengeLevels(client, 1);
    server.enroll(3, client, levels,
                  {srv::defaultReservedLevel(client)});

    proto::InMemoryChannel channel;
    proto::ServerEndpoint server_end(channel);
    srv::DeviceAgent agent(3, client,
                           proto::ClientEndpoint(channel));
    agent.requestAuthentication();
    srv::runExchange(server, server_end, agent);
    ASSERT_TRUE(agent.lastDecision().has_value());

    u::StatsRegistry reg;
    sim::collectChipStats(chip, reg);
    fw::collectClientStats(client, reg);
    srv::collectServerStats(server, reg);

    // Chip: boot calibration + enrollment + one auth touched a lot.
    EXPECT_GT(*reg.getInt("chip", "word_reads"), 100000u);
    EXPECT_GT(*reg.getInt("chip", "word_writes"), 100000u);
    EXPECT_GT(*reg.getInt("chip", "ecc_corrected"), 0u);
    EXPECT_GT(*reg.getInt("chip", "vdd_transitions"), 2u);
    EXPECT_DOUBLE_EQ(*reg.getFloat("chip", "vdd_mv"),
                     chip.regulator().nominalMv());

    // Client: exactly one completed authentication.
    EXPECT_EQ(*reg.getInt("client", "authentications_completed"),
              1u);
    EXPECT_EQ(*reg.getInt("client", "authentications_aborted"), 0u);
    EXPECT_GT(*reg.getInt("client", "line_tests"), 0u);
    EXPECT_GT(*reg.getFloat("client", "busy_ms"), 0.0);

    // Server: one device, one accept.
    EXPECT_EQ(*reg.getInt("server", "devices"), 1u);
    EXPECT_EQ(*reg.getInt("server", "authentications_accepted"), 1u);
    EXPECT_EQ(*reg.getInt("server", "devices_locked"), 0u);

    // Custom component prefix.
    u::StatsRegistry named;
    sim::collectChipStats(chip, named, "device3.chip");
    EXPECT_TRUE(named.getInt("device3.chip", "word_reads")
                    .has_value());
}

TEST(Telemetry, AbortCountsSeparately)
{
    sim::ChipConfig cfg;
    cfg.cacheBytes = 256 * 1024;
    sim::SimulatedChip chip(cfg, 99);
    fw::SimulatedMachine machine(2);
    fw::AuthenticacheClient client(chip, machine);
    client.boot();

    core::Challenge bad;
    auto below =
        static_cast<core::VddMv>(client.floorMv() - 50.0);
    bad.bits.push_back({{{0, 0}, below}, {{1, 0}, below}});
    ASSERT_FALSE(client.authenticate(bad).ok());

    u::StatsRegistry reg;
    fw::collectClientStats(client, reg);
    EXPECT_EQ(*reg.getInt("client", "authentications_aborted"), 1u);
    EXPECT_EQ(*reg.getInt("client", "authentications_completed"),
              0u);
}
