// Fixture: journals and replies with no durability barrier between
// (invariant_lint rule "sync-before-reply").

namespace server {

void
onRequest(Shard &sh, Peer &peer, const Request &req)
{
    sh.wal.push_back(makeEvent(req));
    peer.send(makeReply(req));
}

} // namespace server
