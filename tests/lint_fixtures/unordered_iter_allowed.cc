#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> table;

std::uint64_t orderIndependentSum()
{
    std::uint64_t out = 0;
    // Commutative fold, reviewed. LINT:allow(unordered-iter)
    for (const auto &[k, v] : table)
        out += k + v;
    return out;
}
