#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> table;

std::uint64_t firstKeyWins()
{
    std::uint64_t out = 0;
    for (const auto &[k, v] : table)
        out = out * 31 + k + v; // Order-dependent fold: a real bug.
    return out;
}
