// A determinism-respecting file: no finding for any rule.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

std::uint64_t sumSorted(const std::unordered_map<std::uint64_t, std::uint64_t> &m)
{
    // Canonical idiom: copy the keys out, sort, then iterate the
    // vector -- the unordered order never reaches the result.
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < keys.size(); ++i)
        keys[i] += 1;
    std::uint64_t total = 0;
    std::vector<std::uint64_t> values{1, 2, 3};
    for (auto v : values)
        total += v;
    (void)m;
    return total;
}
