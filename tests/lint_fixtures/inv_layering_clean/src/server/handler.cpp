// Fixture: server code reaching the substrate through the published
// interface header only.

#include "substrate/substrate.hpp"

namespace server {

void
drive(Substrate &s)
{
    s.step();
}

} // namespace server
