// Fixture interface header: its concrete includes are the published
// surface, so the lint must not traverse through it.

#include "substrate/dram_timing.hpp"

namespace substrate {

struct Substrate
{
    void step();
};

} // namespace substrate
