// Fixture concrete substrate header (forbidden to server/).

namespace substrate {

struct DramTiming
{
    int rowCycleNs = 48;

    void step();
};

} // namespace substrate
