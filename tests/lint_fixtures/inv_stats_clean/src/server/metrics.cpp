// Fixture: every published stats key appears in the coverage corpus.

namespace server {

void
publish(Stats &stats, const Counters &c)
{
    stats.set("server", "remaps_committed", c.remaps);
}

} // namespace server
