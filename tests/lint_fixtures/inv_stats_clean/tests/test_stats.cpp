// Fixture coverage schema: the only registered key.

void
schemaCoversCommitted(Reg &reg)
{
    expectKey(reg, "remaps_committed");
}
