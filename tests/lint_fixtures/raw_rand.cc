#include <cstdlib>

int draw()
{
    std::srand(42);
    return std::rand();
}
