#include <random>

unsigned sample()
{
    std::mt19937 gen(7);
    return static_cast<unsigned>(gen());
}
