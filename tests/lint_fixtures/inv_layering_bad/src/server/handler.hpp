// Fixture: a server header leaking a concrete substrate type
// (invariant_lint rule "layering").

#include "substrate/dram_timing.hpp"

namespace server {

struct Handler
{
    substrate::DramTiming timing;
};

} // namespace server
