// Fixture: reaches the concrete substrate header transitively,
// through its own header.

#include "server/handler.hpp"

namespace server {

void
drive(Handler &h)
{
    h.timing.step();
}

} // namespace server
