// Words like rand( and mt19937 and steady_clock in comments or
// strings must never trip the scanner: it strips both first.
/* fwrite( fsync( std::random_device */
const char *kDoc = "call rand( and fwrite( at time( of day";
int unused() { return 0; }
