// Fixture crash-sweep workload: drives every alternative.

void
referenceWorkload(Harness &h)
{
    h.drive(Alpha{});
    h.drive(Beta{});
}
