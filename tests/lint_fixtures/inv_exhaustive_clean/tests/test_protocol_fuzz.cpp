// Fixture fuzzer: covers every wire id.

void
fuzzAllTypes(Fuzzer &f)
{
    f.type(MessageType::kHello);
    f.type(MessageType::kData);
    f.type(MessageType::kBye);
}
