// Fixture round-trip test: every alternative exercised.

void
roundTripCoversAll(Harness &h)
{
    h.roundTrip(Alpha{});
    h.roundTrip(Beta{});
}
