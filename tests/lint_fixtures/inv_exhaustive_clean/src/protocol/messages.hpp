// Fixture: wire message ids; the range guard lives in messages.cpp.

namespace protocol {

enum class MessageType { kHello = 1, kData = 2, kBye = 3 };

} // namespace protocol
