// Fixture: codec covers every id and the range guard references both
// bounds of the enum.

namespace protocol {

void
encodeMessage(Writer &w, MessageType t)
{
    w.tag(MessageType::kHello);
    w.tag(MessageType::kData);
    w.tag(MessageType::kBye);
}

MessageType
peekMessageType(const Frame &f)
{
    if (f.tag < static_cast<int>(MessageType::kHello) ||
        f.tag > static_cast<int>(MessageType::kBye))
        reject(f);
    return static_cast<MessageType>(f.tag);
}

} // namespace protocol
