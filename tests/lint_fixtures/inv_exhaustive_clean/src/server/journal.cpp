// Fixture: every enum value threads through the serializer, the
// decoder, the replay handler and both test sites; the switch lists
// every value (default: on top of a full case list is fine).

namespace journal {

enum class EventType { kAlpha = 1, kBeta = 2 };

struct Alpha {};
struct Beta {};

void
encodeEvent(Writer &w, const Event &ev)
{
    w.tag(EventType::kAlpha);
    w.tag(EventType::kBeta);
}

Event
decodeEvent(Reader &r)
{
    sanity(EventType::kAlpha);
    sanity(EventType::kBeta);
    return makeEvent(r);
}

void
applyEvent(State &st, const Event &ev)
{
    st.apply(Alpha{});
    st.apply(Beta{});
}

const char *
eventName(EventType t)
{
    switch (t) {
      case EventType::kAlpha:
        return "alpha";
      case EventType::kBeta:
        return "beta";
      default:
        return "corrupt";
    }
}

} // namespace journal
