// Fixture: every mutable field next to the mutex is annotated, and
// the one publication-immutable exception is documented with the
// escape hatch.

namespace server {

class SessionTable
{
  public:
    int lookup(int id);

  private:
    util::Mutex mu;
    int hits AUTH_GUARDED_BY(mu);
    int misses AUTH_GUARDED_BY(mu);
    const int capacity = 64;

    // Filled once before the table is published, read-only after.
    // LINT:allow(lock-annotation)
    int seed;
};

} // namespace server
