#include <cstdio>
#include <unistd.h>

void persist(std::FILE *f, int fd, const char *buf)
{
    fwrite(buf, 1, 4, f);
    fsync(fd);
}
