// Fixture: a mutex-holding class with one unannotated mutable field
// (invariant_lint rule "lock-annotation"). The guarded, const and
// atomic fields are all fine; only `misses` must fire.

namespace server {

class SessionTable
{
  public:
    int lookup(int id);

  private:
    util::Mutex mu;
    int hits AUTH_GUARDED_BY(mu);
    int misses;
    const int capacity = 64;
    std::atomic<int> generation;
};

} // namespace server
