// Fixture: barrier between journal mutation and reply, plus one
// documented escape-hatch use for a stateless probe reply.

namespace server {

void
onRequest(Shard &sh, Peer &peer, const Request &req)
{
    sh.wal.push_back(makeEvent(req));
    sh.dur.sync();
    peer.send(makeReply(req));
}

void
onProbe(Shard &sh, Peer &peer, const Request &req)
{
    sh.wal.push_back(traceEvent(req));
    // Probe replies disclose no journaled state; barrier elided.
    // LINT:allow(sync-before-reply)
    peer.send(makeProbeReply(req));
}

} // namespace server
