// Fixture: the codec mentions every id, but the range guard's upper
// bound no longer tracks the enum (highest value missing).

namespace protocol {

void
encodeMessage(Writer &w, MessageType t)
{
    w.tag(MessageType::kHello);
    w.tag(MessageType::kData);
    w.tag(MessageType::kBye);
}

MessageType
peekMessageType(const Frame &f)
{
    if (f.tag < static_cast<int>(MessageType::kHello))
        reject(f);
    return static_cast<MessageType>(f.tag);
}

} // namespace protocol
