// Fixture: journal enum whose decoder and round-trip test lag the
// serializer, plus a switch hiding a value behind default:
// (invariant_lint rule "exhaustiveness").

namespace journal {

enum class EventType { kAlpha = 1, kBeta = 2 };

struct Alpha {};
struct Beta {};

void
encodeEvent(Writer &w, const Event &ev)
{
    w.tag(EventType::kAlpha);
    w.tag(EventType::kBeta);
}

Event
decodeEvent(Reader &r)
{
    return makeEvent(EventType::kAlpha);
}

void
applyEvent(State &st, const Event &ev)
{
    st.apply(Alpha{});
    st.apply(Beta{});
}

const char *
eventName(EventType t)
{
    switch (t) {
      case EventType::kAlpha:
        return "alpha";
      default:
        return "other";
    }
}

} // namespace journal
