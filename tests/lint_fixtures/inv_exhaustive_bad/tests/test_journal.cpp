// Fixture round-trip test: the Beta alternative is never exercised.

void
roundTripCoversAlpha(Harness &h)
{
    h.roundTrip(Alpha{});
}
