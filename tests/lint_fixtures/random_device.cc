#include <random>

unsigned seedFromHardware()
{
    std::random_device rd;
    return rd();
}
