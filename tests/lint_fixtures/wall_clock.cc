#include <chrono>
#include <ctime>

long nowTwice()
{
    auto a = std::chrono::steady_clock::now().time_since_epoch().count();
    auto b = static_cast<long>(time(nullptr));
    return static_cast<long>(a) + b;
}
