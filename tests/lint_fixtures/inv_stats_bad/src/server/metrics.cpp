// Fixture: one typo'd stats key (near-miss of the covered key) and
// one key missing from the coverage corpus entirely
// (invariant_lint rule "stats-key").

namespace server {

void
publish(Stats &stats, const Counters &c)
{
    stats.set("server", "remaps_committed", c.remaps);
    stats.set("server", "remaps_comitted", c.remapsLegacy);
    stats.add("server", "weird_key", 1);
}

} // namespace server
