/**
 * @file
 * Golden-fixture tests for the invariant lint (tools/lint): each of
 * the five cross-file rules must fire on its violating fixture tree
 * (tests/lint_fixtures/inv_*_bad) and stay quiet on the clean one
 * (inv_*_clean), the `// LINT:allow(<rule>)` escape hatch and the
 * shrink-only baseline must both suppress without hiding, and a
 * stale baseline entry must be reported so the ratchet only ever
 * shrinks. The ctest entry InvariantLint.Tree separately gates the
 * real repository.
 */

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "invariant_lint.hpp"

namespace lint = authenticache::lint;

namespace {

std::filesystem::path
fixtureTree(const std::string &name)
{
    return std::filesystem::path(AUTH_LINT_FIXTURE_DIR) / name;
}

lint::InvariantReport
lintFixtureTree(const std::string &name,
                const std::vector<std::string> &baseline = {})
{
    return lint::lintInvariantTree(
        fixtureTree(name), lint::InvariantOptions::defaults(),
        baseline);
}

std::set<std::string>
rulesOf(const std::vector<lint::Finding> &findings)
{
    std::set<std::string> rules;
    for (const auto &f : findings)
        rules.insert(f.rule);
    return rules;
}

std::set<std::string>
keysOf(const std::vector<lint::Finding> &findings)
{
    std::set<std::string> keys;
    for (const auto &f : findings)
        keys.insert(f.key);
    return keys;
}

const lint::Finding *
findByKey(const std::vector<lint::Finding> &findings,
          const std::string &key)
{
    for (const auto &f : findings) {
        if (f.key == key)
            return &f;
    }
    return nullptr;
}

} // namespace

TEST(InvariantLintExhaustiveness, BadTreeFiresOnEveryGap)
{
    const auto report = lintFixtureTree("inv_exhaustive_bad");
    EXPECT_EQ(rulesOf(report.findings),
              std::set<std::string>{"exhaustiveness"});
    EXPECT_EQ(
        keysOf(report.findings),
        (std::set<std::string>{
            "exhaustiveness:EventType::kBeta@"
            "src/server/journal.cpp:decodeEvent",
            "exhaustiveness:EventType::kBeta@tests/test_journal.cpp",
            "exhaustiveness:switch:src/server/journal.cpp:EventType",
            "exhaustiveness:MessageType:range-guard:kBye"}));

    const lint::Finding *sw = findByKey(
        report.findings,
        "exhaustiveness:switch:src/server/journal.cpp:EventType");
    ASSERT_NE(sw, nullptr);
    EXPECT_NE(sw->message.find("hides values behind default:"),
              std::string::npos);

    const lint::Finding *guard = findByKey(
        report.findings,
        "exhaustiveness:MessageType:range-guard:kBye");
    ASSERT_NE(guard, nullptr);
    EXPECT_EQ(guard->file, "src/protocol/messages.cpp");
    EXPECT_NE(guard->message.find("peekMessageType"),
              std::string::npos);
}

TEST(InvariantLintExhaustiveness, CleanTreePasses)
{
    const auto report = lintFixtureTree("inv_exhaustive_clean");
    EXPECT_TRUE(report.findings.empty());
    EXPECT_TRUE(report.baselined.empty());
    EXPECT_TRUE(report.staleBaseline.empty());
}

TEST(InvariantLintExhaustiveness, MissingSiteFileIsItselfAFinding)
{
    auto options = lint::InvariantOptions::defaults();
    lint::InvariantOptions::EnumContract *journal = nullptr;
    for (auto &c : options.contracts) {
        if (c.enumName == "EventType")
            journal = &c;
    }
    ASSERT_NE(journal, nullptr);
    journal->sites.push_back(
        {"ghost site", "tests/test_ghost.cpp", true, ""});

    const auto report = lint::lintInvariantTree(
        fixtureTree("inv_exhaustive_clean"), options, {});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].key,
              "exhaustiveness:EventType:site:tests/test_ghost.cpp");
    EXPECT_NE(report.findings[0].message.find("does not exist"),
              std::string::npos);
}

TEST(InvariantLintSyncBeforeReply, UnsyncedReplyFires)
{
    const auto report = lintFixtureTree("inv_sync_bad");
    ASSERT_EQ(report.findings.size(), 1u);
    const lint::Finding &f = report.findings[0];
    EXPECT_EQ(f.rule, "sync-before-reply");
    EXPECT_EQ(f.file, "src/server/auth_flow.cpp");
    EXPECT_EQ(f.key,
              "sync-before-reply:src/server/auth_flow.cpp:onRequest");
    EXPECT_NE(f.message.find("sync()/flushJournal()"),
              std::string::npos);
}

TEST(InvariantLintSyncBeforeReply, BarrierAndEscapeHatchPass)
{
    // onRequest syncs before send; onProbe relies on the documented
    // LINT:allow escape on the line above its send.
    const auto report = lintFixtureTree("inv_sync_clean");
    EXPECT_TRUE(report.findings.empty());
}

TEST(InvariantLintLayering, TransitiveConcreteIncludeFires)
{
    const auto report = lintFixtureTree("inv_layering_bad");
    EXPECT_EQ(rulesOf(report.findings),
              std::set<std::string>{"layering"});
    EXPECT_EQ(keysOf(report.findings),
              (std::set<std::string>{
                  "layering:src/server/handler.cpp->"
                  "src/substrate/dram_timing.hpp",
                  "layering:src/server/handler.hpp->"
                  "src/substrate/dram_timing.hpp"}));

    // The transitive finding spells out the include chain.
    const lint::Finding *via = findByKey(
        report.findings, "layering:src/server/handler.cpp->"
                         "src/substrate/dram_timing.hpp");
    ASSERT_NE(via, nullptr);
    EXPECT_NE(via->message.find("src/server/handler.cpp -> "
                                "src/server/handler.hpp -> "
                                "src/substrate/dram_timing.hpp"),
              std::string::npos);
}

TEST(InvariantLintLayering, InterfaceHeaderIsOpaque)
{
    // The interface header itself includes the concrete header; the
    // lint must not traverse through the published surface.
    const auto report = lintFixtureTree("inv_layering_clean");
    EXPECT_TRUE(report.findings.empty());
}

TEST(InvariantLintLockAnnotation, UnannotatedMutableFieldFires)
{
    const auto report = lintFixtureTree("inv_lock_bad");
    ASSERT_EQ(report.findings.size(), 1u);
    const lint::Finding &f = report.findings[0];
    EXPECT_EQ(f.rule, "lock-annotation");
    EXPECT_EQ(f.key, "lock-annotation:src/server/session_table.hpp:"
                     "SessionTable::misses");
    EXPECT_NE(f.message.find("AUTH_GUARDED_BY"), std::string::npos);
}

TEST(InvariantLintLockAnnotation, AnnotatedConstAtomicAndAllowPass)
{
    const auto report = lintFixtureTree("inv_lock_clean");
    EXPECT_TRUE(report.findings.empty());
}

TEST(InvariantLintStatsKey, TypoGetsDidYouMean)
{
    const auto report = lintFixtureTree("inv_stats_bad");
    EXPECT_EQ(keysOf(report.findings),
              (std::set<std::string>{
                  "stats-key:src/server/metrics.cpp:remaps_comitted",
                  "stats-key:src/server/metrics.cpp:weird_key"}));

    const lint::Finding *typo = findByKey(
        report.findings,
        "stats-key:src/server/metrics.cpp:remaps_comitted");
    ASSERT_NE(typo, nullptr);
    EXPECT_NE(
        typo->message.find("did you mean \"remaps_committed\"?"),
        std::string::npos);

    // No covered key within edit distance 2 of weird_key: the
    // finding asks for schema/catalog coverage instead.
    const lint::Finding *missing = findByKey(
        report.findings, "stats-key:src/server/metrics.cpp:weird_key");
    ASSERT_NE(missing, nullptr);
    EXPECT_NE(missing->message.find("add it to the test schema"),
              std::string::npos);
}

TEST(InvariantLintStatsKey, CoveredKeyPasses)
{
    const auto report = lintFixtureTree("inv_stats_clean");
    EXPECT_TRUE(report.findings.empty());
}

TEST(InvariantLintBaseline, EntrySuppressesButStaysVisible)
{
    const std::string key =
        "sync-before-reply:src/server/auth_flow.cpp:onRequest";
    const auto report = lintFixtureTree("inv_sync_bad", {key});
    EXPECT_TRUE(report.findings.empty());
    ASSERT_EQ(report.baselined.size(), 1u);
    EXPECT_EQ(report.baselined[0].key, key);
    EXPECT_TRUE(report.staleBaseline.empty());
}

TEST(InvariantLintBaseline, StaleEntryFailsTheRatchet)
{
    const std::string key =
        "sync-before-reply:src/server/auth_flow.cpp:onRequest";
    const auto report = lintFixtureTree("inv_sync_clean", {key});
    EXPECT_TRUE(report.findings.empty());
    EXPECT_EQ(report.staleBaseline,
              std::vector<std::string>{key});
}

TEST(InvariantLintBaseline, FileParserSkipsCommentsAndTrims)
{
    const auto entries = lint::loadBaselineFile(
        std::filesystem::path(AUTH_LINT_FIXTURE_DIR) /
        "inv_baseline_example.txt");
    EXPECT_EQ(entries,
              std::vector<std::string>{
                  "sync-before-reply:src/server/auth_flow.cpp:"
                  "onRequest"});
}

TEST(InvariantLintReport, JsonCarriesFindingsAndCounts)
{
    const auto report = lintFixtureTree("inv_sync_bad");
    const std::string json = lint::reportToJson(report);
    EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
    EXPECT_NE(json.find("\"sync-before-reply:src/server/"
                        "auth_flow.cpp:onRequest\""),
              std::string::npos);
    EXPECT_NE(json.find("\"counts\": {\"findings\": 1, "
                        "\"baselined\": 0, \"stale_baseline\": 0}"),
              std::string::npos);
    // Messages quote tokens; the escape must be JSON-clean.
    EXPECT_EQ(json.find("\n\""), json.rfind("\n\""));
}

TEST(InvariantLintInventory, AllFiveRulesListed)
{
    std::set<std::string> names;
    for (const auto &[rule, summary] : lint::invariantRuleInventory()) {
        names.insert(rule);
        EXPECT_FALSE(summary.empty());
    }
    EXPECT_EQ(names, (std::set<std::string>{
                         "exhaustiveness", "sync-before-reply",
                         "layering", "lock-annotation", "stats-key"}));
}
