/**
 * @file
 * Tests for the pending-session cap: a flood of unanswered
 * authentication requests must not grow server state without bound,
 * evicted sessions must reject late responses, and live sessions
 * within the cap must be unaffected.
 */

#include <memory>

#include <gtest/gtest.h>

#include "server/server.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;

class SessionCap : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::ChipConfig cfg;
        cfg.cacheBytes = 1024 * 1024;
        chip = std::make_unique<sim::SimulatedChip>(cfg, 0xCAB);
        machine = std::make_unique<fw::SimulatedMachine>(2);
        fw::ClientConfig ccfg;
        ccfg.selfTestAttempts = 8;
        client = std::make_unique<fw::AuthenticacheClient>(
            *chip, *machine, ccfg);
        client->boot();

        srv::ServerConfig scfg;
        scfg.challengeBits = 32;
        scfg.maxPendingSessions = 8;
        scfg.verifier.pIntra = 0.08;
        server =
            std::make_unique<srv::AuthenticationServer>(scfg, 7);
        auto levels = srv::defaultChallengeLevels(*client, 1);
        server->enroll(2, *client, levels,
                       {srv::defaultReservedLevel(*client)});

        server_end = std::make_unique<proto::ServerEndpoint>(channel);
    }

    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
    std::unique_ptr<srv::AuthenticationServer> server;
    proto::InMemoryChannel channel;
    std::unique_ptr<proto::ServerEndpoint> server_end;
};

TEST_F(SessionCap, FloodIsBounded)
{
    // 50 requests, none answered: pending state stays at the cap.
    for (int i = 0; i < 50; ++i) {
        channel.sendToServer(
            proto::encodeMessage(proto::AuthRequest{2}));
        server->pumpOnce(*server_end);
    }
    EXPECT_LE(server->pendingSessions(), 8u);
    EXPECT_EQ(server->sessionsEvicted(), 42u);
}

TEST_F(SessionCap, EvictedChallengeRejectsLateResponse)
{
    // First challenge gets evicted by the flood; answering it later
    // must fail with "unknown nonce".
    channel.sendToServer(proto::encodeMessage(proto::AuthRequest{2}));
    server->pumpOnce(*server_end);
    auto first = channel.receiveAtClient();
    ASSERT_TRUE(first.has_value());
    auto first_msg = proto::decodeMessage(*first);
    auto *first_ch = std::get_if<proto::ChallengeMsg>(&first_msg);
    ASSERT_NE(first_ch, nullptr);

    for (int i = 0; i < 20; ++i) {
        channel.sendToServer(
            proto::encodeMessage(proto::AuthRequest{2}));
        server->pumpOnce(*server_end);
    }

    // Answer the evicted challenge honestly.
    auto outcome = client->authenticate(first_ch->challenge);
    ASSERT_TRUE(outcome.ok());
    proto::ResponseMsg resp;
    resp.nonce = first_ch->nonce;
    resp.response = std::move(outcome.response);
    channel.sendToServer(proto::encodeMessage(resp));
    server->pumpOnce(*server_end);

    // No decision was recorded for it.
    for (const auto &report : server->reports())
        EXPECT_NE(report.nonce, first_ch->nonce);
}

TEST_F(SessionCap, PromptSessionsUnaffected)
{
    // A device that answers promptly completes normally even while
    // the cap churns.
    srv::DeviceAgent agent(2, *client,
                           proto::ClientEndpoint(channel));
    for (int round = 0; round < 12; ++round) {
        agent.requestAuthentication();
        srv::runExchange(*server, *server_end, agent);
        ASSERT_TRUE(agent.lastDecision().has_value());
        EXPECT_TRUE(agent.lastDecision()->accepted);
    }
    EXPECT_EQ(server->sessionsEvicted(), 0u);
}
