/**
 * @file
 * Tests for the pending-session cap under churn: a flood of unanswered
 * authentication requests must not grow server state without bound,
 * evicted sessions must reject late responses and retire their
 * consumed challenge pairs exactly once, and live sessions within the
 * cap must be unaffected. Duplicate requests from one device are
 * idempotent and never inflate the pending set.
 */

#include <memory>

#include <gtest/gtest.h>

#include "mc/mapgen.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace core = authenticache::core;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
using authenticache::util::Rng;

class SessionCap : public ::testing::Test
{
  protected:
    static constexpr std::size_t kCap = 8;
    static constexpr std::size_t kBits = 32;

    void
    SetUp() override
    {
        sim::ChipConfig cfg;
        cfg.cacheBytes = 1024 * 1024;
        chip = std::make_unique<sim::SimulatedChip>(cfg, 0xCAB);
        machine = std::make_unique<fw::SimulatedMachine>(2);
        fw::ClientConfig ccfg;
        ccfg.selfTestAttempts = 8;
        client = std::make_unique<fw::AuthenticacheClient>(
            *chip, *machine, ccfg);
        client->boot();

        srv::ServerConfig scfg;
        scfg.challengeBits = kBits;
        scfg.maxPendingSessions = kCap;
        scfg.verifier.pIntra = 0.08;
        server =
            std::make_unique<srv::AuthenticationServer>(scfg, 7);
        levels = srv::defaultChallengeLevels(*client, 1);
        server->enroll(2, *client, levels,
                       {srv::defaultReservedLevel(*client)});

        server_end = std::make_unique<proto::ServerEndpoint>(channel);
    }

    /**
     * Enroll @p count extra devices with synthetic error maps (they
     * never answer; only their AuthRequests matter). Ids from 100.
     */
    void
    enrollFlooders(std::size_t count)
    {
        Rng rng(0xF100D);
        for (std::size_t i = 0; i < count; ++i) {
            auto map = authenticache::mc::randomErrorMap(
                chip->geometry(), levels[0], 40, rng);
            server->database().enroll(srv::DeviceRecord(
                100 + i, std::move(map), levels, {}));
        }
    }

    void
    requestFrom(std::uint64_t device_id)
    {
        channel.sendToServer(
            proto::encodeMessage(proto::AuthRequest{device_id}));
        server->pumpOnce(*server_end);
    }

    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
    std::unique_ptr<srv::AuthenticationServer> server;
    std::vector<core::VddMv> levels;
    proto::InMemoryChannel channel;
    std::unique_ptr<proto::ServerEndpoint> server_end;
};

TEST_F(SessionCap, FloodIsBounded)
{
    // 50 distinct devices, none answering: pending state stays at the
    // cap and the overflow is evicted oldest-first.
    enrollFlooders(49);
    requestFrom(2);
    for (std::size_t i = 0; i < 49; ++i) {
        requestFrom(100 + i);
        EXPECT_LE(server->pendingSessions(), kCap);
    }
    EXPECT_LE(server->pendingSessions(), kCap);
    EXPECT_EQ(server->sessionsEvicted(), 42u);
}

TEST_F(SessionCap, DuplicateRequestsDoNotInflatePendingState)
{
    // One device hammering AuthRequest gets the same outstanding
    // challenge re-issued every time: one session, zero evictions,
    // and exactly one challenge's worth of consumed pairs.
    for (int i = 0; i < 50; ++i)
        requestFrom(2);
    EXPECT_EQ(server->pendingSessions(), 1u);
    EXPECT_EQ(server->sessionsEvicted(), 0u);
    EXPECT_EQ(server->duplicateRequests(), 49u);
    EXPECT_EQ(server->database().at(2).consumedCount(levels[0]),
              kBits);

    // All 50 replies carry the identical challenge and nonce.
    std::optional<std::uint64_t> nonce;
    std::size_t replies = 0;
    while (auto frame = channel.receiveAtClient()) {
        auto msg = proto::decodeMessage(*frame);
        auto *ch = std::get_if<proto::ChallengeMsg>(&msg);
        ASSERT_NE(ch, nullptr);
        if (!nonce)
            nonce = ch->nonce;
        EXPECT_EQ(ch->nonce, *nonce);
        ++replies;
    }
    EXPECT_EQ(replies, 50u);
}

TEST_F(SessionCap, EvictedChallengeRejectsLateResponse)
{
    // Device 2's challenge gets evicted by a flood of other devices;
    // answering it later must fail with "unknown nonce".
    enrollFlooders(20);
    requestFrom(2);
    auto first = channel.receiveAtClient();
    ASSERT_TRUE(first.has_value());
    auto first_msg = proto::decodeMessage(*first);
    auto *first_ch = std::get_if<proto::ChallengeMsg>(&first_msg);
    ASSERT_NE(first_ch, nullptr);

    for (std::size_t i = 0; i < 20; ++i)
        requestFrom(100 + i);
    EXPECT_GE(server->sessionsEvicted(), 1u);

    // Answer the evicted challenge honestly.
    auto outcome = client->authenticate(first_ch->challenge);
    ASSERT_TRUE(outcome.ok());
    proto::ResponseMsg resp;
    resp.nonce = first_ch->nonce;
    resp.response = std::move(outcome.response);
    channel.sendToServer(proto::encodeMessage(resp));
    server->pumpOnce(*server_end);

    // No decision was recorded for it.
    for (const auto &report : server->reports())
        EXPECT_NE(report.nonce, first_ch->nonce);
}

TEST_F(SessionCap, EvictionRetiresConsumedPairsExactlyOnce)
{
    // Churn: every generated challenge consumes its pairs exactly
    // once at issue time; eviction neither un-retires nor re-retires
    // them, and a post-eviction request from the same device draws
    // entirely fresh pairs.
    enrollFlooders(30);
    requestFrom(2);
    ASSERT_EQ(server->database().at(2).consumedCount(levels[0]),
              kBits);

    for (std::size_t i = 0; i < 30; ++i)
        requestFrom(100 + i);
    EXPECT_LE(server->pendingSessions(), kCap);
    EXPECT_GE(server->sessionsEvicted(), 1u);

    // Eviction left the consumed ledger untouched.
    std::uint64_t total = 0;
    total += server->database().at(2).consumedCount(levels[0]);
    for (std::size_t i = 0; i < 30; ++i)
        total += server->database()
                     .at(100 + i)
                     .consumedCount(levels[0]);
    EXPECT_EQ(total, 31u * kBits);

    // Device 2's session was evicted, so a new request opens a fresh
    // session with fresh pairs (the old ones stay retired).
    requestFrom(2);
    EXPECT_EQ(server->database().at(2).consumedCount(levels[0]),
              2 * kBits);
}

TEST_F(SessionCap, PromptSessionsUnaffected)
{
    // A device that answers promptly completes normally even while
    // the cap churns.
    srv::DeviceAgent agent(2, *client,
                           proto::ClientEndpoint(channel));
    for (int round = 0; round < 12; ++round) {
        agent.requestAuthentication();
        srv::runExchange(*server, *server_end, agent);
        ASSERT_TRUE(agent.lastDecision().has_value());
        EXPECT_TRUE(agent.lastDecision()->accepted);
    }
    EXPECT_EQ(server->sessionsEvicted(), 0u);
}
