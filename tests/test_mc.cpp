/**
 * @file
 * Tests for the Monte Carlo harness: map generation, noise profiles,
 * flip-probability estimation, noise-tolerance search, and the
 * distance / quality experiment kernels.
 */

#include <set>

#include <gtest/gtest.h>

#include "mc/experiments.hpp"
#include "mc/mapgen.hpp"
#include "mc/noise.hpp"

namespace mc = authenticache::mc;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(256 * 1024); // 512 sets x 8 ways.

mc::ExperimentConfig
quickConfig(std::uint64_t seed = 42)
{
    mc::ExperimentConfig cfg;
    cfg.maps = 12;
    cfg.samplesPerMap = 400;
    cfg.seed = seed;
    return cfg;
}

} // namespace

TEST(MapGen, ExactErrorCount)
{
    Rng rng(1);
    auto plane = mc::randomPlane(kGeom, 50, rng);
    EXPECT_EQ(plane.errorCount(), 50u);
    std::set<std::pair<std::uint32_t, std::uint32_t>> unique;
    for (const auto &e : plane.errors())
        unique.insert({e.set, e.way});
    EXPECT_EQ(unique.size(), 50u);
}

TEST(MapGen, SpreadAcrossWays)
{
    // Errors must land in all ways (uniformity, paper Fig 2).
    Rng rng(2);
    auto plane = mc::randomPlane(kGeom, 200, rng);
    std::set<std::uint32_t> ways;
    for (const auto &e : plane.errors())
        ways.insert(e.way);
    EXPECT_EQ(ways.size(), kGeom.ways());
}

TEST(MapGen, MapWrapperMatchesPlane)
{
    Rng rng(3);
    auto map = mc::randomErrorMap(kGeom, 700, 25, rng);
    EXPECT_TRUE(map.hasPlane(700));
    EXPECT_EQ(map.plane(700).errorCount(), 25u);
}

TEST(Noise, ZeroProfileIsIdentity)
{
    Rng rng(4);
    auto plane = mc::randomPlane(kGeom, 40, rng);
    auto noisy = mc::applyNoise(plane, mc::NoiseProfile{}, rng);
    EXPECT_EQ(noisy.errors(), plane.errors());
}

TEST(Noise, InjectionAddsExactCount)
{
    Rng rng(5);
    auto plane = mc::randomPlane(kGeom, 40, rng);
    mc::NoiseProfile profile;
    profile.injectFraction = 1.5; // 150% -> 60 new errors.
    auto noisy = mc::applyNoise(plane, profile, rng);
    EXPECT_EQ(noisy.errorCount(), 100u);
    // All original errors survive.
    for (const auto &e : plane.errors())
        EXPECT_TRUE(noisy.contains(e));
}

TEST(Noise, RemovalMasksExactCount)
{
    Rng rng(6);
    auto plane = mc::randomPlane(kGeom, 40, rng);
    mc::NoiseProfile profile;
    profile.removeFraction = 0.25; // 10 masked.
    auto noisy = mc::applyNoise(plane, profile, rng);
    EXPECT_EQ(noisy.errorCount(), 30u);
    for (const auto &e : noisy.errors())
        EXPECT_TRUE(plane.contains(e));
}

TEST(Noise, RemovalCappedAtAllErrors)
{
    Rng rng(7);
    auto plane = mc::randomPlane(kGeom, 10, rng);
    mc::NoiseProfile profile;
    profile.removeFraction = 5.0;
    auto noisy = mc::applyNoise(plane, profile, rng);
    EXPECT_EQ(noisy.errorCount(), 0u);
}

TEST(Noise, CombinedProfile)
{
    Rng rng(8);
    auto plane = mc::randomPlane(kGeom, 40, rng);
    mc::NoiseProfile profile;
    profile.injectFraction = 0.5;
    profile.removeFraction = 0.5;
    auto noisy = mc::applyNoise(plane, profile, rng);
    EXPECT_EQ(noisy.errorCount(), 40u); // -20 +20.
}

TEST(Experiments, InterFlipNearHalf)
{
    double p = mc::estimateInterFlipProbability(kGeom, 50,
                                                quickConfig());
    EXPECT_NEAR(p, 0.5, 0.05);
}

TEST(Experiments, IntraFlipZeroWithoutNoise)
{
    double p = mc::estimateIntraFlipProbability(
        kGeom, 50, mc::NoiseProfile{}, quickConfig());
    EXPECT_EQ(p, 0.0);
}

TEST(Experiments, IntraFlipGrowsWithNoise)
{
    mc::NoiseProfile low;
    low.injectFraction = 0.1;
    mc::NoiseProfile high;
    high.injectFraction = 1.5;
    double p_low = mc::estimateIntraFlipProbability(kGeom, 50, low,
                                                    quickConfig());
    double p_high = mc::estimateIntraFlipProbability(kGeom, 50, high,
                                                     quickConfig());
    EXPECT_GT(p_low, 0.0);
    EXPECT_GT(p_high, p_low);
    EXPECT_LT(p_high, 0.5);
}

TEST(Experiments, HammingDistributionsSeparate)
{
    mc::NoiseProfile noise;
    noise.injectFraction = 0.10;
    auto cfg = quickConfig();
    cfg.maps = 6;
    cfg.samplesPerMap = 20;
    auto samples = mc::hammingDistributions(kGeom, 50, 128, noise, cfg);

    ASSERT_FALSE(samples.intra.empty());
    ASSERT_EQ(samples.intra.size(), samples.inter.size());

    double intra_mean = 0.0;
    double inter_mean = 0.0;
    std::uint32_t intra_max = 0;
    std::uint32_t inter_min = 128;
    for (std::size_t i = 0; i < samples.intra.size(); ++i) {
        intra_mean += samples.intra[i];
        inter_mean += samples.inter[i];
        intra_max = std::max(intra_max, samples.intra[i]);
        inter_min = std::min(inter_min, samples.inter[i]);
    }
    intra_mean /= static_cast<double>(samples.intra.size());
    inter_mean /= static_cast<double>(samples.inter.size());

    // Fig 9 structure: intra near zero, inter near bits/2, and at 10%
    // noise the distributions must not overlap.
    EXPECT_LT(intra_mean, 15.0);
    EXPECT_NEAR(inter_mean, 64.0, 10.0);
    EXPECT_LT(intra_max, inter_min);
}

TEST(Experiments, NoiseToleranceOrderedByCrpSize)
{
    auto cfg = quickConfig();
    cfg.maps = 8;
    cfg.samplesPerMap = 1500;
    auto t128 = mc::maxTolerableNoise(kGeom, 50, 128, true, 1e-6, cfg);
    auto t512 = mc::maxTolerableNoise(kGeom, 50, 512, true, 1e-6, cfg);
    // Larger CRPs tolerate more noise (Fig 10).
    EXPECT_GT(t512.maxNoisePercent, t128.maxNoisePercent);
    EXPECT_GT(t128.maxNoisePercent, 0.0);
    EXPECT_LE(t512.rateAtMax, 1e-6);
}

TEST(Experiments, RemovalTougherThanInjection)
{
    // The paper finds Authenticache more sensitive to removed errors
    // than injected ones.
    auto cfg = quickConfig();
    cfg.maps = 8;
    cfg.samplesPerMap = 1500;
    auto inj = mc::maxTolerableNoise(kGeom, 50, 256, true, 1e-6, cfg);
    auto rem = mc::maxTolerableNoise(kGeom, 50, 256, false, 1e-6, cfg);
    EXPECT_GT(inj.maxNoisePercent, rem.maxNoisePercent);
}

TEST(Experiments, AvgDistanceDecreasesWithErrors)
{
    auto cfg = quickConfig();
    double d20 = mc::averageNearestErrorDistance(kGeom, 20, cfg);
    double d100 = mc::averageNearestErrorDistance(kGeom, 100, cfg);
    EXPECT_GT(d20, d100);
    EXPECT_GT(d100, 0.0);
}

TEST(Experiments, AvgDistanceGrowsWithCacheSize)
{
    auto cfg = quickConfig();
    sim::CacheGeometry small(64 * 1024);
    sim::CacheGeometry large(1024 * 1024);
    double d_small = mc::averageNearestErrorDistance(small, 40, cfg);
    double d_large = mc::averageNearestErrorDistance(large, 40, cfg);
    EXPECT_GT(d_large, d_small);
}

TEST(Experiments, AliasingAndUniformityNearIdeal)
{
    auto cfg = quickConfig();
    cfg.maps = 30;
    cfg.samplesPerMap = 2000;
    // 10 errors in a 256KB plane matches the paper's sparse-density
    // regime; denser maps bias further toward 0 (tie rule, Sec 6.4).
    auto cell = mc::aliasingUniformity(kGeom, 10, 64, cfg);
    EXPECT_NEAR(cell.bitAliasingPercent, 50.0, 2.5);
    EXPECT_NEAR(cell.uniformityPercent, 50.0, 2.5);
    EXPECT_LE(cell.bitAliasingPercent, 51.0);
}

TEST(Experiments, TieBiasGrowsWithErrorDensity)
{
    // More errors -> shorter distances -> more ties -> stronger bias
    // toward "0" (Sec 6.4). Use a small plane to amplify the effect.
    sim::CacheGeometry tiny(64 * 1024);
    auto cfg = quickConfig();
    cfg.maps = 40;
    cfg.samplesPerMap = 4000;
    auto sparse = mc::aliasingUniformity(tiny, 10, 64, cfg);
    auto dense = mc::aliasingUniformity(tiny, 120, 64, cfg);
    EXPECT_LT(dense.uniformityPercent, sparse.uniformityPercent);
}

TEST(Noise, MapOverloadPerturbsEveryPlane)
{
    Rng rng(9);
    core::ErrorMap map(kGeom);
    for (auto idx : rng.sampleDistinct(kGeom.lines(), 20))
        map.plane(700).add(kGeom.pointOf(idx));
    for (auto idx : rng.sampleDistinct(kGeom.lines(), 10))
        map.plane(690).add(kGeom.pointOf(idx));

    mc::NoiseProfile profile;
    profile.injectFraction = 0.5;
    auto noisy = mc::applyNoise(map, profile, rng);

    EXPECT_EQ(noisy.plane(700).errorCount(), 30u); // +10.
    EXPECT_EQ(noisy.plane(690).errorCount(), 15u); // +5.
    // Geometry and level set preserved.
    EXPECT_EQ(noisy.levels(), map.levels());
}

TEST(Experiments, ResultsInvariantUnderThreadCount)
{
    // The engine's core contract: the pool only changes wall-clock,
    // never results. Same seed, widths 1 / 2 / 8 -> bit-identical
    // samples and exactly equal floating-point estimates.
    mc::NoiseProfile noise;
    noise.injectFraction = 0.25;
    auto cfg = quickConfig(0xDE7);
    cfg.maps = 7; // Not a multiple of any width: uneven shards.
    cfg.samplesPerMap = 30;

    cfg.threads = 1;
    auto ref = mc::hammingDistributions(kGeom, 40, 64, noise, cfg);
    double ref_intra =
        mc::estimateIntraFlipProbability(kGeom, 40, noise, cfg);
    double ref_inter = mc::estimateInterFlipProbability(kGeom, 40, cfg);
    double ref_dist = mc::averageNearestErrorDistance(kGeom, 40, cfg);
    auto ref_cell = mc::aliasingUniformity(kGeom, 10, 32, cfg);

    for (unsigned threads : {2u, 8u}) {
        cfg.threads = threads;
        auto got = mc::hammingDistributions(kGeom, 40, 64, noise, cfg);
        EXPECT_EQ(got.intra, ref.intra) << threads << " threads";
        EXPECT_EQ(got.inter, ref.inter) << threads << " threads";
        EXPECT_EQ(mc::estimateIntraFlipProbability(kGeom, 40, noise,
                                                   cfg),
                  ref_intra);
        EXPECT_EQ(mc::estimateInterFlipProbability(kGeom, 40, cfg),
                  ref_inter);
        EXPECT_EQ(mc::averageNearestErrorDistance(kGeom, 40, cfg),
                  ref_dist);
        auto cell = mc::aliasingUniformity(kGeom, 10, 32, cfg);
        EXPECT_EQ(cell.bitAliasingPercent, ref_cell.bitAliasingPercent);
        EXPECT_EQ(cell.uniformityPercent, ref_cell.uniformityPercent);
    }
}

TEST(Experiments, SampleLayoutIsMapMajor)
{
    // Samples land at [map * samplesPerMap + sample] regardless of
    // completion order, so downstream histograms see a stable layout.
    mc::NoiseProfile noise;
    noise.injectFraction = 0.1;
    auto cfg = quickConfig(7);
    cfg.maps = 5;
    cfg.samplesPerMap = 11;
    auto s = mc::hammingDistributions(kGeom, 30, 32, noise, cfg);
    EXPECT_EQ(s.intra.size(), cfg.maps * cfg.samplesPerMap);
    EXPECT_EQ(s.inter.size(), cfg.maps * cfg.samplesPerMap);
}

TEST(Noise, MapOverloadKeepsEmptiedPlanes)
{
    Rng rng(10);
    core::ErrorMap map(kGeom);
    map.plane(700).add({1, 1});
    mc::NoiseProfile profile;
    profile.removeFraction = 1.0;
    auto noisy = mc::applyNoise(map, profile, rng);
    ASSERT_TRUE(noisy.hasPlane(700));
    EXPECT_EQ(noisy.plane(700).errorCount(), 0u);
}
