/**
 * @file
 * Golden-vector tests pinning the ECC codecs' exact wire behavior.
 *
 * The check bits and codewords below were produced by the codecs
 * themselves and frozen: any future change to the Hsiao column
 * assignment, the BCH generator polynomial, or the systematic bit
 * layout will break these tests loudly instead of silently changing
 * every stored fingerprint and helper-data blob.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ecc/bch.hpp"
#include "ecc/secded.hpp"
#include "util/bitvec.hpp"
#include "util/simd.hpp"

namespace ecc = authenticache::ecc;
namespace util = authenticache::util;
using authenticache::util::BitVec;

namespace {

BitVec
fromWords(std::vector<std::uint64_t> words, std::size_t bits)
{
    return BitVec::fromWords(std::move(words), bits);
}

} // namespace

TEST(GoldenSecded, Hsiao72_64CheckBits)
{
    ecc::SecdedCodec codec(64);
    ASSERT_EQ(codec.dataBits(), 64u);
    ASSERT_EQ(codec.checkBits(), 8u);

    const struct
    {
        std::uint64_t data;
        std::uint32_t check;
    } vectors[] = {
        {0x0000000000000000ULL, 0x00},
        {0x0000000000000001ULL, 0x07},
        {0xFFFFFFFFFFFFFFFFULL, 0xD8},
        {0xDEADBEEFCAFEBABEULL, 0xD2},
        {0x0123456789ABCDEFULL, 0x42},
        {0x5555555555555555ULL, 0x0F},
        {0x8000000000000000ULL, 0x57},
    };
    for (const auto &v : vectors) {
        EXPECT_EQ(codec.encode(v.data), v.check)
            << "data word 0x" << std::hex << v.data;
        auto clean = codec.decode(v.data, v.check);
        EXPECT_EQ(clean.status, ecc::DecodeStatus::Ok);
        EXPECT_EQ(clean.data, v.data);
    }
}

TEST(GoldenSecded, Hsiao39_32CheckBits)
{
    ecc::SecdedCodec codec(32);
    ASSERT_EQ(codec.dataBits(), 32u);
    ASSERT_EQ(codec.checkBits(), 7u);

    const struct
    {
        std::uint64_t data;
        std::uint32_t check;
    } vectors[] = {
        {0x00000000ULL, 0x00}, {0x00000001ULL, 0x07},
        {0xFFFFFFFFULL, 0x03}, {0xDEADBEEFULL, 0x05},
        {0x89ABCDEFULL, 0x42}, {0x55555555ULL, 0x14},
    };
    for (const auto &v : vectors) {
        EXPECT_EQ(codec.encode(v.data), v.check)
            << "data word 0x" << std::hex << v.data;
    }
}

TEST(GoldenSecded, BatchKernelsMatchGoldenVectorsAtEveryWidth)
{
    // Every batch implementation (scalar mask-parity, SSE2, AVX2)
    // must reproduce the frozen byte-table check bits exactly; the
    // odd batch length forces each kernel's tail path too.
    const std::uint64_t data[] = {
        0x0000000000000000ULL, 0x0000000000000001ULL,
        0xFFFFFFFFFFFFFFFFULL, 0xDEADBEEFCAFEBABEULL,
        0x0123456789ABCDEFULL, 0x5555555555555555ULL,
        0x8000000000000000ULL,
    };
    const std::uint32_t golden[] = {0x00, 0x07, 0xD8, 0xD2,
                                    0x42, 0x0F, 0x57};
    const std::size_t n = std::size(data);

    ecc::SecdedCodec codec(64);
    for (util::SimdLevel level : util::supportedSimdLevels()) {
        std::uint32_t check[std::size(data)] = {};
        codec.encodeBatch(data, check, n, level);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(check[i], golden[i])
                << "@" << util::simdLevelName(level) << " word "
                << i;
        }

        std::uint32_t syndrome[std::size(data)];
        codec.syndromeBatch(data, golden, syndrome, n, level);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(syndrome[i], 0u)
                << "@" << util::simdLevelName(level);

        ecc::DecodeResult out[std::size(data)];
        codec.decodeBatch(data, golden, out, n, level);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(out[i].status, ecc::DecodeStatus::Ok);
            EXPECT_EQ(out[i].data, data[i]);
        }
    }
}

TEST(GoldenSecded, BatchKernels39_32AtEveryWidth)
{
    // The narrow codec (7 check bits, 32 data bits) through the same
    // width sweep.
    const std::uint64_t data[] = {
        0x00000000ULL, 0x00000001ULL, 0xFFFFFFFFULL,
        0xDEADBEEFULL, 0x89ABCDEFULL, 0x55555555ULL,
    };
    const std::uint32_t golden[] = {0x00, 0x07, 0x03,
                                    0x05, 0x42, 0x14};
    const std::size_t n = std::size(data);

    ecc::SecdedCodec codec(32);
    for (util::SimdLevel level : util::supportedSimdLevels()) {
        std::uint32_t check[std::size(data)] = {};
        codec.encodeBatch(data, check, n, level);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(check[i], golden[i])
                << "@" << util::simdLevelName(level) << " word "
                << i;
        }
    }
}

TEST(GoldenSecded, BatchDecodeCorrectsLikeSingleWordDecode)
{
    // A batch with clean words, single data-bit flips, a check-bit
    // flip, and a double error: decodeBatch must agree field-by-field
    // with decode() at every width.
    ecc::SecdedCodec codec(64);
    const std::uint64_t base = 0xDEADBEEFCAFEBABEULL;
    const std::uint32_t check = 0xD2;

    std::vector<std::uint64_t> data;
    std::vector<std::uint32_t> checks;
    for (unsigned bit = 0; bit < 64; ++bit) {
        data.push_back(base ^ (1ULL << bit));
        checks.push_back(check);
    }
    data.push_back(base);
    checks.push_back(check);
    data.push_back(base);
    checks.push_back(check ^ 0x10); // Check-bit flip.
    data.push_back(base ^ 0x3);     // Double error.
    checks.push_back(check);

    std::vector<ecc::DecodeResult> out(data.size());
    for (util::SimdLevel level : util::supportedSimdLevels()) {
        codec.decodeBatch(data.data(), checks.data(), out.data(),
                          data.size(), level);
        for (std::size_t i = 0; i < data.size(); ++i) {
            auto one = codec.decode(data[i], checks[i]);
            EXPECT_EQ(out[i].status, one.status)
                << "@" << util::simdLevelName(level) << " word "
                << i;
            EXPECT_EQ(out[i].data, one.data);
            EXPECT_EQ(out[i].bitPosition, one.bitPosition);
        }
    }
}

TEST(GoldenSecded, SingleBitErrorsStillCorrectAgainstGoldenCheck)
{
    // The pinned check bits must keep their correction power: flip
    // any data bit and the golden check word still repairs it.
    ecc::SecdedCodec codec(64);
    const std::uint64_t data = 0xDEADBEEFCAFEBABEULL;
    const std::uint32_t check = 0xD2;
    for (unsigned bit = 0; bit < 64; ++bit) {
        auto r = codec.decode(data ^ (1ULL << bit), check);
        EXPECT_EQ(r.status, ecc::DecodeStatus::CorrectedData);
        EXPECT_EQ(r.data, data);
        EXPECT_EQ(r.bitPosition, static_cast<int>(bit));
    }
}

TEST(GoldenBch, Bch127_64Codeword)
{
    ecc::BchCode bch(7, 10);
    ASSERT_EQ(bch.n(), 127u);
    ASSERT_EQ(bch.k(), 64u);

    auto message = fromWords({0x6E789E6AA1B965F4ULL}, 64);
    auto expected = fromWords(
        {0x5C90E20A1D7601C8ULL, 0x373C4F3550DCB2FAULL}, 127);

    auto codeword = bch.encode(message);
    EXPECT_EQ(codeword, expected);
    EXPECT_EQ(bch.extractMessage(codeword), message);

    // The pinned codeword still decodes through t = 10 flips.
    auto damaged = codeword;
    for (unsigned i = 0; i < bch.t(); ++i)
        damaged.flip((i * 13 + 5) % bch.n());
    auto repaired = bch.decode(damaged);
    ASSERT_TRUE(repaired.has_value());
    EXPECT_EQ(*repaired, expected);
}

TEST(GoldenBch, Bch255_99Codeword)
{
    ecc::BchCode bch(8, 23);
    ASSERT_EQ(bch.n(), 255u);
    ASSERT_EQ(bch.k(), 99u);

    auto message = fromWords(
        {0x6E789E6AA1B965F4ULL, 0x000000008009454FULL}, 99);
    auto expected = fromWords(
        {0x6E115230670200E1ULL, 0xFFA2785A78DD51D3ULL,
         0xAA1B965F4D87A0BDULL, 0x08009454F6E789E6ULL},
        255);

    auto codeword = bch.encode(message);
    EXPECT_EQ(codeword, expected);
    EXPECT_EQ(bch.extractMessage(codeword), message);

    auto damaged = codeword;
    for (unsigned i = 0; i < bch.t(); ++i)
        damaged.flip((i * 31 + 2) % bch.n());
    auto repaired = bch.decode(damaged);
    ASSERT_TRUE(repaired.has_value());
    EXPECT_EQ(*repaired, expected);
}

TEST(GoldenBch, GeneratorPolynomialIsPinned)
{
    // BCH(127, 64, t=10): deg(g) = n - k = 63; g is fixed by the
    // field's primitive polynomial, so pin it bit-for-bit.
    ecc::BchCode bch(7, 10);
    const char *expected =
        "1010010000000001001101111110001111011010100000011101010110"
        "000101";
    const auto &gen = bch.generator();
    ASSERT_EQ(gen.size(), 64u);
    for (std::size_t i = 0; i < gen.size(); ++i)
        EXPECT_EQ(gen[i], expected[i] == '1' ? 1 : 0) << "g[" << i
                                                      << "]";
}
