/**
 * @file
 * Behavioral tests for the annotated mutex layer (util/mutex.hpp):
 * Mutex mutual exclusion, CondVar producer/consumer hand-off with the
 * manual predicate loop the annotations mandate, and SharedMutex
 * reader/writer snapshot consistency. Suite names contain
 * "Concurrent" so the TSan CI job picks them up.
 */

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mutex.hpp"

namespace u = authenticache::util;

TEST(MutexConcurrent, MutualExclusionUnderContention)
{
    u::Mutex mu;
    std::uint64_t counter = 0; // guarded by mu (locally)
    const unsigned threads = 8;
    const std::uint64_t per_thread = 20000;

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back([&] {
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                u::MutexLock lock(mu);
                ++counter; // non-atomic: lost updates if the lock lies
            }
        });
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(counter, threads * per_thread);
}

TEST(MutexConcurrent, TryLockFailsWhileHeld)
{
    u::Mutex mu;
    mu.lock();
    bool got = true;
    // try_lock from another thread: same-thread try_lock on an
    // already-held std::mutex is undefined behavior.
    std::thread probe([&] { got = mu.try_lock(); });
    probe.join();
    EXPECT_FALSE(got);
    mu.unlock();
    std::thread probe2([&] {
        bool ok = mu.try_lock();
        EXPECT_TRUE(ok);
        if (ok)
            mu.unlock();
    });
    probe2.join();
}

TEST(CondVarConcurrent, ProducerConsumerDrainsEverything)
{
    // Bounded queue with the manual while-loop wait the CondVar API
    // requires (no predicate lambdas -- see util/mutex.hpp).
    u::Mutex mu;
    u::CondVar notEmpty;
    u::CondVar notFull;
    std::deque<std::uint64_t> queue; // guarded by mu (locally)
    bool done = false;               // guarded by mu (locally)
    const std::size_t capacity = 16;
    const unsigned producers = 3;
    const unsigned consumers = 4;
    const std::uint64_t per_producer = 5000;

    std::uint64_t consumed_sum = 0;
    u::Mutex sumMu;

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < producers; ++p)
        threads.emplace_back([&, p] {
            for (std::uint64_t i = 0; i < per_producer; ++i) {
                u::MutexLock lock(mu);
                while (queue.size() >= capacity)
                    notFull.wait(mu);
                queue.push_back(p * per_producer + i + 1);
                notEmpty.notify_one();
            }
        });
    for (unsigned c = 0; c < consumers; ++c)
        threads.emplace_back([&] {
            std::uint64_t local = 0;
            for (;;) {
                std::uint64_t item;
                {
                    u::MutexLock lock(mu);
                    while (queue.empty() && !done)
                        notEmpty.wait(mu);
                    if (queue.empty())
                        break; // done and drained
                    item = queue.front();
                    queue.pop_front();
                    notFull.notify_one();
                }
                local += item;
            }
            u::MutexLock lock(sumMu);
            consumed_sum += local;
        });

    for (unsigned p = 0; p < producers; ++p)
        threads[p].join();
    {
        u::MutexLock lock(mu);
        done = true;
        notEmpty.notify_all();
    }
    for (unsigned c = 0; c < consumers; ++c)
        threads[producers + c].join();

    // Sum of 1..(producers*per_producer) -- every item exactly once.
    const std::uint64_t n = producers * per_producer;
    EXPECT_EQ(consumed_sum, n * (n + 1) / 2);
    EXPECT_TRUE(queue.empty());
}

TEST(SharedMutexConcurrent, ReadersSeeConsistentPairs)
{
    // A writer keeps (a + b) constant under the writer lock; readers
    // under the shared lock must never observe a torn update.
    u::SharedMutex mu;
    std::uint64_t a = 1000; // guarded by mu (locally)
    std::uint64_t b = 0;    // guarded by mu (locally)

    std::thread writer([&] {
        for (int i = 0; i < 20000; ++i) {
            u::SharedMutexLock lock(mu);
            ++a;
            --b;
        }
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r)
        readers.emplace_back([&] {
            for (int i = 0; i < 20000; ++i) {
                u::SharedReaderLock lock(mu);
                EXPECT_EQ(a + b, 1000u);
            }
        });
    writer.join();
    for (auto &th : readers)
        th.join();
    EXPECT_EQ(a + b, 1000u);
}
