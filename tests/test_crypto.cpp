/**
 * @file
 * Tests for SHA-256 / HMAC (published vectors), SipHash (reference
 * vectors), key derivation, the Feistel coordinate permutation, and
 * the fuzzy extractor.
 */

#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "crypto/feistel.hpp"
#include "crypto/fuzzy_extractor.hpp"
#include "crypto/key.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"

namespace c = authenticache::crypto;
using authenticache::util::BitVec;
using authenticache::util::Rng;

TEST(Sha256, EmptyStringVector)
{
    EXPECT_EQ(c::toHex(c::Sha256::hash(std::string(""))),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector)
{
    EXPECT_EQ(c::toHex(c::Sha256::hash(std::string("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector)
{
    EXPECT_EQ(c::toHex(c::Sha256::hash(std::string(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                  "mnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAVector)
{
    c::Sha256 h;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(c::toHex(h.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    std::string msg = "authenticache incremental hashing test";
    c::Sha256 h;
    for (char ch : msg)
        h.update(std::string(1, ch));
    EXPECT_EQ(h.finalize(), c::Sha256::hash(msg));
}

TEST(HmacSha256, Rfc4231Case1)
{
    std::vector<std::uint8_t> key(20, 0x0b);
    std::string data = "Hi There";
    auto mac = c::hmacSha256(
        key, std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t *>(data.data()),
                 data.size()));
    EXPECT_EQ(c::toHex(mac),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2)
{
    std::string key = "Jefe";
    std::string data = "what do ya want for nothing?";
    auto mac = c::hmacSha256(
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t *>(key.data()),
            key.size()),
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t *>(data.data()),
            data.size()));
    EXPECT_EQ(c::toHex(mac),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(SipHash, ReferenceVectors)
{
    // Reference key and inputs from the SipHash paper's test vectors:
    // key = 000102...0f, input = first N bytes of 00, 01, 02, ...
    c::SipHashKey key{0x0706050403020100ull, 0x0f0e0d0c0b0a0908ull};

    std::vector<std::uint8_t> input;
    EXPECT_EQ(c::siphash24(key, input), 0x726fdb47dd0e0e31ull);

    for (std::uint8_t i = 0; i < 15; ++i)
        input.push_back(i);
    EXPECT_EQ(c::siphash24(key, input), 0xa129ca6149be45e5ull);
}

TEST(SipHash, WordOverloadMatchesByteSpan)
{
    c::SipHashKey key{1, 2};
    std::uint64_t w = 0x1122334455667788ull;
    std::array<std::uint8_t, 8> bytes;
    std::memcpy(bytes.data(), &w, 8);
    EXPECT_EQ(c::siphash24(key, w), c::siphash24(key, bytes));
}

TEST(SipHash, KeySensitivity)
{
    c::SipHashKey k1{1, 2};
    c::SipHashKey k2{1, 3};
    EXPECT_NE(c::siphash24(k1, 42ull), c::siphash24(k2, 42ull));
}

TEST(KeyDerivation, LabelsSeparateDomains)
{
    c::Key256 root = c::Key256::fromDigest(c::Sha256::hash(
        std::string("root")));
    EXPECT_NE(c::deriveKey(root, "a"), c::deriveKey(root, "b"));
    auto s1 = c::deriveSipHashKey(root, "x");
    auto s2 = c::deriveSipHashKey(root, "y");
    EXPECT_FALSE(s1 == s2);
}

TEST(KeyDerivation, Deterministic)
{
    c::Key256 root;
    root.bytes[0] = 7;
    EXPECT_EQ(c::deriveKey(root, "label"), c::deriveKey(root, "label"));
}

class FeistelDomains : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FeistelDomains, IsBijection)
{
    c::SipHashKey key{0xDEADBEEFull, 0xFEEDFACEull};
    std::uint64_t n = GetParam();
    c::FeistelPermutation perm(key, n);
    std::set<std::uint64_t> images;
    for (std::uint64_t x = 0; x < n; ++x) {
        std::uint64_t y = perm.map(x);
        ASSERT_LT(y, n);
        images.insert(y);
        ASSERT_EQ(perm.unmap(y), x);
    }
    EXPECT_EQ(images.size(), n);
}

INSTANTIATE_TEST_SUITE_P(SmallAndOddDomains, FeistelDomains,
                         ::testing::Values(2, 3, 7, 16, 100, 1000, 4096,
                                           5000));

TEST(Feistel, LargeDomainInverseSampled)
{
    c::SipHashKey key{123, 456};
    c::FeistelPermutation perm(key, 65536ull * 8);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t x = rng.nextBelow(perm.domain());
        EXPECT_EQ(perm.unmap(perm.map(x)), x);
    }
}

TEST(Feistel, DifferentKeysDifferentPermutations)
{
    c::FeistelPermutation p1(c::SipHashKey{1, 1}, 1024);
    c::FeistelPermutation p2(c::SipHashKey{1, 2}, 1024);
    int same = 0;
    for (std::uint64_t x = 0; x < 1024; ++x)
        same += p1.map(x) == p2.map(x);
    EXPECT_LT(same, 16); // ~1 expected by chance.
}

TEST(Feistel, PermutationLooksUniform)
{
    // Images of a contiguous block should scatter across the domain.
    c::FeistelPermutation perm(c::SipHashKey{9, 9}, 10000);
    std::uint64_t below_half = 0;
    for (std::uint64_t x = 0; x < 1000; ++x)
        below_half += perm.map(x) < 5000;
    EXPECT_GT(below_half, 400u);
    EXPECT_LT(below_half, 600u);
}

TEST(FuzzyExtractor, RejectsBadRepetition)
{
    EXPECT_THROW(c::FuzzyExtractor(4), std::invalid_argument);
    EXPECT_THROW(c::FuzzyExtractor(1), std::invalid_argument);
}

TEST(FuzzyExtractor, CleanReproduction)
{
    c::FuzzyExtractor fe(5);
    Rng rng(11);
    BitVec response(120);
    for (std::size_t i = 0; i < response.size(); ++i)
        response.set(i, rng.nextBool());

    auto out = fe.generate(response, rng);
    EXPECT_EQ(fe.reproduce(response, out.helper), out.key);
}

TEST(FuzzyExtractor, ToleratesCorrectableNoise)
{
    c::FuzzyExtractor fe(5);
    Rng rng(13);
    BitVec response(200);
    for (std::size_t i = 0; i < response.size(); ++i)
        response.set(i, rng.nextBool());
    auto out = fe.generate(response, rng);

    // Up to 2 flips per 5-bit group are tolerated: flip 2 bits in each
    // of several groups.
    BitVec noisy = response;
    for (std::size_t g = 0; g < 200 / 5; ++g) {
        noisy.flip(g * 5 + 1);
        noisy.flip(g * 5 + 3);
    }
    EXPECT_EQ(fe.reproduce(noisy, out.helper), out.key);
}

TEST(FuzzyExtractor, FailsBeyondCorrectionRadius)
{
    c::FuzzyExtractor fe(3);
    Rng rng(17);
    BitVec response(90);
    for (std::size_t i = 0; i < response.size(); ++i)
        response.set(i, rng.nextBool());
    auto out = fe.generate(response, rng);

    BitVec noisy = response;
    noisy.flip(0);
    noisy.flip(1); // Two flips in a 3-group: majority flips.
    EXPECT_NE(fe.reproduce(noisy, out.helper), out.key);
}

TEST(FuzzyExtractor, HelperAloneDoesNotDetermineKey)
{
    // Two different responses with the same helper produce different
    // keys: the helper is not a key encoding.
    c::FuzzyExtractor fe(5);
    Rng rng(19);
    BitVec r1(100);
    BitVec r2(100);
    for (std::size_t i = 0; i < 100; ++i) {
        r1.set(i, rng.nextBool());
        r2.set(i, rng.nextBool());
    }
    auto out = fe.generate(r1, rng);
    EXPECT_NE(fe.reproduce(r2, out.helper), out.key);
}

TEST(FuzzyExtractor, LengthValidation)
{
    c::FuzzyExtractor fe(5);
    Rng rng(23);
    BitVec response(101); // Not a multiple of 5.
    EXPECT_THROW(fe.generate(response, rng), std::invalid_argument);

    BitVec ok(100);
    auto out = fe.generate(ok, rng);
    BitVec wrong(95);
    EXPECT_THROW(fe.reproduce(wrong, out.helper),
                 std::invalid_argument);
}
