/**
 * @file
 * Tests for the table/CSV writer, CRC-32, and the logger.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace u = authenticache::util;

TEST(Crc32, KnownVector)
{
    // CRC-32/IEEE of "123456789" is 0xCBF43926.
    std::string s = "123456789";
    std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t *>(s.data()), s.size());
    EXPECT_EQ(u::crc32(bytes), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(u::crc32({}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    std::string s = "authenticache-protocol-frame";
    std::span<const std::uint8_t> all(
        reinterpret_cast<const std::uint8_t *>(s.data()), s.size());
    auto first = all.subspan(0, 10);
    auto rest = all.subspan(10);
    std::uint32_t inc = u::crc32Update(u::crc32(first), rest);
    EXPECT_EQ(inc, u::crc32(all));
}

TEST(Crc32, DetectsSingleByteChange)
{
    std::string a = "hello world";
    std::string b = "hello worle";
    std::span<const std::uint8_t> sa(
        reinterpret_cast<const std::uint8_t *>(a.data()), a.size());
    std::span<const std::uint8_t> sb(
        reinterpret_cast<const std::uint8_t *>(b.data()), b.size());
    EXPECT_NE(u::crc32(sa), u::crc32(sb));
}

TEST(Table, AlignedOutputContainsCells)
{
    u::Table t({"name", "value"});
    t.row().cell("alpha").cell(std::uint64_t(42));
    t.row().cell("beta").cell(2.5, 1);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("2.5"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, CsvFormat)
{
    u::Table t({"a", "b"});
    t.row().cell("x").cell("y");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(Table, RowCount)
{
    u::Table t({"a"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.row().cell("1");
    t.row().cell("2");
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Logging, ThresholdSuppresses)
{
    // Capture stderr around a suppressed and an emitted message.
    u::setLogLevel(u::LogLevel::Error);
    testing::internal::CaptureStderr();
    AUTH_LOG_INFO("test") << "hidden";
    AUTH_LOG_ERROR("test") << "visible";
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("hidden"), std::string::npos);
    EXPECT_NE(err.find("visible"), std::string::npos);
    u::setLogLevel(u::LogLevel::Warn);
}

TEST(Logging, OffSilencesEverything)
{
    u::setLogLevel(u::LogLevel::Off);
    testing::internal::CaptureStderr();
    AUTH_LOG_ERROR("test") << "nope";
    EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
    u::setLogLevel(u::LogLevel::Warn);
}
