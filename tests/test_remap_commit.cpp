/**
 * @file
 * Tests for the remap two-phase commit with key confirmation: a
 * client that mis-derives the key (helper corrupted / noise beyond
 * correction) must be detected at the confirmation step, leaving both
 * sides on the old key -- the desynchronization hazard the lifetime
 * simulation exposed with the naive single-phase protocol.
 */

#include <memory>

#include <gtest/gtest.h>

#include "server/server.hpp"
#include "sim/chip.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace core = authenticache::core;
namespace crypto = authenticache::crypto;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;

class RemapCommitFlow : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::ChipConfig cfg;
        cfg.cacheBytes = 1024 * 1024;
        chip = std::make_unique<sim::SimulatedChip>(cfg, 6006);
        machine = std::make_unique<fw::SimulatedMachine>(2);
        fw::ClientConfig ccfg;
        ccfg.selfTestAttempts = 8;
        client = std::make_unique<fw::AuthenticacheClient>(
            *chip, *machine, ccfg);
        client->boot();

        srv::ServerConfig scfg;
        scfg.challengeBits = 64;
        scfg.remapSecretBits = 16;
        server =
            std::make_unique<srv::AuthenticationServer>(scfg, 66);
        auto levels = srv::defaultChallengeLevels(*client, 1);
        server->enroll(8, *client, levels,
                       {srv::defaultReservedLevel(*client)});

        server_end = std::make_unique<proto::ServerEndpoint>(channel);
        agent = std::make_unique<srv::DeviceAgent>(
            8, *client, proto::ClientEndpoint(channel));
    }

    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
    std::unique_ptr<srv::AuthenticationServer> server;
    proto::InMemoryChannel channel;
    std::unique_ptr<proto::ServerEndpoint> server_end;
    std::unique_ptr<srv::DeviceAgent> agent;
};

TEST_F(RemapCommitFlow, CleanRemapCommitsBothSides)
{
    crypto::Key256 before = client->mapKey();
    server->startRemap(8, *server_end);
    srv::runExchange(*server, *server_end, *agent);

    EXPECT_EQ(server->remapsCommitted(), 1u);
    EXPECT_EQ(server->remapsRejected(), 0u);
    EXPECT_NE(client->mapKey(), before);
    EXPECT_EQ(client->mapKey(), server->database().at(8).mapKey());
}

TEST_F(RemapCommitFlow, CorruptedHelperIsRejectedWithoutDesync)
{
    crypto::Key256 before = client->mapKey();
    ASSERT_EQ(server->database().at(8).mapKey(), before);

    server->startRemap(8, *server_end);

    // Intercept the RemapRequest and sabotage one helper group so
    // the client derives the wrong secret.
    auto frame = channel.receiveAtClient();
    ASSERT_TRUE(frame.has_value());
    auto msg = proto::decodeMessage(*frame);
    auto *req = std::get_if<proto::RemapRequest>(&msg);
    ASSERT_NE(req, nullptr);
    req->helper.flip(0);
    req->helper.flip(1);
    req->helper.flip(2); // Majority of the first 5-bit group flips.
    channel.sendToClient(proto::encodeMessage(*req));

    srv::runExchange(*server, *server_end, *agent);

    // The confirmation MAC exposed the mismatch: rejected, and both
    // sides still hold the old key.
    EXPECT_EQ(server->remapsCommitted(), 0u);
    EXPECT_EQ(server->remapsRejected(), 1u);
    EXPECT_EQ(client->mapKey(), before);
    EXPECT_EQ(server->database().at(8).mapKey(), before);

    // Authentication still works on the old key.
    agent->requestAuthentication();
    srv::runExchange(*server, *server_end, *agent);
    ASSERT_TRUE(agent->lastDecision().has_value());
    EXPECT_TRUE(agent->lastDecision()->accepted);

    // And a clean retry succeeds.
    server->startRemap(8, *server_end);
    srv::runExchange(*server, *server_end, *agent);
    EXPECT_EQ(server->remapsCommitted(), 1u);
    EXPECT_EQ(client->mapKey(), server->database().at(8).mapKey());
}

TEST_F(RemapCommitFlow, StrayCommitIsIgnored)
{
    crypto::Key256 before = client->mapKey();
    channel.sendToClient(
        proto::encodeMessage(proto::RemapCommit{12345, true}));
    agent->pumpAll();
    EXPECT_EQ(client->mapKey(), before);
}

TEST_F(RemapCommitFlow, ForgedConfirmationRejected)
{
    // An attacker who hijacks the ack cannot confirm without the key.
    server->startRemap(8, *server_end);
    auto frame = channel.receiveAtClient();
    ASSERT_TRUE(frame.has_value());
    auto msg = proto::decodeMessage(*frame);
    auto *req = std::get_if<proto::RemapRequest>(&msg);
    ASSERT_NE(req, nullptr);

    proto::RemapAck forged;
    forged.nonce = req->nonce;
    forged.success = true;
    forged.confirmation.fill(0xAB);
    channel.sendToServer(proto::encodeMessage(forged));
    server->pumpAll(*server_end);

    EXPECT_EQ(server->remapsCommitted(), 0u);
    EXPECT_EQ(server->remapsRejected(), 1u);
}
