/**
 * @file
 * The crash-injection recovery sweep: the headline durability test.
 *
 * A fixed, deterministic workload -- enrollments, honest and failing
 * authentications (driving a lockout), a committed remap exchange,
 * heartbeat rounds (clean and failed, exercising the trust ledger),
 * an admin revocation and unlock, rotation mid-run -- executes
 * against a server with the durability
 * layer attached and a CrashInjector armed at one opportunity. The
 * injector kills the process (via CrashException) at every journal
 * append, every fsync boundary, every snapshot write step, and every
 * generation-GC unlink, one trial per opportunity. After each crash,
 * recovery must restore a database byte-identical (canonical snapshot
 * encoding) to the state reached by applying the first lastSeq events
 * of an uncrashed reference run -- i.e. every durable state is an
 * exact event-stream prefix: retirements are exactly-once, a remap
 * key is fully old or fully new, and a disclosed lockout survives.
 *
 * A second sweep re-runs the snapshot write at every *byte* offset
 * (WriteGranularity::EveryByte) and checks the atomic-replacement
 * contract, including fallback to the previous generation.
 *
 * Environment knobs:
 *   AUTHENTICACHE_QUICK=1       strided smoke subset of each sweep
 *   AUTHENTICACHE_CRASH_FULL=1  forces the full matrix even if QUICK
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/remap.hpp"
#include "crypto/fuzzy_extractor.hpp"
#include "mc/mapgen.hpp"
#include "server/durability.hpp"
#include "server/server.hpp"
#include "server/storage.hpp"

namespace srv = authenticache::server;
namespace jnl = authenticache::server::journal;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace mc = authenticache::mc;
namespace proto = authenticache::protocol;
namespace crypto = authenticache::crypto;
namespace util = authenticache::util;
namespace fs = std::filesystem;

namespace {

constexpr core::VddMv kLevel = 700.0;
constexpr core::VddMv kReservedLvl = 705.0;
constexpr std::uint64_t kServerSeed = 0x5EED;
constexpr std::size_t kMapErrors = 40;
const sim::CacheGeometry kGeom(64 * 1024);

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' && *v != '0';
}

/** Stride through a sweep: 1 = every opportunity. */
std::uint64_t
sweepStride(std::uint64_t quick_stride)
{
    if (envFlag("AUTHENTICACHE_CRASH_FULL"))
        return 1;
    return envFlag("AUTHENTICACHE_QUICK") ? quick_stride : 1;
}

struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    void
    wipe()
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    std::string str() const { return path.string(); }
    fs::path path;
};

core::ErrorMap
deviceMap(std::uint64_t id)
{
    util::Rng rng = util::Rng::forStream(0xC4A5, id);
    core::ErrorMap map =
        mc::randomErrorMap(kGeom, kLevel, kMapErrors, rng);
    auto &plane = map.plane(kReservedLvl);
    while (plane.errorCount() < kMapErrors)
        plane.add(kGeom.pointOf(rng.nextBelow(kGeom.lines())));
    return map;
}

srv::DeviceRecord
makeRecord(std::uint64_t id)
{
    srv::DeviceRecord record(id, deviceMap(id), {kLevel},
                             {kReservedLvl});
    record.setMapKey(crypto::Key256::fromDigest(crypto::Sha256::hash(
        "crash-key-" + std::to_string(id))));
    return record;
}

srv::ServerConfig
makeConfig()
{
    srv::ServerConfig cfg;
    cfg.challengeBits = 32;
    cfg.remapSecretBits = 32;
    cfg.lockoutThreshold = 2;
    cfg.sessionShards = 4;
    // Each device completes at most three auth sessions, so a
    // checkpoint every three outcomes guarantees the sweep covers
    // CounterCheckpoint crash points.
    cfg.counterCheckpointEvery = 3;
    return cfg;
}

util::BitVec
honestResponse(const srv::DeviceRecord &rec,
               const core::Challenge &ch)
{
    core::LogicalRemap remap(rec.mapKey(),
                             rec.physicalMap().geometry());
    return core::evaluate(remap.mapErrorMap(rec.physicalMap()), ch);
}

proto::RemapAck
craftAck(const srv::DeviceRecord &rec, const proto::RemapRequest &rr)
{
    core::LogicalRemap identity(crypto::Key256::zero(),
                                rec.physicalMap().geometry());
    auto response = core::evaluate(
        identity.mapErrorMap(rec.physicalMap()), rr.challenge);
    crypto::FuzzyExtractor extractor(rr.repetition);
    auto key = extractor.reproduce(response, rr.helper);
    proto::RemapAck ack;
    ack.nonce = rr.nonce;
    ack.success = true;
    ack.confirmation = crypto::keyConfirmation(key, rr.nonce);
    return ack;
}

/** What a (possibly crashed) workload run reports back. */
struct RunResult
{
    bool crashed = false;
    std::size_t completedSteps = 0;
    /** Manager sequence after each completed step (ref runs). */
    std::vector<std::uint64_t> seqAfterStep;
    /** Final database bytes (uncrashed runs only). */
    std::vector<std::uint8_t> finalState;
    crypto::Key256 key201; ///< Device 201's key at the end.
};

/**
 * The scripted workload. Deterministic by construction: fixed seeds,
 * fixed step order, single-threaded pumping. The event stream it
 * journals is identical on every run, so a crashed run's durable
 * state is always a prefix of the uncrashed run's event stream.
 */
RunResult
runWorkload(const std::string &dir, std::uint64_t rotate_every,
            srv::CrashInjector *inj)
{
    RunResult out;
    srv::DurabilityConfig dcfg{dir, rotate_every};
    try {
        srv::ServerConfig cfg = makeConfig();
        srv::AuthenticationServer server(cfg, kServerSeed);
        auto recovered = srv::DurabilityManager::recover(dcfg);
        server.adoptDatabase(std::move(recovered.db));
        srv::DurabilityManager mgr(dcfg, server.database(),
                                   recovered.lastSeq, inj);
        server.attachDurability(&mgr);

        proto::InMemoryChannel chan;
        proto::ServerEndpoint sep(chan);

        auto drainToClient = [&]() {
            std::vector<proto::Message> msgs;
            while (auto frame = chan.receiveAtClient())
                msgs.push_back(proto::decodeMessage(*frame));
            return msgs;
        };

        auto auth = [&](std::uint64_t id, bool honest) {
            chan.sendToServer(
                proto::encodeMessage(proto::AuthRequest{id}));
            server.pumpAll(sep);
            std::optional<proto::ChallengeMsg> ch;
            for (const auto &m : drainToClient())
                if (const auto *c =
                        std::get_if<proto::ChallengeMsg>(&m))
                    ch = *c;
            if (!ch)
                return; // Locked device: ErrorMsg, no session.
            auto resp = honestResponse(server.database().at(id),
                                       ch->challenge);
            if (!honest)
                for (std::size_t b = 0; b < resp.size(); ++b)
                    resp.flip(b);
            chan.sendToServer(proto::encodeMessage(
                proto::ResponseMsg{ch->nonce, resp}));
            server.pumpAll(sep);
            drainToClient();
        };

        auto remap = [&](std::uint64_t id) {
            server.startRemap(id, sep);
            std::optional<proto::RemapRequest> rr;
            for (const auto &m : drainToClient())
                if (const auto *r =
                        std::get_if<proto::RemapRequest>(&m))
                    rr = *r;
            ASSERT_TRUE(rr.has_value());
            chan.sendToServer(proto::encodeMessage(
                craftAck(server.database().at(id), *rr)));
            server.pumpAll(sep);
            drainToClient();
        };

        auto remapRejected = [&](std::uint64_t id) {
            server.startRemap(id, sep);
            std::optional<proto::RemapRequest> rr;
            for (const auto &m : drainToClient())
                if (const auto *r =
                        std::get_if<proto::RemapRequest>(&m))
                    rr = *r;
            ASSERT_TRUE(rr.has_value());
            auto ack = craftAck(server.database().at(id), *rr);
            ack.confirmation[0] ^= 0xFF; // Key confirmation fails.
            chan.sendToServer(proto::encodeMessage(ack));
            server.pumpAll(sep);
            drainToClient();
        };

        auto heartbeat = [&](std::uint64_t id, bool honest) {
            server.startHeartbeat(id, sep);
            std::optional<proto::Heartbeat> hb;
            for (const auto &m : drainToClient())
                if (const auto *h = std::get_if<proto::Heartbeat>(&m))
                    hb = *h;
            ASSERT_TRUE(hb.has_value());
            auto resp = honestResponse(server.database().at(id),
                                       hb->challenge);
            if (!honest)
                for (std::size_t b = 0; b < resp.size(); ++b)
                    resp.flip(b);
            chan.sendToServer(proto::encodeMessage(
                proto::HeartbeatProof{hb->nonce, resp}));
            server.pumpAll(sep);
            drainToClient();
            server.stopHeartbeat(id);
        };

        const std::vector<std::function<void()>> steps = {
            [&] { server.enrollRecord(makeRecord(201)); },
            [&] { server.enrollRecord(makeRecord(202)); },
            [&] { server.enrollRecord(makeRecord(203)); },
            [&] { auth(201, true); },
            [&] { auth(202, true); },
            [&] { auth(203, false); },
            [&] { auth(203, false); }, // Second failure: lockout.
            [&] { auth(203, true); },  // Locked: refused, no events.
            [&] { remap(201); },       // Key switches here.
            [&] { auth(201, true); },  // Under the new key.
            [&] { auth(202, true); },
            [&] { heartbeat(201, true); },  // Clean round: trust up.
            [&] { heartbeat(202, false); }, // Failed round: decay.
            [&] { server.revokeDevice(202); },
            [&] { server.unlockDevice(202); },
            [&] { auth(202, true); }, // Operational post-unlock.
            [&] { auth(201, true); },
            [&] { remapRejected(202); }, // Old key stays in force.
            [&] { server.removeDevice(203); },
        };
        for (const auto &step : steps) {
            step();
            out.seqAfterStep.push_back(mgr.lastSequence());
            ++out.completedSteps;
        }
        out.finalState = srv::saveDatabase(server.database());
        out.key201 = server.database().at(201).mapKey();
    } catch (const srv::CrashException &) {
        out.crashed = true;
    }
    return out;
}

/** Apply the first @p n reference events onto an empty database. */
srv::EnrollmentDatabase
referencePrefix(const std::vector<jnl::Event> &events, std::uint64_t n)
{
    srv::EnrollmentDatabase db;
    for (std::uint64_t i = 0; i < n && i < events.size(); ++i)
        jnl::applyEvent(db, events[i]);
    return db;
}

void
copyDir(const fs::path &from, const fs::path &to)
{
    fs::remove_all(to);
    fs::create_directories(to);
    for (const auto &entry : fs::directory_iterator(from))
        fs::copy_file(entry.path(), to / entry.path().filename());
}

} // namespace

TEST(CrashRecovery, WorkloadSweepRestoresExactPrefix)
{
    // Reference run: no rotation, so journal-0 holds the complete
    // event stream (rotation changes where snapshots land, never
    // which events exist or their sequence numbers).
    TempDir ref_dir("auth_crash_ref");
    auto ref = runWorkload(ref_dir.str(), 0, nullptr);
    ASSERT_FALSE(ref.crashed);
    ASSERT_EQ(ref.completedSteps, 19u);

    std::vector<jnl::Event> events;
    auto rr = jnl::Journal::replay(
        srv::DurabilityManager::journalPath(ref_dir.str(), 0), 0,
        [&](std::uint64_t seq, const jnl::Event &event) {
            ASSERT_EQ(seq, events.size() + 1); // Contiguous from 1.
            events.push_back(event);
        });
    ASSERT_TRUE(rr.headerValid);
    ASSERT_FALSE(rr.tornTail);
    ASSERT_GE(events.size(), 20u);
    ASSERT_EQ(events.size(), ref.seqAfterStep.back());

    // The sweep must demonstrably cover every journal event type:
    // each crash point around each record kind gets a trial below,
    // so an alternative missing from this census would mean a
    // recovery path the sweep never exercises.
    std::size_t pairs_retired = 0, auth_outcomes = 0;
    std::size_t remaps_prepared = 0, remaps_committed = 0;
    std::size_t remaps_rejected = 0, unlocked = 0, removed = 0;
    std::size_t enrolled = 0, checkpoints = 0;
    std::size_t trust_updates = 0, revoked = 0;
    for (const auto &event : events) {
        if (std::holds_alternative<jnl::PairsRetired>(event))
            ++pairs_retired;
        else if (std::holds_alternative<jnl::AuthOutcome>(event))
            ++auth_outcomes;
        else if (std::holds_alternative<jnl::RemapPrepared>(event))
            ++remaps_prepared;
        else if (std::holds_alternative<jnl::RemapCommitted>(event))
            ++remaps_committed;
        else if (std::holds_alternative<jnl::RemapRejected>(event))
            ++remaps_rejected;
        else if (std::holds_alternative<jnl::DeviceUnlocked>(event))
            ++unlocked;
        else if (std::holds_alternative<jnl::DeviceRemoved>(event))
            ++removed;
        else if (std::holds_alternative<jnl::Enrolled>(event))
            ++enrolled;
        else if (std::holds_alternative<jnl::CounterCheckpoint>(event))
            ++checkpoints;
        else if (std::holds_alternative<jnl::TrustUpdate>(event))
            ++trust_updates;
        else if (std::holds_alternative<jnl::DeviceRevoked>(event))
            ++revoked;
    }
    // Deterministic singletons / admin actions.
    EXPECT_EQ(enrolled, 3u);
    EXPECT_EQ(remaps_committed, 1u); // remap(201).
    EXPECT_EQ(remaps_rejected, 1u);  // remapRejected(202).
    EXPECT_EQ(revoked, 1u);
    EXPECT_EQ(unlocked, 1u);
    EXPECT_EQ(removed, 1u); // removeDevice(203).
    // Round-dependent counts (auth sessions + heartbeat rounds).
    EXPECT_GE(pairs_retired, 8u);
    EXPECT_GE(auth_outcomes, 8u);
    EXPECT_GE(remaps_prepared, 2u);
    EXPECT_GE(checkpoints, 1u); // Third outcome on 201 and 202.
    EXPECT_GE(trust_updates, 4u); // Session starts + verdicts + admin.
    // The census is itself exhaustive: every event was counted.
    EXPECT_EQ(pairs_retired + auth_outcomes + remaps_prepared +
                  remaps_committed + remaps_rejected + unlocked +
                  removed + enrolled + checkpoints + trust_updates +
                  revoked,
              events.size());

    // The reference database equals its own event-stream replay:
    // the journal is a complete, faithful history.
    EXPECT_EQ(srv::saveDatabase(
                  referencePrefix(events, events.size())),
              ref.finalState);

    const crypto::Key256 old_key = makeRecord(201).mapKey();
    ASSERT_NE(ref.key201, old_key); // The remap really switched it.

    // Dry-run with rotation enabled to size the sweep.
    TempDir trial_dir("auth_crash_trial");
    srv::CrashInjector inj;
    inj.disarm();
    {
        auto dry = runWorkload(trial_dir.str(), 8, &inj);
        ASSERT_FALSE(dry.crashed);
        // Rotation must actually trigger mid-run for the sweep to
        // cover snapshot + GC crash points.
        auto rec = srv::DurabilityManager::recover(
            srv::DurabilityConfig{trial_dir.str(), 8});
        ASSERT_GT(rec.generation, 0u);
        EXPECT_EQ(srv::saveDatabase(rec.db), ref.finalState);
    }
    const std::uint64_t total = inj.opportunities();
    ASSERT_GT(total, 50u);

    const std::uint64_t stride = sweepStride(7);
    std::uint64_t trials = 0;
    std::uint64_t outcome_tally[4] = {0, 0, 0, 0};
    std::uint64_t torn_truncations = 0;
    for (std::uint64_t t = 0; t < total; t += stride, ++trials) {
        trial_dir.wipe();
        inj.arm(t);
        auto run = runWorkload(trial_dir.str(), 8, &inj);
        inj.disarm();
        ASSERT_TRUE(run.crashed) << "opportunity " << t;

        srv::RecoveryResult rec;
        ASSERT_NO_THROW(rec = srv::DurabilityManager::recover(
                            srv::DurabilityConfig{trial_dir.str(), 8}))
            << "opportunity " << t;
        ++outcome_tally[static_cast<std::size_t>(rec.outcome())];
        if (rec.tornTailTruncated)
            ++torn_truncations;

        // Exact-prefix invariant: the recovered database is byte-
        // identical to the reference event stream replayed up to the
        // recovered sequence. This subsumes exactly-once retirement
        // (a double-applied PairsRetired would not change the set,
        // but a lost or phantom one would diverge) and all counters.
        ASSERT_LE(rec.lastSeq, events.size()) << "opportunity " << t;
        EXPECT_EQ(srv::saveDatabase(rec.db),
                  srv::saveDatabase(
                      referencePrefix(events, rec.lastSeq)))
            << "opportunity " << t;

        // Sync-before-reply: everything a completed step disclosed
        // to the client is durable.
        const std::size_t k = run.completedSteps;
        ASSERT_LE(k, ref.seqAfterStep.size());
        const std::uint64_t floor =
            k > 0 ? ref.seqAfterStep[k - 1] : 0;
        EXPECT_GE(rec.lastSeq, floor) << "opportunity " << t;

        // Targeted checks on the recovered record state.
        if (rec.db.contains(201)) {
            const auto &key = rec.db.at(201).mapKey();
            EXPECT_TRUE(key == old_key || key == ref.key201)
                << "partial key switch at opportunity " << t;
            if (k > 8) { // Remap step completed and was disclosed.
                EXPECT_EQ(key, ref.key201) << "opportunity " << t;
            }
        }
        if (k > 6 && rec.db.contains(203)) { // Lockout disclosed.
            EXPECT_TRUE(rec.db.at(203).locked())
                << "opportunity " << t;
        }

        // Recovery is idempotent: a second pass (after any torn-tail
        // truncation the first one did) lands on the same state.
        auto again = srv::DurabilityManager::recover(
            srv::DurabilityConfig{trial_dir.str(), 8});
        EXPECT_FALSE(again.tornTailTruncated) << "opportunity " << t;
        EXPECT_EQ(srv::saveDatabase(again.db),
                  srv::saveDatabase(rec.db))
            << "opportunity " << t;
    }
    ASSERT_GE(trials, 8u);
    std::cout << "[sweep] opportunities=" << total << " stride="
              << stride << " trials=" << trials
              << " | recovery outcomes: fresh_start="
              << outcome_tally[0]
              << " snapshot_only=" << outcome_tally[1]
              << " snapshot+journal=" << outcome_tally[2]
              << " fallback_snapshot=" << outcome_tally[3]
              << " torn_tail_truncations=" << torn_truncations
              << "\n";
}

TEST(CrashRecovery, RestartedServerContinuesFromRecoveredState)
{
    // Crash mid-workload at a representative opportunity, recover,
    // and drive fresh authentications: the recovered database must
    // be fully operational (maps, keys, and lockouts intact).
    TempDir dir("auth_crash_resume");
    srv::CrashInjector inj;
    inj.disarm();
    {
        auto dry = runWorkload(dir.str(), 8, &inj);
        ASSERT_FALSE(dry.crashed);
    }
    const std::uint64_t total = inj.opportunities();
    dir.wipe();
    inj.arm(total * 3 / 4); // Late in the run: remap already done.
    auto run = runWorkload(dir.str(), 8, &inj);
    inj.disarm();
    ASSERT_TRUE(run.crashed);

    srv::DurabilityConfig dcfg{dir.str(), 8};
    auto rec = srv::DurabilityManager::recover(dcfg);
    ASSERT_TRUE(rec.db.contains(201));
    ASSERT_TRUE(rec.db.contains(202));

    srv::ServerConfig cfg = makeConfig();
    srv::AuthenticationServer server(cfg, kServerSeed + 1);
    server.adoptDatabase(std::move(rec.db));
    srv::DurabilityManager mgr(dcfg, server.database(), rec.lastSeq,
                               nullptr);
    mgr.noteRecovery(rec);
    server.attachDurability(&mgr);
    server.seedCompletedRemaps(rec.remapOutcomes);

    proto::InMemoryChannel chan;
    proto::ServerEndpoint sep(chan);
    for (std::uint64_t id : {201, 202}) {
        chan.sendToServer(
            proto::encodeMessage(proto::AuthRequest{id}));
        server.pumpAll(sep);
        std::optional<proto::ChallengeMsg> ch;
        while (auto frame = chan.receiveAtClient()) {
            auto m = proto::decodeMessage(*frame);
            if (const auto *c = std::get_if<proto::ChallengeMsg>(&m))
                ch = *c;
        }
        ASSERT_TRUE(ch.has_value()) << "device " << id;
        auto resp = honestResponse(server.database().at(id),
                                   ch->challenge);
        chan.sendToServer(proto::encodeMessage(
            proto::ResponseMsg{ch->nonce, resp}));
        server.pumpAll(sep);
        bool accepted = false;
        while (auto frame = chan.receiveAtClient()) {
            auto m = proto::decodeMessage(*frame);
            if (const auto *d = std::get_if<proto::AuthDecision>(&m))
                accepted = d->accepted;
        }
        EXPECT_TRUE(accepted) << "device " << id;
    }
}

TEST(CrashRecovery, SnapshotByteSweep)
{
    // Prepare a template state: one small device, a generation-0
    // snapshot, and one journaled event.
    TempDir tmpl("auth_crash_snap_tmpl");
    srv::DurabilityConfig tcfg{tmpl.str(), 0};
    {
        srv::EnrollmentDatabase db;
        util::Rng rng(0x51AB);
        core::ErrorMap map =
            mc::randomErrorMap(kGeom, kLevel, 12, rng);
        srv::DeviceRecord record(7, std::move(map), {kLevel}, {});
        record.setMapKey(crypto::Key256::fromDigest(
            crypto::Sha256::hash("snap-sweep")));
        db.enroll(std::move(record));
        srv::DurabilityManager mgr(tcfg, db, 0);
        mgr.append(jnl::AuthOutcome{7, true, false});
        mgr.sync();
    }
    auto ref = srv::DurabilityManager::recover(tcfg);
    ASSERT_EQ(ref.lastSeq, 1u);
    const auto ref_state = srv::saveDatabase(ref.db);

    // Dry-run: restarting over the template rotates to generation 1,
    // writing a full snapshot. Count its byte-granular opportunities.
    TempDir work("auth_crash_snap_work");
    srv::CrashInjector inj;
    inj.setGranularity(srv::CrashInjector::WriteGranularity::EveryByte);
    inj.disarm();
    srv::DurabilityConfig wcfg{work.str(), 0};
    {
        copyDir(tmpl.path, work.path);
        auto rec = srv::DurabilityManager::recover(wcfg);
        srv::DurabilityManager mgr(wcfg, rec.db, rec.lastSeq, &inj);
        ASSERT_EQ(mgr.generation(), 1u);
    }
    const std::uint64_t total = inj.opportunities();
    ASSERT_GT(total, 100u); // Must actually cover the snapshot bytes.

    const std::uint64_t stride = sweepStride(13);
    std::uint64_t trials = 0;
    std::uint64_t fallbacks = 0;
    for (std::uint64_t t = 0; t < total; t += stride, ++trials) {
        copyDir(tmpl.path, work.path);
        auto rec = srv::DurabilityManager::recover(wcfg);
        inj.arm(t);
        bool crashed = false;
        try {
            srv::DurabilityManager mgr(wcfg, rec.db, rec.lastSeq,
                                       &inj);
        } catch (const srv::CrashException &) {
            crashed = true;
        }
        inj.disarm();
        ASSERT_TRUE(crashed) << "opportunity " << t;

        // Whatever byte the snapshot write died on, recovery reaches
        // the identical state: either the new generation is complete
        // or the old one (snapshot-0 + journal-0) is authoritative.
        auto after = srv::DurabilityManager::recover(wcfg);
        EXPECT_EQ(srv::saveDatabase(after.db), ref_state)
            << "opportunity " << t;
        EXPECT_EQ(after.lastSeq, 1u) << "opportunity " << t;
        fallbacks += after.snapshotFallbacks;
    }
    std::cout << "[sweep] snapshot_write_opportunities=" << total
              << " stride=" << stride << " trials=" << trials
              << " fallbacks_to_previous_generation=" << fallbacks
              << "\n";
}
