/**
 * @file
 * Tests for the write-ahead journal and the durability manager: event
 * encode/decode/apply round trips, append + replay (including torn
 * tails and sequence watermarks), crash-safe journal creation, and
 * the manager's rotation / retention / fallback / recovery behavior.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mc/mapgen.hpp"
#include "server/durability.hpp"
#include "server/journal.hpp"
#include "server/storage.hpp"
#include "util/crc32.hpp"

namespace srv = authenticache::server;
namespace jnl = authenticache::server::journal;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace proto = authenticache::protocol;
namespace crypto = authenticache::crypto;
namespace fs = std::filesystem;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(256 * 1024);

core::ErrorMap
sampleMap(std::uint64_t seed)
{
    Rng rng(seed);
    auto map = authenticache::mc::randomErrorMap(kGeom, 700, 30, rng);
    auto more = authenticache::mc::randomErrorMap(kGeom, 690, 20, rng);
    for (const auto &e : more.plane(690).errors())
        map.plane(690).add(e);
    return map;
}

srv::DeviceRecord
sampleRecord(std::uint64_t id, std::uint64_t seed)
{
    srv::DeviceRecord record(id, sampleMap(seed), {700}, {690});
    record.setMapKey(crypto::Key256::fromDigest(crypto::Sha256::hash(
        std::string("key") + std::to_string(seed))));
    return record;
}

crypto::Key256
sampleKey(const std::string &tag)
{
    return crypto::Key256::fromDigest(crypto::Sha256::hash(tag));
}

/** Round-trip one event through the wire encoding. */
jnl::Event
roundTrip(const jnl::Event &event)
{
    proto::ByteWriter w;
    jnl::encodeEvent(w, event);
    proto::ByteReader r(w.bytes());
    auto decoded = jnl::decodeEvent(r);
    EXPECT_TRUE(r.exhausted());
    return decoded;
}

/** A scratch directory wiped on destruction. */
struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
    fs::path path;
};

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(JournalEvents, PairsRetiredRoundTrip)
{
    jnl::PairsRetired e{42,
                        {{700, 700, 3, 99}, {700, 690, 5, 7}}};
    auto decoded = std::get<jnl::PairsRetired>(roundTrip(e));
    EXPECT_EQ(decoded.deviceId, 42u);
    ASSERT_EQ(decoded.pairs.size(), 2u);
    EXPECT_EQ(decoded.pairs[0].levelA, 700u);
    EXPECT_EQ(decoded.pairs[0].lineB, 99u);
    EXPECT_EQ(decoded.pairs[1].levelB, 690u);
    EXPECT_EQ(decoded.pairs[1].lineA, 5u);
}

TEST(JournalEvents, AllTypesRoundTrip)
{
    auto key = sampleKey("remap");
    auto a = std::get<jnl::AuthOutcome>(
        roundTrip(jnl::AuthOutcome{7, true, true}));
    EXPECT_TRUE(a.accepted);
    EXPECT_TRUE(a.lockedNow);

    auto p = std::get<jnl::RemapPrepared>(
        roundTrip(jnl::RemapPrepared{7, 0xABCD}));
    EXPECT_EQ(p.nonce, 0xABCDu);

    auto c = std::get<jnl::RemapCommitted>(
        roundTrip(jnl::RemapCommitted{7, 0xABCD, key}));
    EXPECT_EQ(c.newKey, key);

    auto rj = std::get<jnl::RemapRejected>(
        roundTrip(jnl::RemapRejected{7, 0xABCD}));
    EXPECT_EQ(rj.deviceId, 7u);

    auto u = std::get<jnl::DeviceUnlocked>(
        roundTrip(jnl::DeviceUnlocked{9}));
    EXPECT_EQ(u.deviceId, 9u);

    auto rm = std::get<jnl::DeviceRemoved>(
        roundTrip(jnl::DeviceRemoved{9}));
    EXPECT_EQ(rm.deviceId, 9u);

    proto::ByteWriter w;
    srv::encodeDeviceRecord(w, sampleRecord(3, 30));
    std::size_t record_bytes = w.bytes().size();
    auto en = std::get<jnl::Enrolled>(
        roundTrip(jnl::Enrolled{w.take()}));
    EXPECT_EQ(en.record.size(), record_bytes);

    auto cc = std::get<jnl::CounterCheckpoint>(
        roundTrip(jnl::CounterCheckpoint{7, 10, 4, 2}));
    EXPECT_EQ(cc.accepted, 10u);
    EXPECT_EQ(cc.consecutiveFails, 2u);

    auto tu = std::get<jnl::TrustUpdate>(
        roundTrip(jnl::TrustUpdate{7, 55, 2, true}));
    EXPECT_EQ(tu.trust, 55u);
    EXPECT_EQ(tu.remapBudgetUsed, 2u);
    EXPECT_TRUE(tu.reenrollRequired);

    auto rv = std::get<jnl::DeviceRevoked>(
        roundTrip(jnl::DeviceRevoked{9}));
    EXPECT_EQ(rv.deviceId, 9u);
}

TEST(JournalEvents, DecodeRejectsBadType)
{
    proto::ByteWriter w;
    w.putU8(200); // No such event type.
    proto::ByteReader r(w.bytes());
    EXPECT_THROW(jnl::decodeEvent(r), proto::DecodeError);
}

TEST(JournalEvents, ApplyRebuildsState)
{
    srv::EnrollmentDatabase db;

    // Enrollment via the journal inserts the record.
    proto::ByteWriter w;
    srv::encodeDeviceRecord(w, sampleRecord(1, 10));
    jnl::applyEvent(db, jnl::Enrolled{w.take()});
    ASSERT_TRUE(db.contains(1));

    // Retirement consumes both single-level and mixed pairs, and is
    // idempotent (replay after a partial flush re-delivers events).
    jnl::PairsRetired retired{1, {{700, 700, 3, 99}, {700, 690, 5, 7}}};
    jnl::applyEvent(db, retired);
    jnl::applyEvent(db, retired);
    EXPECT_FALSE(db.at(1).pairAvailable(700, 99, 3));
    EXPECT_EQ(db.at(1).consumedCount(700), 1u);
    EXPECT_EQ(db.at(1).consumedMixedCount(), 1u);

    jnl::applyEvent(db, jnl::AuthOutcome{1, true, false});
    jnl::applyEvent(db, jnl::AuthOutcome{1, false, true});
    EXPECT_EQ(db.at(1).accepted(), 1u);
    EXPECT_EQ(db.at(1).rejected(), 1u);
    EXPECT_TRUE(db.at(1).locked());

    jnl::applyEvent(db, jnl::DeviceUnlocked{1});
    EXPECT_FALSE(db.at(1).locked());

    auto key = sampleKey("switched");
    jnl::applyEvent(db, jnl::RemapCommitted{1, 5, key});
    EXPECT_EQ(db.at(1).mapKey(), key);

    jnl::applyEvent(db, jnl::CounterCheckpoint{1, 20, 6, 3});
    EXPECT_EQ(db.at(1).accepted(), 20u);
    EXPECT_EQ(db.at(1).rejected(), 6u);
    EXPECT_EQ(db.at(1).consecutiveFailures(), 3u);

    jnl::applyEvent(db, jnl::DeviceRemoved{1});
    EXPECT_FALSE(db.contains(1));
}

TEST(JournalEvents, ApplyRejectsUnknownDevice)
{
    srv::EnrollmentDatabase db;
    EXPECT_THROW(jnl::applyEvent(db, jnl::AuthOutcome{5, true, false}),
                 proto::DecodeError);
    EXPECT_THROW(
        jnl::applyEvent(db, jnl::Enrolled{{1, 2, 3}}),
        proto::DecodeError);
}

TEST(Journal, AppendReplayRoundTrip)
{
    TempDir dir("auth_journal_rt");
    std::string path = dir.str() + "/journal-0.acjl";
    auto log = jnl::Journal::create(path, 0);
    log.append(1, jnl::DeviceUnlocked{11});
    log.append(2, jnl::AuthOutcome{11, true, false});
    log.append(3, jnl::RemapPrepared{11, 77});
    EXPECT_TRUE(log.sync());
    EXPECT_FALSE(log.sync()); // Clean: no second fsync.
    log.close();

    std::vector<std::uint64_t> seqs;
    auto rr = jnl::Journal::replay(
        path, 0, [&](std::uint64_t seq, const jnl::Event &) {
            seqs.push_back(seq);
        });
    EXPECT_TRUE(rr.headerValid);
    EXPECT_EQ(rr.generation, 0u);
    EXPECT_EQ(rr.records, 3u);
    EXPECT_EQ(rr.lastSeq, 3u);
    EXPECT_FALSE(rr.tornTail);
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));

    // The watermark filter skips already-snapshotted records.
    seqs.clear();
    rr = jnl::Journal::replay(
        path, 2, [&](std::uint64_t seq, const jnl::Event &) {
            seqs.push_back(seq);
        });
    EXPECT_EQ(rr.records, 1u);
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{3}));
}

TEST(Journal, TornTailDetectedAtEveryTruncation)
{
    TempDir dir("auth_journal_torn");
    std::string path = dir.str() + "/journal-0.acjl";
    auto log = jnl::Journal::create(path, 0);
    log.append(1, jnl::DeviceUnlocked{1});
    log.append(2, jnl::DeviceUnlocked{2});
    log.sync();
    std::uint64_t full = log.bytesWritten();
    log.close();
    auto bytes = readFile(path);
    ASSERT_EQ(bytes.size(), full);

    // Find where record 2 starts by replaying record 1 only.
    auto one = jnl::Journal::replay(
        path, 0, [&](std::uint64_t, const jnl::Event &) {});
    std::uint64_t header = 14; // magic + version + generation.
    std::uint64_t rec1_end = header + (one.validBytes - header) / 2;

    for (std::size_t cut = header; cut < bytes.size(); ++cut) {
        auto torn = bytes;
        torn.resize(cut);
        writeFile(path, torn);
        std::uint64_t delivered = 0;
        auto rr = jnl::Journal::replay(
            path, 0,
            [&](std::uint64_t, const jnl::Event &) { ++delivered; });
        EXPECT_TRUE(rr.headerValid);
        if (cut == header) {
            // Header-only is a clean, freshly created journal.
            EXPECT_FALSE(rr.tornTail);
            EXPECT_EQ(delivered, 0u);
        } else if (cut < rec1_end) {
            EXPECT_TRUE(rr.tornTail) << "cut " << cut;
            EXPECT_EQ(delivered, 0u);
            EXPECT_EQ(rr.validBytes, header);
        } else if (cut == rec1_end) {
            // Truncation on a record boundary is a clean journal.
            EXPECT_FALSE(rr.tornTail) << "cut " << cut;
            EXPECT_EQ(delivered, 1u);
        } else {
            EXPECT_TRUE(rr.tornTail) << "cut " << cut;
            EXPECT_EQ(delivered, 1u);
            EXPECT_EQ(rr.validBytes, rec1_end);
        }
    }
}

TEST(Journal, CorruptRecordStopsReplay)
{
    TempDir dir("auth_journal_crc");
    std::string path = dir.str() + "/journal-0.acjl";
    auto log = jnl::Journal::create(path, 3);
    log.append(1, jnl::DeviceUnlocked{1});
    log.append(2, jnl::DeviceUnlocked{2});
    log.sync();
    log.close();

    auto bytes = readFile(path);
    bytes.back() ^= 0xFF; // Corrupt record 2's payload.
    writeFile(path, bytes);
    std::uint64_t delivered = 0;
    auto rr = jnl::Journal::replay(
        path, 0, [&](std::uint64_t, const jnl::Event &) { ++delivered; });
    EXPECT_TRUE(rr.headerValid);
    EXPECT_EQ(rr.generation, 3u);
    EXPECT_EQ(delivered, 1u);
    EXPECT_TRUE(rr.tornTail);
}

TEST(Journal, BadHeaderRejected)
{
    TempDir dir("auth_journal_hdr");
    std::string path = dir.str() + "/journal-0.acjl";
    writeFile(path, {1, 2, 3, 4, 5});
    auto rr = jnl::Journal::replay(
        path, 0, [&](std::uint64_t, const jnl::Event &) {
            FAIL() << "no record should decode";
        });
    EXPECT_FALSE(rr.headerValid);
}

TEST(Journal, CreateCrashLeavesNoUsableFile)
{
    TempDir dir("auth_journal_create");
    std::string path = dir.str() + "/journal-0.acjl";
    srv::CrashInjector inj;
    inj.disarm();
    { auto log = jnl::Journal::create(path, 0, &inj); }
    std::uint64_t total = inj.opportunities();
    ASSERT_GT(total, 1u);
    for (std::uint64_t t = 0; t < total; ++t) {
        fs::remove(path);
        inj.arm(t);
        EXPECT_THROW(jnl::Journal::create(path, 0, &inj),
                     srv::CrashException)
            << "opportunity " << t;
        // Whatever survived must parse as empty-or-invalid, never as
        // a journal with phantom records.
        if (fs::exists(path)) {
            auto rr = jnl::Journal::replay(
                path, 0, [&](std::uint64_t, const jnl::Event &) {
                    FAIL() << "phantom record";
                });
            EXPECT_EQ(rr.records, 0u);
        }
    }
}

TEST(Durability, FreshStartThenRecover)
{
    TempDir dir("auth_dur_fresh");
    srv::DurabilityConfig cfg{dir.str(), 0};

    auto rec = srv::DurabilityManager::recover(cfg);
    EXPECT_TRUE(rec.freshStart);
    EXPECT_EQ(rec.outcome(), srv::RecoveryOutcome::FreshStart);

    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));
    {
        srv::DurabilityManager mgr(cfg, db, rec.lastSeq);
        EXPECT_EQ(mgr.generation(), 0u);
        mgr.append(jnl::AuthOutcome{1, true, false});
        mgr.append(jnl::AuthOutcome{1, false, false});
        mgr.sync();
    }
    db.at(1).recordAccept();
    db.at(1).recordReject();

    auto rec2 = srv::DurabilityManager::recover(cfg);
    EXPECT_EQ(rec2.outcome(),
              srv::RecoveryOutcome::SnapshotPlusJournal);
    EXPECT_EQ(rec2.replayedRecords, 2u);
    EXPECT_EQ(rec2.lastSeq, 2u);
    EXPECT_EQ(srv::saveDatabase(rec2.db), srv::saveDatabase(db));
}

TEST(Durability, RotationRetainsTwoGenerations)
{
    TempDir dir("auth_dur_rotate");
    srv::DurabilityConfig cfg{dir.str(), 0};
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));

    srv::DurabilityManager mgr(cfg, db, 0);
    for (int round = 0; round < 4; ++round) {
        mgr.append(jnl::AuthOutcome{1, true, false});
        db.at(1).recordAccept();
        mgr.rotate(db);
    }
    EXPECT_EQ(mgr.generation(), 4u);
    EXPECT_EQ(mgr.stats().rotations, 5u); // Startup + four manual.

    // Only generations 3 and 4 remain on disk.
    for (std::uint64_t g = 0; g < 3; ++g) {
        EXPECT_FALSE(fs::exists(
            srv::DurabilityManager::snapshotPath(dir.str(), g)));
        EXPECT_FALSE(fs::exists(
            srv::DurabilityManager::journalPath(dir.str(), g)));
    }
    EXPECT_TRUE(fs::exists(
        srv::DurabilityManager::snapshotPath(dir.str(), 3)));
    EXPECT_TRUE(fs::exists(
        srv::DurabilityManager::snapshotPath(dir.str(), 4)));

    auto rec = srv::DurabilityManager::recover(cfg);
    EXPECT_EQ(rec.generation, 4u);
    EXPECT_EQ(rec.lastSeq, 4u);
    EXPECT_EQ(srv::saveDatabase(rec.db), srv::saveDatabase(db));
}

TEST(Durability, AutomaticRotationBudget)
{
    TempDir dir("auth_dur_budget");
    srv::DurabilityConfig cfg{dir.str(), 3};
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));

    srv::DurabilityManager mgr(cfg, db, 0);
    for (int k = 0; k < 2; ++k)
        mgr.append(jnl::AuthOutcome{1, true, false});
    mgr.maybeRotate(db);
    EXPECT_EQ(mgr.generation(), 0u); // Budget of 3 not yet spent.
    mgr.append(jnl::AuthOutcome{1, true, false});
    mgr.maybeRotate(db);
    EXPECT_EQ(mgr.generation(), 1u);
}

TEST(Durability, FallbackToPreviousSnapshot)
{
    TempDir dir("auth_dur_fallback");
    srv::DurabilityConfig cfg{dir.str(), 0};
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));

    {
        srv::DurabilityManager mgr(cfg, db, 0);
        mgr.append(jnl::AuthOutcome{1, true, false});
        db.at(1).recordAccept();
        mgr.rotate(db); // Generation 1 snapshot embeds the outcome.
        mgr.append(jnl::AuthOutcome{1, false, false});
        db.at(1).recordReject();
        mgr.sync();
    }

    // Corrupt the newest snapshot: recovery must fall back to
    // generation 0 and reach the same final state by replaying the
    // retained journal chain (journal 0 then journal 1).
    auto snap = srv::DurabilityManager::snapshotPath(dir.str(), 1);
    auto bytes = readFile(snap);
    bytes[bytes.size() / 2] ^= 0x5A;
    writeFile(snap, bytes);

    auto rec = srv::DurabilityManager::recover(cfg);
    EXPECT_EQ(rec.outcome(), srv::RecoveryOutcome::FallbackSnapshot);
    EXPECT_EQ(rec.snapshotFallbacks, 1u);
    EXPECT_EQ(rec.generation, 0u);
    EXPECT_EQ(rec.lastSeq, 2u);
    EXPECT_EQ(srv::saveDatabase(rec.db), srv::saveDatabase(db));
}

TEST(Durability, JournalsWithoutSnapshotRejected)
{
    TempDir dir("auth_dur_nosnap");
    srv::DurabilityConfig cfg{dir.str(), 0};
    auto log = jnl::Journal::create(
        srv::DurabilityManager::journalPath(dir.str(), 0), 0);
    log.append(1, jnl::DeviceUnlocked{1});
    log.sync();
    log.close();
    EXPECT_THROW(srv::DurabilityManager::recover(cfg),
                 proto::DecodeError);
}

TEST(Durability, TornTailTruncatedOnRecovery)
{
    TempDir dir("auth_dur_torn");
    srv::DurabilityConfig cfg{dir.str(), 0};
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));

    {
        srv::DurabilityManager mgr(cfg, db, 0);
        mgr.append(jnl::AuthOutcome{1, true, false});
        mgr.append(jnl::AuthOutcome{1, true, false});
        mgr.sync();
    }
    auto jpath = srv::DurabilityManager::journalPath(dir.str(), 0);
    auto bytes = readFile(jpath);
    bytes.resize(bytes.size() - 3); // Tear the final record.
    writeFile(jpath, bytes);

    auto rec = srv::DurabilityManager::recover(cfg);
    EXPECT_TRUE(rec.tornTailTruncated);
    EXPECT_EQ(rec.replayedRecords, 1u);
    EXPECT_EQ(rec.lastSeq, 1u);
    // The torn bytes are gone: a second recovery is clean.
    auto rec2 = srv::DurabilityManager::recover(cfg);
    EXPECT_FALSE(rec2.tornTailTruncated);
    EXPECT_EQ(rec2.replayedRecords, 1u);
    EXPECT_LT(readFile(jpath).size(), bytes.size());
}

TEST(Durability, RemapOutcomesCollected)
{
    TempDir dir("auth_dur_remap");
    srv::DurabilityConfig cfg{dir.str(), 0};
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));

    {
        srv::DurabilityManager mgr(cfg, db, 0);
        mgr.append(jnl::RemapPrepared{1, 100});
        mgr.append(jnl::RemapCommitted{1, 100, sampleKey("new")});
        mgr.append(jnl::RemapPrepared{1, 101});
        mgr.append(jnl::RemapRejected{1, 101});
        mgr.sync();
    }
    auto rec = srv::DurabilityManager::recover(cfg);
    ASSERT_EQ(rec.remapOutcomes.size(), 2u);
    EXPECT_EQ(rec.remapOutcomes[0],
              (std::pair<std::uint64_t, bool>{100, true}));
    EXPECT_EQ(rec.remapOutcomes[1],
              (std::pair<std::uint64_t, bool>{101, false}));
    EXPECT_EQ(rec.db.at(1).mapKey(), sampleKey("new"));
}

TEST(Durability, StatsPublished)
{
    TempDir dir("auth_dur_stats");
    srv::DurabilityConfig cfg{dir.str(), 0};
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));

    srv::DurabilityManager mgr(cfg, db, 0);
    mgr.append(jnl::AuthOutcome{1, true, false});
    mgr.sync();
    mgr.sync(); // Clean: must not double-count.

    authenticache::util::StatsRegistry reg;
    mgr.collectStats(reg, "server");
    EXPECT_EQ(reg.getInt("server.durability", "journal_appends"), 1u);
    EXPECT_EQ(reg.getInt("server.durability", "fsyncs"), 1u);
    EXPECT_EQ(reg.getInt("server.durability", "snapshot_rotations"),
              1u);
    EXPECT_EQ(reg.getInt("server.durability", "generation"), 0u);
    EXPECT_EQ(reg.getInt("server.durability", "last_sequence"), 1u);
}
