/**
 * @file
 * Substrate selection for substrate-agnostic test suites.
 *
 * Suites that exercise the full firmware/protocol/server stack
 * without depending on any one device model build their device
 * through makeTestSubstrate(), which honors the AUTHENTICACHE_PLATFORM
 * environment variable ("sram_vmin" by default, "dram_mra" in the
 * second CI leg). Both substrates occupy the same stress-level band,
 * so suite constants (challenge levels, floors) work unchanged.
 */

#ifndef AUTH_TESTS_SUBSTRATE_TEST_UTIL_HPP
#define AUTH_TESTS_SUBSTRATE_TEST_UTIL_HPP

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "substrate/config.hpp"
#include "substrate/registry.hpp"

namespace authenticache::testutil {

/** Substrate under test: $AUTHENTICACHE_PLATFORM or "sram_vmin". */
inline std::string
platformName()
{
    const char *env = std::getenv("AUTHENTICACHE_PLATFORM");
    return (env != nullptr && *env != '\0') ? env : "sram_vmin";
}

/** Platform selection for the suite with the given cache size. */
inline substrate::PlatformConfig
platformConfig(std::uint64_t cache_bytes = 256 * 1024)
{
    substrate::PlatformConfig cfg;
    cfg.substrate = platformName();
    cfg.cacheBytes = cache_bytes;
    return cfg;
}

/** Manufacture the suite's device with the given die seed. */
inline std::unique_ptr<substrate::FingerprintSubstrate>
makeTestSubstrate(std::uint64_t seed,
                  std::uint64_t cache_bytes = 256 * 1024)
{
    return substrate::makeSubstrate(platformConfig(cache_bytes), seed);
}

} // namespace authenticache::testutil

#endif // AUTH_TESTS_SUBSTRATE_TEST_UTIL_HPP
