/**
 * @file
 * Corruption fuzzing for the durability layer (distinct from the
 * crash sweep: these inputs are *damaged*, not merely torn). Every
 * byte-offset truncation of the newest snapshot must fall back to the
 * previous generation and re-reach the full state; every truncation
 * of the newest journal must recover a clean event-stream prefix; and
 * seeded random bit flips anywhere in the directory must produce a
 * successful recovery or a clean DecodeError/runtime_error -- never a
 * crash, hang, or out-of-bounds access (the CI runs this suite under
 * ASan/UBSan). AUTHENTICACHE_QUICK=1 strides the offset sweeps.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mc/mapgen.hpp"
#include "server/durability.hpp"
#include "server/storage.hpp"

namespace srv = authenticache::server;
namespace jnl = authenticache::server::journal;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace proto = authenticache::protocol;
namespace crypto = authenticache::crypto;
namespace fs = std::filesystem;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(64 * 1024);

bool
quickMode()
{
    const char *v = std::getenv("AUTHENTICACHE_QUICK");
    return v != nullptr && *v != '\0' && *v != '0';
}

struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
    fs::path path;
};

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

void
copyDir(const fs::path &from, const fs::path &to)
{
    fs::remove_all(to);
    fs::create_directories(to);
    for (const auto &entry : fs::directory_iterator(from))
        fs::copy_file(entry.path(), to / entry.path().filename());
}

srv::DeviceRecord
makeRecord(std::uint64_t id)
{
    Rng rng(0xF0221);
    core::ErrorMap map =
        authenticache::mc::randomErrorMap(kGeom, 700, 12, rng);
    srv::DeviceRecord record(id, std::move(map), {700}, {});
    record.setMapKey(crypto::Key256::fromDigest(
        crypto::Sha256::hash("fuzz-" + std::to_string(id))));
    return record;
}

/**
 * The shared fixture state: two generations on disk.
 *
 *   snapshot-0 (empty watermark) + journal-0 (10 outcome events)
 *   snapshot-1 (watermark 10)    + journal-1 (3 outcome events)
 *
 * prefixState(n) is the canonical bytes of the database after the
 * first n events -- what recovery must produce for lastSeq == n.
 */
struct Fixture
{
    TempDir dir{"auth_fuzz_template"};
    std::vector<jnl::Event> events;
    srv::EnrollmentDatabase base;

    Fixture()
    {
        base.enroll(makeRecord(7));
        srv::EnrollmentDatabase live;
        live.enroll(makeRecord(7));

        srv::DurabilityConfig cfg{dir.str(), 0};
        srv::DurabilityManager mgr(cfg, live, 0);
        auto push = [&](bool accepted) {
            jnl::Event e = jnl::AuthOutcome{7, accepted, false};
            mgr.append(e);
            jnl::applyEvent(live, e);
            events.push_back(e);
        };
        for (int k = 0; k < 10; ++k)
            push(k % 3 != 0);
        mgr.sync();
        mgr.rotate(live);
        for (int k = 0; k < 3; ++k)
            push(k == 1);
        mgr.sync();
    }

    std::vector<std::uint8_t>
    prefixState(std::uint64_t n) const
    {
        srv::EnrollmentDatabase db;
        db.enroll(makeRecord(7));
        for (std::uint64_t i = 0; i < n && i < events.size(); ++i)
            jnl::applyEvent(db, events[i]);
        return srv::saveDatabase(db);
    }
};

Fixture &
fixture()
{
    static Fixture fx;
    return fx;
}

} // namespace

TEST(DurabilityFuzz, TruncatedNewestSnapshotFallsBack)
{
    Fixture &fx = fixture();
    TempDir work("auth_fuzz_snap");
    srv::DurabilityConfig cfg{work.str(), 0};
    auto snap = srv::DurabilityManager::snapshotPath(work.str(), 1);

    copyDir(fx.dir.path, work.path);
    auto full = readFile(snap);
    const auto want = fx.prefixState(13);
    const std::size_t stride = quickMode() ? 9 : 1;

    for (std::size_t cut = 0; cut < full.size(); cut += stride) {
        copyDir(fx.dir.path, work.path);
        auto torn = full;
        torn.resize(cut);
        writeFile(snap, torn);

        // The damaged newest snapshot is skipped; generation 0 plus
        // the retained journal chain re-reaches the identical state.
        auto rec = srv::DurabilityManager::recover(cfg);
        EXPECT_EQ(rec.snapshotFallbacks, 1u) << "cut " << cut;
        EXPECT_EQ(rec.generation, 0u) << "cut " << cut;
        EXPECT_EQ(rec.lastSeq, 13u) << "cut " << cut;
        EXPECT_EQ(srv::saveDatabase(rec.db), want) << "cut " << cut;
    }
}

TEST(DurabilityFuzz, TruncatedNewestJournalRecoversPrefix)
{
    Fixture &fx = fixture();
    TempDir work("auth_fuzz_jrnl");
    srv::DurabilityConfig cfg{work.str(), 0};
    auto jpath = srv::DurabilityManager::journalPath(work.str(), 1);

    copyDir(fx.dir.path, work.path);
    auto full = readFile(jpath);
    const std::size_t stride = quickMode() ? 5 : 1;

    for (std::size_t cut = 0; cut < full.size(); cut += stride) {
        copyDir(fx.dir.path, work.path);
        auto torn = full;
        torn.resize(cut);
        writeFile(jpath, torn);

        auto rec = srv::DurabilityManager::recover(cfg);
        // Snapshot 1 carries watermark 10; the torn journal yields
        // some durable prefix of the remaining events.
        EXPECT_GE(rec.lastSeq, 10u) << "cut " << cut;
        EXPECT_LE(rec.lastSeq, 13u) << "cut " << cut;
        EXPECT_EQ(srv::saveDatabase(rec.db),
                  fx.prefixState(rec.lastSeq))
            << "cut " << cut;

        // Idempotent after the truncation pass.
        auto again = srv::DurabilityManager::recover(cfg);
        EXPECT_EQ(again.lastSeq, rec.lastSeq) << "cut " << cut;
        EXPECT_FALSE(again.tornTailTruncated) << "cut " << cut;
    }
}

TEST(DurabilityFuzz, SeededBitFlipsNeverCrash)
{
    Fixture &fx = fixture();
    TempDir work("auth_fuzz_flip");
    srv::DurabilityConfig cfg{work.str(), 0};

    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(fx.dir.path))
        names.push_back(entry.path().filename().string());
    ASSERT_EQ(names.size(), 4u);

    Rng rng(0xB17F11B);
    const int trials = quickMode() ? 40 : 200;
    for (int trial = 0; trial < trials; ++trial) {
        copyDir(fx.dir.path, work.path);
        // 1-3 bit flips spread over the directory's files.
        const int flips = 1 + static_cast<int>(rng.nextBelow(3));
        for (int f = 0; f < flips; ++f) {
            const std::string &name =
                names[rng.nextBelow(names.size())];
            auto bytes = readFile(work.str() + "/" + name);
            if (bytes.empty())
                continue;
            std::size_t at = rng.nextBelow(bytes.size());
            bytes[at] ^= static_cast<std::uint8_t>(
                1u << rng.nextBelow(8));
            writeFile(work.str() + "/" + name, bytes);
        }
        // Any outcome is acceptable except a crash or an unexpected
        // exception type: recovery either succeeds (possibly via
        // fallback or truncation) or reports clean corruption.
        try {
            auto rec = srv::DurabilityManager::recover(cfg);
            EXPECT_LE(rec.lastSeq, 13u) << "trial " << trial;
        } catch (const std::runtime_error &) {
            // DecodeError or I/O failure: clean rejection.
        }
    }
}

TEST(DurabilityFuzz, AllSnapshotsCorruptRejected)
{
    Fixture &fx = fixture();
    TempDir work("auth_fuzz_allbad");
    srv::DurabilityConfig cfg{work.str(), 0};
    copyDir(fx.dir.path, work.path);
    for (std::uint64_t g : {0, 1}) {
        auto path =
            srv::DurabilityManager::snapshotPath(work.str(), g);
        auto bytes = readFile(path);
        bytes[bytes.size() / 2] ^= 0x5A;
        writeFile(path, bytes);
    }
    EXPECT_THROW(srv::DurabilityManager::recover(cfg),
                 proto::DecodeError);
}
