/**
 * @file
 * Tests for the deterministic parallel execution layer: index
 * coverage, ordered reduction, exception propagation, seed-split Rng
 * stream independence, and thread-safety of StatsRegistry under
 * concurrent publication (the test the TSan CI job exercises).
 */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats_registry.hpp"
#include "util/thread_pool.hpp"

namespace u = authenticache::util;

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        u::ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ZeroAndOneCountDegenerate)
{
    u::ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReduceFoldsInIndexOrder)
{
    // Subtraction is order-sensitive, so a wrong fold order cannot
    // pass by luck.
    for (unsigned threads : {1u, 3u, 8u}) {
        u::ThreadPool pool(threads);
        double result = pool.parallelReduce(
            100, 1000.0,
            [](std::size_t i) { return static_cast<double>(i); },
            [](double acc, double x) { return acc - x; });
        EXPECT_DOUBLE_EQ(result, 1000.0 - 4950.0);
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    u::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](std::size_t i) {
                                      if (i == 13)
                                          throw std::runtime_error(
                                              "shard failure");
                                  }),
                 std::runtime_error);
    // The pool survives a failed batch.
    std::atomic<int> ok{0};
    pool.parallelFor(8, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    u::ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(round + 1,
                         [&](std::size_t i) { sum += i + 1; });
        std::size_t n = static_cast<std::size_t>(round) + 1;
        EXPECT_EQ(sum.load(), n * (n + 1) / 2);
    }
}

TEST(ThreadPool, RapidConstructDestructShutdownStress)
{
    // Regression for the shutdown handshake audited during the
    // lock-discipline migration: `stopping` and `current` are guarded
    // by the pool mutex and workers wait on the condvar, so tearing a
    // pool down immediately after construction (workers may not have
    // reached their first wait yet) must neither hang nor crash.
    for (int round = 0; round < 50; ++round) {
        u::ThreadPool pool(4);
        if (round % 2 == 0) {
            std::atomic<int> hits{0};
            pool.parallelFor(4, [&](std::size_t) { ++hits; });
            EXPECT_EQ(hits.load(), 4);
        }
        // Destructor runs here, racing worker startup on odd rounds.
    }
}

TEST(ThreadPool, DestructImmediatelyAfterFailedBatch)
{
    // The batch error is guarded by its own errorMutex; destroying the
    // pool right after a throwing batch must not lose the shutdown
    // wakeup or touch the dead batch.
    for (int round = 0; round < 20; ++round) {
        u::ThreadPool pool(3);
        EXPECT_THROW(pool.parallelFor(16,
                                      [](std::size_t i) {
                                          if (i % 2 == 0)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
                     std::runtime_error);
    }
}

TEST(ThreadPool, ErrorRethrowKeepsFirstExceptionOnly)
{
    // Many lanes throw concurrently; exactly one exception must come
    // back (the first recorded under errorMutex), and the pool must
    // stay usable for ordered reduction afterwards.
    u::ThreadPool pool(8);
    for (int round = 0; round < 5; ++round) {
        bool threw = false;
        try {
            pool.parallelFor(256, [](std::size_t) {
                throw std::runtime_error("every lane throws");
            });
        } catch (const std::runtime_error &) {
            threw = true;
        }
        EXPECT_TRUE(threw);
        double result = pool.parallelReduce(
            10, 0.0,
            [](std::size_t i) { return static_cast<double>(i); },
            [](double acc, double x) { return acc + x; });
        EXPECT_DOUBLE_EQ(result, 45.0);
    }
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv)
{
    // Only checks the parser contract when the variable is absent:
    // width must be at least 1.
    EXPECT_GE(u::ThreadPool::defaultThreadCount(), 1u);
}

TEST(RngStreams, ShardResultsIndependentOfThreadCount)
{
    // The engine's determinism contract end-to-end: per-shard Rng
    // streams derived from the shard index give bit-identical outputs
    // on any pool width.
    auto run = [](unsigned threads) {
        u::ThreadPool pool(threads);
        std::vector<std::uint64_t> out(257);
        pool.parallelFor(out.size(), [&](std::size_t i) {
            u::Rng rng = u::Rng::forStream(0xFEED, i);
            std::uint64_t acc = 0;
            for (int k = 0; k < 100; ++k)
                acc ^= rng.next() + rng.nextBelow(1 + i);
            out[i] = acc;
        });
        return out;
    };
    auto base = run(1);
    EXPECT_EQ(run(2), base);
    EXPECT_EQ(run(5), base);
    EXPECT_EQ(run(16), base);
}

TEST(RngStreams, DistinctStreamsDiffer)
{
    u::Rng a = u::Rng::forStream(1, 0);
    u::Rng b = u::Rng::forStream(1, 1);
    u::Rng c = u::Rng::forStream(2, 0);
    std::uint64_t av = a.next(), bv = b.next(), cv = c.next();
    EXPECT_NE(av, bv);
    EXPECT_NE(av, cv);
    EXPECT_NE(bv, cv);
    // Same pair reproduces.
    u::Rng a2 = u::Rng::forStream(1, 0);
    EXPECT_EQ(a2.next(), av);
}

TEST(StatsRegistryConcurrency, ParallelPublishersAndReaders)
{
    // Hammers one registry from every pool lane: adds, overwrites,
    // lookups, snapshots. Run under -fsanitize=thread in CI; the
    // final counter value also checks no increment was lost.
    u::StatsRegistry reg;
    u::ThreadPool pool(8);
    const std::size_t shards = 64;
    const std::uint64_t per_shard = 500;

    pool.parallelFor(shards, [&](std::size_t i) {
        for (std::uint64_t k = 0; k < per_shard; ++k) {
            reg.add("mc", "samples", 1);
            reg.set("shard" + std::to_string(i), "last", k);
            reg.set("mc", "progress",
                    static_cast<double>(k) / per_shard);
            if (k % 64 == 0) {
                (void)reg.getInt("mc", "samples");
                (void)reg.getFloat("mc", "progress");
                (void)reg.size();
            }
        }
    });

    auto total = reg.getInt("mc", "samples");
    ASSERT_TRUE(total.has_value());
    EXPECT_EQ(*total, shards * per_shard);
    for (std::size_t i = 0; i < shards; ++i) {
        auto last = reg.getInt("shard" + std::to_string(i), "last");
        ASSERT_TRUE(last.has_value());
        EXPECT_EQ(*last, per_shard - 1);
    }
}
