/**
 * @file
 * Tests for cache geometry, the variation model, the environment
 * model, the error log, and the voltage regulator.
 */

#include <set>

#include <gtest/gtest.h>

#include "sim/environment.hpp"
#include "sim/error_log.hpp"
#include "sim/geometry.hpp"
#include "sim/variation.hpp"
#include "sim/voltage_regulator.hpp"
#include "util/stats.hpp"

namespace s = authenticache::sim;

TEST(Geometry, FourMegabyteDefault)
{
    s::CacheGeometry g(4ull * 1024 * 1024);
    EXPECT_EQ(g.sets(), 8192u);
    EXPECT_EQ(g.ways(), 8u);
    EXPECT_EQ(g.lines(), 65536u);
    EXPECT_EQ(g.wordsPerLine(), 8u);
}

TEST(Geometry, ItaniumL2Shape)
{
    // The paper's per-core L2s are 768KB.
    s::CacheGeometry g(768 * 1024);
    EXPECT_EQ(g.lines(), 12288u);
    EXPECT_EQ(g.sets(), 1536u);
}

TEST(Geometry, LineIndexRoundTrip)
{
    s::CacheGeometry g(256 * 1024);
    for (std::uint64_t i = 0; i < g.lines(); i += 97) {
        s::LinePoint p = g.pointOf(i);
        EXPECT_EQ(g.lineIndex(p), i);
    }
}

TEST(Geometry, BoundsChecked)
{
    s::CacheGeometry g(64 * 1024);
    EXPECT_THROW(g.lineIndex({g.sets(), 0}), std::out_of_range);
    EXPECT_THROW(g.pointOf(g.lines()), std::out_of_range);
    EXPECT_FALSE(g.contains({0, 8}));
    EXPECT_TRUE(g.contains({0, 7}));
}

TEST(Geometry, RejectsBadShapes)
{
    EXPECT_THROW(s::CacheGeometry(1000, 64, 8), std::invalid_argument);
    EXPECT_THROW(s::CacheGeometry(64 * 1024, 7, 8),
                 std::invalid_argument);
    EXPECT_THROW(s::CacheGeometry(64 * 1024, 64, 0),
                 std::invalid_argument);
}

TEST(Geometry, PossibleCrpsMatchesEq10)
{
    s::CacheGeometry g(4ull * 1024 * 1024);
    // n(n-1)/2 with n = 65536.
    EXPECT_EQ(g.possibleCrps(), 65536ull * 65535 / 2);
}

TEST(Manhattan, MatchesHandValues)
{
    EXPECT_EQ(s::manhattan({0, 0}, {0, 0}), 0u);
    EXPECT_EQ(s::manhattan({3, 2}, {1, 5}), 5u);
    EXPECT_EQ(s::manhattan({1, 5}, {3, 2}), 5u);
    EXPECT_EQ(s::manhattan({100, 0}, {0, 7}), 107u);
}

TEST(Variation, TailCountNearCalibration)
{
    // 4MB cache: expect ~130 lines in the 65 mV window (Fig 1 measures
    // 122); check we're within a sane band across chips.
    s::CacheGeometry g(4ull * 1024 * 1024);
    s::VariationParams params;
    authenticache::util::RunningStats counts;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        s::VminField field(g, params, seed);
        auto weak = field.linesFailingAt(field.vcorrMv() -
                                         params.windowMv);
        counts.add(static_cast<double>(weak.size()));
    }
    EXPECT_GT(counts.mean(), 90.0);
    EXPECT_LT(counts.mean(), 175.0);
}

TEST(Variation, ChipsHaveIndependentMaps)
{
    s::CacheGeometry g(256 * 1024);
    s::VariationParams params;
    s::VminField f1(g, params, 100);
    s::VminField f2(g, params, 200);
    auto w1 = f1.linesFailingAt(f1.vcorrMv() - params.windowMv);
    auto w2 = f2.linesFailingAt(f2.vcorrMv() - params.windowMv);
    ASSERT_FALSE(w1.empty());
    ASSERT_FALSE(w2.empty());

    // Overlap should be near zero (Figure 3).
    std::size_t overlap = 0;
    std::set<std::uint64_t> set1(w1.begin(), w1.end());
    for (auto l : w2)
        overlap += set1.count(l);
    EXPECT_LE(overlap, 1u);
}

TEST(Variation, SameSeedReproduces)
{
    s::CacheGeometry g(64 * 1024);
    s::VariationParams params;
    s::VminField f1(g, params, 77);
    s::VminField f2(g, params, 77);
    for (std::uint64_t i = 0; i < g.lines(); i += 13) {
        EXPECT_EQ(f1.vCorrectableMv(i), f2.vCorrectableMv(i));
        EXPECT_EQ(f1.weakBit(i), f2.weakBit(i));
        EXPECT_EQ(f1.persistence(i), f2.persistence(i));
    }
}

TEST(Variation, UncorrectableBelowCorrectable)
{
    s::CacheGeometry g(64 * 1024);
    s::VariationParams params;
    s::VminField field(g, params, 3);
    for (std::uint64_t i = 0; i < g.lines(); ++i) {
        EXPECT_LT(field.vUncorrectableMv(i), field.vCorrectableMv(i));
        EXPECT_GE(field.vCorrectableMv(i) - field.vUncorrectableMv(i),
                  params.uncorrGapMinMv - 1e-6);
    }
}

TEST(Variation, FloorLeavesUsableWindow)
{
    // The highest uncorrectable threshold must sit well below Vcorr,
    // or there would be no usable challenge window.
    s::CacheGeometry g(4ull * 1024 * 1024);
    s::VariationParams params;
    s::VminField field(g, params, 9);
    double window = field.vcorrMv() - field.maxUncorrectableMv();
    EXPECT_GT(window, 40.0);
}

TEST(Variation, WeakBitsWithinCodeword)
{
    s::CacheGeometry g(64 * 1024);
    s::VminField field(g, s::VariationParams{}, 5);
    for (std::uint64_t i = 0; i < g.lines(); ++i) {
        EXPECT_LT(field.weakBit(i), 72u);
        EXPECT_LT(field.weakBit2(i), 72u);
        EXPECT_NE(field.weakBit(i), field.weakBit2(i));
        EXPECT_LT(field.weakWord(i), g.wordsPerLine());
    }
}

TEST(Environment, NominalConditionsNoShift)
{
    s::EnvironmentModel env(100, s::EnvironmentParams{}, 1);
    s::Conditions nominal = s::Conditions::nominal();
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(env.thresholdShiftMv(i, nominal), 0.0);
}

TEST(Environment, TemperatureRaisesThresholdOnAverage)
{
    s::EnvironmentModel env(2000, s::EnvironmentParams{}, 2);
    s::Conditions hot;
    hot.temperatureDeltaC = 25.0;
    authenticache::util::RunningStats shift;
    for (std::uint64_t i = 0; i < 2000; ++i)
        shift.add(env.thresholdShiftMv(i, hot));
    // 25C * 0.25 mV/C = ~6.25 mV mean.
    EXPECT_NEAR(shift.mean(), 6.25, 0.5);
    EXPECT_GT(shift.stddev(), 1.0);
}

TEST(Environment, AgingAccumulates)
{
    s::EnvironmentModel env(1000, s::EnvironmentParams{}, 3);
    s::Conditions old_age;
    old_age.agingYears = 5.0;
    s::Conditions young;
    young.agingYears = 1.0;
    authenticache::util::RunningStats ratio;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        double o = env.thresholdShiftMv(i, old_age);
        double y = env.thresholdShiftMv(i, young);
        if (std::abs(y) > 1e-9)
            ratio.add(o / y);
    }
    EXPECT_NEAR(ratio.mean(), 5.0, 0.2);
}

TEST(Environment, JitterHasConfiguredSigma)
{
    s::EnvironmentModel env(10, s::EnvironmentParams{}, 4);
    authenticache::util::Rng rng(1);
    s::Conditions c;
    c.measurementSigmaMv = 2.0;
    authenticache::util::RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(env.measurementJitterMv(c, rng));
    EXPECT_NEAR(stats.mean(), 0.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);

    c.measurementSigmaMv = 0.0;
    EXPECT_EQ(env.measurementJitterMv(c, rng), 0.0);
}

TEST(ErrorLog, PostAndDrain)
{
    s::EccErrorLog log(8);
    s::EccEvent e;
    e.line = {3, 1};
    e.severity = s::EccSeverity::Corrected;
    EXPECT_TRUE(log.post(e));
    EXPECT_EQ(log.pending(), 1u);
    auto drained = log.drain();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].line, (s::LinePoint{3, 1}));
    EXPECT_EQ(log.pending(), 0u);
}

TEST(ErrorLog, OverflowDropsButCounts)
{
    s::EccErrorLog log(2);
    s::EccEvent e;
    EXPECT_TRUE(log.post(e));
    EXPECT_TRUE(log.post(e));
    EXPECT_FALSE(log.post(e));
    EXPECT_EQ(log.pending(), 2u);
    EXPECT_EQ(log.overflowCount(), 1u);
    EXPECT_EQ(log.totalCorrected(), 3u); // Lifetime counter still ticks.
}

TEST(ErrorLog, SeverityCounters)
{
    s::EccErrorLog log;
    s::EccEvent c;
    c.severity = s::EccSeverity::Corrected;
    s::EccEvent u;
    u.severity = s::EccSeverity::Uncorrectable;
    log.post(c);
    log.post(c);
    log.post(u);
    EXPECT_EQ(log.totalCorrected(), 2u);
    EXPECT_EQ(log.totalUncorrectable(), 1u);
    log.clear();
    EXPECT_EQ(log.totalCorrected(), 0u);
    EXPECT_EQ(log.pending(), 0u);
}

TEST(Regulator, StartsAtNominal)
{
    s::VoltageRegulator vr;
    EXPECT_EQ(vr.vddMv(), 800.0);
}

TEST(Regulator, RequestSetsAndCharges)
{
    s::VoltageRegulator vr;
    double latency = 0.0;
    EXPECT_EQ(vr.request(700.0, &latency), s::VoltageStatus::Ok);
    EXPECT_EQ(vr.vddMv(), 700.0);
    // base 200us + 12us/mV * 100mV.
    EXPECT_NEAR(latency, 200.0 + 1200.0, 1e-9);
    EXPECT_EQ(vr.transitions(), 1u);
}

TEST(Regulator, NoOpRequestIsFree)
{
    s::VoltageRegulator vr;
    double latency = 99.0;
    EXPECT_EQ(vr.request(800.0, &latency), s::VoltageStatus::Ok);
    EXPECT_EQ(latency, 0.0);
    EXPECT_EQ(vr.transitions(), 0u);
}

TEST(Regulator, FloorEnforced)
{
    s::VoltageRegulator vr;
    vr.setFloorMv(650.0);
    EXPECT_EQ(vr.request(640.0), s::VoltageStatus::BelowFloor);
    EXPECT_EQ(vr.vddMv(), 800.0);
    EXPECT_EQ(vr.request(650.0), s::VoltageStatus::Ok);
}

TEST(Regulator, HardwareRangeEnforced)
{
    s::VoltageRegulator vr;
    EXPECT_EQ(vr.request(900.0), s::VoltageStatus::OutOfRange);
    EXPECT_EQ(vr.request(400.0), s::VoltageStatus::OutOfRange);
}

TEST(Regulator, EmergencyRaiseIgnoresFloor)
{
    s::VoltageRegulator vr;
    vr.setFloorMv(600.0);
    ASSERT_EQ(vr.request(620.0), s::VoltageStatus::Ok);
    double latency = vr.emergencyRaise();
    EXPECT_EQ(vr.vddMv(), 800.0);
    EXPECT_GT(latency, 0.0);
}

TEST(Regulator, QuantizesToStep)
{
    s::RegulatorParams params;
    params.stepMv = 5.0;
    s::VoltageRegulator vr(params);
    ASSERT_EQ(vr.request(702.0), s::VoltageStatus::Ok);
    EXPECT_EQ(vr.vddMv(), 700.0);
}
