/**
 * @file
 * Runtime SIMD dispatch: detection sanity, the AUTHENTICACHE_SIMD
 * override resolution (including clamping and unrecognized values),
 * and the process-wide cached level.
 *
 * The cached simdLevel() reads the environment once, so the override
 * paths are driven through detail::resolveSimdLevel directly -- the
 * same function the cache calls -- rather than by re-execing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/simd.hpp"

namespace util = authenticache::util;
using util::SimdLevel;

TEST(SimdDispatch, NamesRoundTrip)
{
    EXPECT_STREQ(util::simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(util::simdLevelName(SimdLevel::Sse2), "sse2");
    EXPECT_STREQ(util::simdLevelName(SimdLevel::Avx2), "avx2");
}

TEST(SimdDispatch, SupportedLevelsAreNarrowestFirstAndNonEmpty)
{
    auto levels = util::supportedSimdLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), SimdLevel::Scalar);
    EXPECT_TRUE(std::is_sorted(levels.begin(), levels.end()));
    EXPECT_EQ(levels.back(), util::detectedSimdLevel());
}

TEST(SimdDispatch, CachedLevelIsSupported)
{
    auto levels = util::supportedSimdLevels();
    EXPECT_NE(std::find(levels.begin(), levels.end(),
                        util::simdLevel()),
              levels.end());
}

TEST(SimdDispatch, ResolveKeepsDetectedWithoutOverride)
{
    bool clamped = true, unrecognized = true;
    EXPECT_EQ(util::detail::resolveSimdLevel(nullptr, SimdLevel::Avx2,
                                             &clamped, &unrecognized),
              SimdLevel::Avx2);
    EXPECT_FALSE(clamped);
    EXPECT_FALSE(unrecognized);

    EXPECT_EQ(util::detail::resolveSimdLevel("", SimdLevel::Sse2,
                                             &clamped, &unrecognized),
              SimdLevel::Sse2);
    EXPECT_FALSE(clamped);
    EXPECT_FALSE(unrecognized);
}

TEST(SimdDispatch, ResolveHonorsEachRecognizedName)
{
    bool clamped = false, unrecognized = false;
    EXPECT_EQ(util::detail::resolveSimdLevel("scalar", SimdLevel::Avx2,
                                             &clamped, &unrecognized),
              SimdLevel::Scalar);
    EXPECT_FALSE(clamped);
    EXPECT_FALSE(unrecognized);

    EXPECT_EQ(util::detail::resolveSimdLevel("sse2", SimdLevel::Avx2,
                                             &clamped, &unrecognized),
              SimdLevel::Sse2);
    EXPECT_FALSE(clamped);

    EXPECT_EQ(util::detail::resolveSimdLevel("avx2", SimdLevel::Avx2,
                                             &clamped, &unrecognized),
              SimdLevel::Avx2);
    EXPECT_FALSE(clamped);
}

TEST(SimdDispatch, ResolveClampsRequestsAboveTheCpu)
{
    bool clamped = false, unrecognized = false;
    EXPECT_EQ(util::detail::resolveSimdLevel("avx2", SimdLevel::Sse2,
                                             &clamped, &unrecognized),
              SimdLevel::Sse2);
    EXPECT_TRUE(clamped);
    EXPECT_FALSE(unrecognized);

    clamped = false;
    EXPECT_EQ(util::detail::resolveSimdLevel("avx2",
                                             SimdLevel::Scalar,
                                             &clamped, &unrecognized),
              SimdLevel::Scalar);
    EXPECT_TRUE(clamped);
}

TEST(SimdDispatch, ResolveFlagsUnrecognizedNames)
{
    bool clamped = false, unrecognized = false;
    // Unknown names keep the detected level and set the flag (the
    // cached resolver warns once on stderr).
    EXPECT_EQ(util::detail::resolveSimdLevel("AVX2", SimdLevel::Avx2,
                                             &clamped, &unrecognized),
              SimdLevel::Avx2);
    EXPECT_TRUE(unrecognized);
    EXPECT_FALSE(clamped);

    unrecognized = false;
    EXPECT_EQ(util::detail::resolveSimdLevel("avx512",
                                             SimdLevel::Sse2,
                                             &clamped, &unrecognized),
              SimdLevel::Sse2);
    EXPECT_TRUE(unrecognized);
}

TEST(SimdDispatch, EnvironmentOverrideMatchesResolver)
{
    // When the suite is launched with AUTHENTICACHE_SIMD set (the CI
    // width matrix does exactly that), the cached level must equal
    // what the pure resolver says for that string; without the
    // variable it must equal the detected level.
    const char *env = std::getenv("AUTHENTICACHE_SIMD");
    bool clamped = false, unrecognized = false;
    SimdLevel expected = util::detail::resolveSimdLevel(
        env, util::detectedSimdLevel(), &clamped, &unrecognized);
    EXPECT_EQ(util::simdLevel(), expected);
}
