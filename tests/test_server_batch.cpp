/**
 * @file
 * Concurrent-vs-sequential equivalence for the batch front end.
 *
 * The server's contract is that handleBatch produces bit-identical
 * outcomes at any thread count, and that a one-frame batch (the
 * pumpOnce path every existing test uses) is the same machine. Two
 * suites enforce it:
 *
 *  - a 64-device mixed flood (honest auths, corrupted responses,
 *    duplicate requests/responses/acks, garbage frames, unknown
 *    devices and nonces, remap exchanges with tampered confirmations,
 *    lockouts) whose complete observable state -- per-device record
 *    state, server counters, the report log, and every reply byte --
 *    must be identical whether driven per-message, through
 *    handleBatch on one thread, or through handleBatch on eight;
 *
 *  - the canonical single-fault sweep of test_fault_sweep, re-driven
 *    through the batch front end and compared outcome-for-outcome
 *    against the per-message run.
 *
 * Smaller suites cover the per-shard stats surface and the
 * per-component log-level overrides.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/remap.hpp"
#include "crypto/fuzzy_extractor.hpp"
#include "mc/mapgen.hpp"
#include "server/server.hpp"
#include "substrate_test_util.hpp"
#include "util/logging.hpp"

namespace fw = authenticache::firmware;
namespace core = authenticache::core;
namespace mc = authenticache::mc;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
namespace crypto = authenticache::crypto;
namespace util = authenticache::util;

namespace {

// ---------------------------------------------------------------- //
// Mixed-flood scenario                                             //
// ---------------------------------------------------------------- //

constexpr std::size_t kDevices = 64;
constexpr std::uint64_t kFirstId = 101;
constexpr core::VddMv kLevel = 700.0;
constexpr core::VddMv kReservedLvl = 705.0;
constexpr std::uint64_t kServerSeed = 0xBA7C4;
constexpr std::size_t kMapErrors = 40;

// Behaviour classes, by device id. A device can fall into several;
// precedence is resolved where the frames are built.
bool wantsRemap(std::uint64_t id) { return id % 4 == 0; }
bool liesOnResponse(std::uint64_t id) { return id % 7 == 3; }
bool skipsResponse(std::uint64_t id) { return id % 11 == 5; }
bool duplicatesRequest(std::uint64_t id) { return id % 9 == 4; }
bool duplicatesResponse(std::uint64_t id) { return id % 13 == 2; }
bool tampersAck(std::uint64_t id) { return id % 8 == 0; }
bool duplicatesAck(std::uint64_t id) { return id % 12 == 4; }

/** One server-bound frame, addressed by channel slot. */
struct TestFrame
{
    std::size_t slot;
    std::vector<std::uint8_t> bytes;
};

/**
 * The flood fixture: one server, one channel+endpoint per device so
 * reply transcripts stay separated, plus a stray slot for frames that
 * belong to no enrolled device.
 */
struct Harness
{
    srv::ServerConfig cfg;
    srv::AuthenticationServer server;
    std::vector<std::uint64_t> ids;
    std::vector<std::unique_ptr<proto::InMemoryChannel>> chans;
    std::vector<std::unique_ptr<proto::ServerEndpoint>> ends;
    std::vector<std::string> transcript;
    std::vector<std::optional<proto::ChallengeMsg>> lastChallenge;
    std::vector<std::optional<proto::RemapRequest>> lastRemap;
    std::size_t stray = 0;

    Harness(const srv::ServerConfig &config, std::size_t n_devices)
        : cfg(config), server(cfg, kServerSeed)
    {
        core::CacheGeometry geom(64 * 1024);
        for (std::size_t i = 0; i < n_devices; ++i) {
            std::uint64_t id = kFirstId + i;
            // Per-device map stream: the fixture is reproducible
            // regardless of enrollment order or device count.
            util::Rng mr = util::Rng::forStream(0xD1CE, id);
            core::ErrorMap map =
                mc::randomErrorMap(geom, kLevel, kMapErrors, mr);
            std::vector<core::VddMv> reserved;
            if (wantsRemap(id)) {
                auto &plane = map.plane(kReservedLvl);
                while (plane.errorCount() < kMapErrors)
                    plane.add(geom.pointOf(mr.nextBelow(geom.lines())));
                reserved.push_back(kReservedLvl);
            }
            server.database().enroll(srv::DeviceRecord(
                id, std::move(map), {kLevel}, std::move(reserved)));
            ids.push_back(id);
        }
        stray = ids.size();
        for (std::size_t s = 0; s <= ids.size(); ++s) {
            chans.push_back(std::make_unique<proto::InMemoryChannel>());
            ends.push_back(
                std::make_unique<proto::ServerEndpoint>(*chans[s]));
        }
        transcript.resize(chans.size());
        lastChallenge.resize(ids.size());
        lastRemap.resize(ids.size());
    }
};

std::string
hex(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (auto b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xF]);
    }
    return out;
}

/** Pull every client-bound reply; record bytes, track challenges. */
void
drainReplies(Harness &h)
{
    for (std::size_t s = 0; s < h.chans.size(); ++s) {
        while (auto frame = h.chans[s]->receiveAtClient()) {
            h.transcript[s] += hex(*frame);
            h.transcript[s] += '\n';
            auto msg = proto::decodeMessage(*frame);
            if (s >= h.ids.size())
                continue;
            if (auto *c = std::get_if<proto::ChallengeMsg>(&msg))
                h.lastChallenge[s] = *c;
            else if (auto *r = std::get_if<proto::RemapRequest>(&msg))
                h.lastRemap[s] = *r;
        }
    }
}

/** The response an honest, noiseless device would return. */
util::BitVec
honestResponse(const srv::DeviceRecord &rec, const core::Challenge &ch)
{
    core::LogicalRemap remap(rec.mapKey(),
                             rec.physicalMap().geometry());
    return core::evaluate(remap.mapErrorMap(rec.physicalMap()), ch);
}

/**
 * The ack an honest device derives from a RemapRequest: reproduce the
 * server's key from the reserved-level response plus the helper data,
 * and prove it with the confirmation MAC.
 */
proto::RemapAck
craftAck(const srv::DeviceRecord &rec, const proto::RemapRequest &rr,
         bool tamper)
{
    core::LogicalRemap identity(crypto::Key256::zero(),
                                rec.physicalMap().geometry());
    auto response =
        core::evaluate(identity.mapErrorMap(rec.physicalMap()),
                       rr.challenge);
    crypto::FuzzyExtractor extractor(rr.repetition);
    auto key = extractor.reproduce(response, rr.helper);

    proto::RemapAck ack;
    ack.nonce = rr.nonce;
    ack.success = true;
    ack.confirmation = crypto::keyConfirmation(key, rr.nonce);
    if (tamper)
        ack.confirmation[0] ^= 0xFF;
    return ack;
}

/** A driver delivers one round of frames to the server. */
using Driver =
    std::function<void(Harness &, const std::vector<TestFrame> &)>;

/** Per-message baseline: the path every pre-batch test exercises. */
void
driveSequential(Harness &h, const std::vector<TestFrame> &frames)
{
    for (const auto &f : frames) {
        h.chans[f.slot]->sendToServer(f.bytes);
        h.server.pumpOnce(*h.ends[f.slot]);
    }
}

/** Batch driver at a fixed pool width. */
Driver
batchDriver(std::shared_ptr<util::ThreadPool> pool)
{
    return [pool](Harness &h, const std::vector<TestFrame> &frames) {
        std::vector<srv::Frame> batch;
        batch.reserve(frames.size());
        for (const auto &f : frames)
            batch.push_back(srv::Frame{f.bytes, h.ends[f.slot].get()});
        h.server.handleBatch(batch, *pool);
    };
}

std::vector<std::uint8_t>
garbageFrame()
{
    return {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
}

srv::ServerConfig
floodConfig(unsigned shards)
{
    srv::ServerConfig cfg;
    cfg.challengeBits = 32;
    cfg.remapSecretBits = 8;
    cfg.fuzzyRepetition = 5;
    cfg.verifier.pIntra = 0.08;
    cfg.lockoutThreshold = 2;
    cfg.completedCacheSize = 64;
    cfg.sessionShards = shards;
    return cfg;
}

/**
 * Everything an observer can see after the flood: per-device record
 * state (including the rotated map keys), aggregate counters, the
 * completed-auth report log, and every reply byte each endpoint
 * received, in order.
 */
std::string
fingerprint(const Harness &h, bool include_wire = true)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < h.ids.size(); ++i) {
        const auto &rec = h.server.database().at(h.ids[i]);
        os << "dev " << h.ids[i] << ": acc=" << rec.accepted()
           << " rej=" << rec.rejected()
           << " locked=" << rec.locked()
           << " authPairs=" << rec.consumedCount(kLevel)
           << " reservedPairs=" << rec.consumedCount(kReservedLvl)
           << " key=";
        for (auto b : rec.mapKey().bytes)
            os << std::hex << int(b) << std::dec;
        os << "\n";
    }
    os << "pending=" << h.server.pendingSessions()
       << " evicted=" << h.server.sessionsEvicted()
       << " expired=" << h.server.sessionsExpired()
       << " dupReq=" << h.server.duplicateRequests()
       << " dupDone=" << h.server.duplicateCompletions()
       << " remapsOk=" << h.server.remapsCommitted()
       << " remapsBad=" << h.server.remapsRejected()
       << " lockouts=" << h.server.lockouts() << "\n";
    for (const auto &r : h.server.reports()) {
        os << "report dev=" << r.deviceId;
        // Nonces tag the owning shard in their low bits, so they (and
        // the raw reply bytes that carry them) are only comparable
        // between servers with the same shard count.
        if (include_wire)
            os << " nonce=" << r.nonce;
        os << " acc=" << r.accepted << " hd=" << r.hammingDistance
           << " thr=" << r.threshold << "\n";
    }
    if (include_wire)
        for (std::size_t s = 0; s < h.transcript.size(); ++s)
            os << "slot " << s << ":\n" << h.transcript[s];
    return os.str();
}

/**
 * Run the whole mixed flood under one driver and return the
 * fingerprint. Six rounds: requests (+noise), responses (+lies,
 * duplicates, silence), remap acks (+tampering), a second
 * request/response pass that locks the repeat liars, and a final
 * request round probing the locked devices.
 */
std::string
runFlood(const Driver &drive, unsigned shards,
         bool include_wire = true)
{
    Harness h(floodConfig(shards), kDevices);
    auto frameFor = [&](std::size_t slot, const proto::Message &m) {
        return TestFrame{slot, proto::encodeMessage(m)};
    };

    // Round 1: everyone requests; the stray slot injects garbage, an
    // unknown device, an unknown nonce, an out-of-phase message, and
    // a client-side ErrorMsg (consumed without a reply).
    std::vector<TestFrame> round;
    for (std::size_t i = 0; i < h.ids.size(); ++i)
        round.push_back(
            frameFor(i, proto::AuthRequest{h.ids[i]}));
    round.push_back(frameFor(h.stray, proto::AuthRequest{9999}));
    round.push_back(TestFrame{h.stray, garbageFrame()});
    round.push_back(frameFor(
        h.stray, proto::ResponseMsg{0xABCDEF12, util::BitVec()}));
    round.push_back(frameFor(h.stray, proto::AuthDecision{}));
    round.push_back(frameFor(h.stray, proto::ErrorMsg{"client woe"}));
    drive(h, round);
    drainReplies(h);

    // Round 2: duplicate requests land first (their sessions are
    // still open), then responses -- honest, corrupted, duplicated,
    // or withheld (a garbage frame in place of the answer).
    round.clear();
    for (std::size_t i = 0; i < h.ids.size(); ++i)
        if (duplicatesRequest(h.ids[i]))
            round.push_back(
                frameFor(i, proto::AuthRequest{h.ids[i]}));
    for (std::size_t i = 0; i < h.ids.size(); ++i) {
        std::uint64_t id = h.ids[i];
        if (skipsResponse(id)) {
            round.push_back(TestFrame{i, garbageFrame()});
            continue;
        }
        const auto &ch = *h.lastChallenge[i];
        auto resp =
            honestResponse(h.server.database().at(id), ch.challenge);
        if (liesOnResponse(id))
            for (std::size_t b = 0; b < 16 && b < resp.size(); ++b)
                resp.flip(b);
        auto frame =
            frameFor(i, proto::ResponseMsg{ch.nonce, resp});
        round.push_back(frame);
        if (duplicatesResponse(id))
            round.push_back(frame);
    }
    drive(h, round);
    drainReplies(h);

    // Round 3: the server initiates remaps; clients ack honestly,
    // with a tampered confirmation, or twice.
    for (std::size_t i = 0; i < h.ids.size(); ++i)
        if (wantsRemap(h.ids[i]))
            h.server.startRemap(h.ids[i], *h.ends[i]);
    drainReplies(h);
    round.clear();
    for (std::size_t i = 0; i < h.ids.size(); ++i) {
        std::uint64_t id = h.ids[i];
        if (!wantsRemap(id) || !h.lastRemap[i])
            continue;
        auto ack = craftAck(h.server.database().at(id),
                            *h.lastRemap[i], tampersAck(id));
        auto frame = frameFor(i, ack);
        round.push_back(frame);
        if (duplicatesAck(id))
            round.push_back(frame);
    }
    drive(h, round);
    drainReplies(h);

    // Round 4: a second request wave. Devices that withheld their
    // round-2 answer still hold an open session, so this is a dedup
    // re-issue for them and a fresh challenge for everyone else.
    round.clear();
    for (std::size_t i = 0; i < h.ids.size(); ++i)
        round.push_back(
            frameFor(i, proto::AuthRequest{h.ids[i]}));
    drive(h, round);
    drainReplies(h);

    // Round 5: second response wave. Repeat liars hit the lockout
    // threshold here; everyone else authenticates (under the rotated
    // key where a remap committed).
    round.clear();
    for (std::size_t i = 0; i < h.ids.size(); ++i) {
        std::uint64_t id = h.ids[i];
        const auto &ch = *h.lastChallenge[i];
        auto resp =
            honestResponse(h.server.database().at(id), ch.challenge);
        if (liesOnResponse(id))
            for (std::size_t b = 0; b < 16 && b < resp.size(); ++b)
                resp.flip(b);
        round.push_back(
            frameFor(i, proto::ResponseMsg{ch.nonce, resp}));
    }
    round.push_back(frameFor(
        h.stray, proto::ResponseMsg{0x13572468, util::BitVec()}));
    drive(h, round);
    drainReplies(h);

    // Round 6: probe every device again; locked ones get rejected at
    // the request stage.
    round.clear();
    for (std::size_t i = 0; i < h.ids.size(); ++i)
        round.push_back(
            frameFor(i, proto::AuthRequest{h.ids[i]}));
    drive(h, round);
    drainReplies(h);

    return fingerprint(h, include_wire);
}

// ---------------------------------------------------------------- //
// Fault sweep through the batch front end                          //
// ---------------------------------------------------------------- //
// Constants and structure mirror test_fault_sweep exactly: same
// seeds, same canonical exchange, same outcome serialization. The
// only degree of freedom is how the server is pumped.

constexpr std::uint64_t kChipSeed = 0x5EED;
constexpr std::uint64_t kSweepServerSeed = 777;
constexpr std::uint64_t kDeviceId = 9;
constexpr std::uint64_t kPlanSeed = 0xFA017;
constexpr std::uint64_t kDelaySteps = 8;
constexpr std::uint64_t kSessionTimeout = 40;
constexpr std::uint64_t kMaxSteps = 400;
constexpr std::uint64_t kBaselineFrames = 7;

srv::ServerConfig
sweepServerConfig()
{
    srv::ServerConfig scfg;
    scfg.challengeBits = 32;
    scfg.remapSecretBits = 8;
    scfg.fuzzyRepetition = 5;
    scfg.verifier.pIntra = 0.08;
    scfg.sessionTimeoutSteps = kSessionTimeout;
    return scfg;
}

struct DeviceTemplate
{
    core::ErrorMap map;
    double floorMv;
    std::vector<core::VddMv> levels;
    core::VddMv reserved;
};

DeviceTemplate
captureTemplate()
{
    auto chip = authenticache::testutil::makeTestSubstrate(kChipSeed);
    fw::SimulatedMachine machine(kDeviceId);
    fw::ClientConfig ccfg;
    ccfg.selfTestAttempts = 8;
    fw::AuthenticacheClient client(*chip, machine, ccfg);

    double floor = client.boot();
    auto levels = srv::defaultChallengeLevels(client, 1);
    auto reserved = srv::defaultReservedLevel(client);
    std::vector<core::VddMv> all = levels;
    all.push_back(reserved);
    return DeviceTemplate{client.captureErrorMap(all, 8), floor,
                          std::move(levels), reserved};
}

struct RunOutcome
{
    bool quiesced = false;
    std::uint64_t steps = 0;
    std::string authStatus;
    bool accepted = false;
    std::uint64_t remapsCommitted = 0;
    std::uint64_t agentRemapTimeouts = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t dupRequests = 0;
    std::uint64_t dupCompletions = 0;
    std::uint64_t expired = 0;
    std::size_t pendingAfterGc = 0;
    std::size_t consumedAuthPairs = 0;
    std::size_t consumedReservedPairs = 0;
    bool keysInSync = false;

    std::string
    serialize() const
    {
        std::ostringstream os;
        os << "quiesced=" << quiesced << " steps=" << steps
           << " auth=" << authStatus << " accepted=" << accepted
           << " remaps=" << remapsCommitted
           << " remapTimeouts=" << agentRemapTimeouts
           << " retx=" << retransmissions
           << " dupReq=" << dupRequests
           << " dupDone=" << dupCompletions << " expired=" << expired
           << " pending=" << pendingAfterGc
           << " consumedAuth=" << consumedAuthPairs
           << " consumedReserved=" << consumedReservedPairs
           << " keySync=" << keysInSync;
        return os.str();
    }
};

std::string
statusName(const std::optional<fw::AuthOutcome::Status> &s)
{
    if (!s)
        return "InFlight";
    switch (*s) {
      case fw::AuthOutcome::Status::Ok: return "Ok";
      case fw::AuthOutcome::Status::Aborted: return "Aborted";
      case fw::AuthOutcome::Status::TimedOut: return "TimedOut";
    }
    return "?";
}

/**
 * Drain everything currently queued at the server into one batch.
 * @return whether any frame was serviced.
 */
bool
pumpServerBatch(srv::AuthenticationServer &server,
                proto::InMemoryChannel &channel,
                proto::ServerEndpoint &endpoint,
                util::ThreadPool &pool)
{
    std::vector<srv::Frame> frames;
    while (auto frame = channel.receiveAtServer())
        frames.push_back(srv::Frame{std::move(*frame), &endpoint});
    if (frames.empty())
        return false;
    server.handleBatch(frames, pool);
    return true;
}

/** runExchangeSteps with the per-message pump replaced by batches. */
srv::SteppedExchangeResult
runExchangeStepsBatch(srv::AuthenticationServer &server,
                      proto::ServerEndpoint &server_endpoint,
                      srv::DeviceAgent &agent, util::SimClock &clock,
                      proto::InMemoryChannel &channel,
                      util::ThreadPool &pool, std::uint64_t max_steps)
{
    srv::SteppedExchangeResult result;
    for (; result.steps < max_steps; ++result.steps) {
        bool progress = true;
        while (progress) {
            progress = false;
            progress |= pumpServerBatch(server, channel,
                                        server_endpoint, pool);
            progress |= agent.pumpOnce();
        }
        if (!agent.sessionActive() && channel.idle()) {
            result.quiesced = true;
            return result;
        }
        clock.advance(1);
        server.tick();
        agent.tick();
    }
    return result;
}

/**
 * The canonical faulted exchange, pumped either per-message (pool ==
 * nullptr, the test_fault_sweep original) or through handleBatch.
 */
RunOutcome
runFaultedExchange(const DeviceTemplate &tmpl,
                   const proto::FaultPlan &fault_plan,
                   util::ThreadPool *pool)
{
    auto chip = authenticache::testutil::makeTestSubstrate(kChipSeed);
    fw::SimulatedMachine machine(kDeviceId);
    fw::ClientConfig ccfg;
    ccfg.selfTestAttempts = 8;
    fw::AuthenticacheClient client(*chip, machine, ccfg);
    client.adoptFloor(tmpl.floorMv);

    srv::AuthenticationServer server(sweepServerConfig(),
                                     kSweepServerSeed);
    server.enrollWithMap(kDeviceId, tmpl.map, client, tmpl.levels,
                         {tmpl.reserved});

    util::SimClock clock;
    proto::InMemoryChannel channel;
    channel.bindClock(&clock);
    channel.setFaultPlan(fault_plan);
    proto::ServerEndpoint server_end(channel);
    server.bindClock(&clock);

    srv::DeviceAgent agent(kDeviceId, client,
                           proto::ClientEndpoint(channel));
    agent.bindClock(&clock);

    auto step = [&]() {
        return pool ? runExchangeStepsBatch(server, server_end,
                                            agent, clock, channel,
                                            *pool, kMaxSteps)
                    : srv::runExchangeSteps(server, server_end,
                                            agent, clock, channel,
                                            kMaxSteps);
    };

    RunOutcome out;
    agent.requestAuthentication();
    auto auth = step();
    server.startRemap(kDeviceId, server_end);
    auto remap = step();

    out.quiesced = auth.quiesced && remap.quiesced;
    out.steps = auth.steps + remap.steps;
    out.authStatus = statusName(agent.lastAuthStatus());
    out.accepted = agent.lastDecision().has_value() &&
                   agent.lastDecision()->accepted;

    clock.advance(kSessionTimeout + 1);
    server.tick();
    out.pendingAfterGc = server.pendingSessions();

    out.remapsCommitted = server.remapsCommitted();
    out.agentRemapTimeouts = agent.remapsTimedOut();
    out.retransmissions = agent.retransmissions();
    out.dupRequests = server.duplicateRequests();
    out.dupCompletions = server.duplicateCompletions();
    out.expired = server.sessionsExpired();

    const auto &record = server.database().at(kDeviceId);
    out.consumedAuthPairs = record.consumedCount(tmpl.levels[0]);
    out.consumedReservedPairs = record.consumedCount(tmpl.reserved);
    out.keysInSync = client.mapKey() == record.mapKey();
    return out;
}

std::vector<std::pair<std::string, RunOutcome>>
runFullSweep(const DeviceTemplate &tmpl, util::ThreadPool *pool)
{
    const proto::FaultType kinds[] = {
        proto::FaultType::Drop, proto::FaultType::Duplicate,
        proto::FaultType::Reorder, proto::FaultType::Delay,
        proto::FaultType::Corrupt};
    const char *kindNames[] = {"drop", "duplicate", "reorder",
                               "delay", "corrupt"};

    std::vector<std::pair<std::string, RunOutcome>> sweep;
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
        for (std::uint64_t frame = 0; frame < kBaselineFrames;
             ++frame) {
            proto::FaultPlan plan(kPlanSeed);
            plan.add({kinds[k], frame, kDelaySteps});
            std::string label = std::string(kindNames[k]) + "@" +
                                std::to_string(frame);
            sweep.emplace_back(
                label, runFaultedExchange(tmpl, plan, pool));
        }
    }
    return sweep;
}

} // namespace

// ---------------------------------------------------------------- //
// Tests                                                            //
// ---------------------------------------------------------------- //

TEST(BatchEquivalence, MixedFloodIdenticalAcrossDrivers)
{
    std::string sequential = runFlood(driveSequential, 8);
    std::string batch1 =
        runFlood(batchDriver(std::make_shared<util::ThreadPool>(1)), 8);
    std::string batch8 =
        runFlood(batchDriver(std::make_shared<util::ThreadPool>(8)), 8);

    EXPECT_EQ(sequential, batch1);
    EXPECT_EQ(sequential, batch8);

    // The scenario must actually exercise the interesting paths;
    // otherwise the equality above proves nothing.
    EXPECT_NE(sequential.find(" locked=1"), std::string::npos);
    EXPECT_NE(sequential.find("remapsOk="), std::string::npos);
    EXPECT_EQ(sequential.find("remapsOk=0 "), std::string::npos);
    EXPECT_EQ(sequential.find(" dupReq=0 "), std::string::npos);
    EXPECT_EQ(sequential.find(" dupDone=0 "), std::string::npos);
    EXPECT_EQ(sequential.find(" remapsBad=0 "), std::string::npos);
    EXPECT_EQ(sequential.find("lockouts=0"), std::string::npos);
}

TEST(BatchEquivalence, ShardCountInvariantToFingerprint)
{
    // Shard layout is an implementation detail: every outcome --
    // per-device record state, rotated keys, counters, reports --
    // must not depend on it. (Raw nonce bytes do, by design: the
    // shard index lives in a nonce's low bits, so the wire transcript
    // is excluded from this comparison.)
    auto pool = std::make_shared<util::ThreadPool>(4);
    std::string oneShard =
        runFlood(batchDriver(pool), 1, /*include_wire=*/false);
    std::string eightShards =
        runFlood(batchDriver(pool), 8, /*include_wire=*/false);
    EXPECT_EQ(oneShard, eightShards);
}

TEST(BatchEquivalence, FaultSweepThroughBatchMatchesPerMessage)
{
    DeviceTemplate tmpl = captureTemplate();
    util::ThreadPool pool(3);

    auto perMessage = runFullSweep(tmpl, nullptr);
    auto batched = runFullSweep(tmpl, &pool);

    ASSERT_EQ(perMessage.size(), batched.size());
    for (std::size_t i = 0; i < perMessage.size(); ++i) {
        SCOPED_TRACE(perMessage[i].first);
        EXPECT_EQ(perMessage[i].first, batched[i].first);
        EXPECT_EQ(perMessage[i].second.serialize(),
                  batched[i].second.serialize());
    }
}

TEST(PerShardStats, CountersSurfaceInRegistry)
{
    Harness h(floodConfig(4), 16);
    util::ThreadPool pool(2);
    auto drive = batchDriver(std::make_shared<util::ThreadPool>(2));

    // One request wave, duplicated wholesale: every device scores a
    // dedup hit on its shard.
    std::vector<TestFrame> round;
    for (std::size_t i = 0; i < h.ids.size(); ++i)
        round.push_back(TestFrame{
            i, proto::encodeMessage(proto::AuthRequest{h.ids[i]})});
    drive(h, round);
    drive(h, round);
    drainReplies(h);

    util::StatsRegistry registry;
    srv::collectServerStats(h.server, registry);

    ASSERT_EQ(registry.getInt("server", "session_shards"),
              std::optional<std::uint64_t>(4));
    std::uint64_t active = 0;
    std::uint64_t dedup = 0;
    for (unsigned k = 0; k < 4; ++k) {
        std::string shard = "server.shard" + std::to_string(k);
        auto a = registry.getInt(shard, "sessions_active");
        auto d = registry.getInt(shard, "dedup_hits");
        ASSERT_TRUE(a.has_value()) << shard;
        ASSERT_TRUE(d.has_value()) << shard;
        ASSERT_TRUE(
            registry.getInt(shard, "replay_cache_hits").has_value());
        ASSERT_TRUE(
            registry.getInt(shard, "gc_evictions").has_value());
        ASSERT_TRUE(
            registry.getInt(shard, "cap_evictions").has_value());
        ASSERT_TRUE(registry.getInt(shard, "lockouts").has_value());
        active += *a;
        dedup += *d;
    }
    EXPECT_EQ(active, h.server.pendingSessions());
    EXPECT_EQ(dedup, h.server.duplicateRequests());
    EXPECT_EQ(dedup, h.ids.size());
}

TEST(PerShardStats, DevicesSpreadAcrossShards)
{
    Harness h(floodConfig(8), kDevices);
    std::vector<bool> used(h.server.sessions().shardCount(), false);
    for (auto id : h.ids) {
        unsigned idx = h.server.sessions().shardIndexForDevice(id);
        ASSERT_LT(idx, used.size());
        used[idx] = true;
    }
    // 64 ids over 8 shards: a routing bug that pins everything to
    // one shard would leave most of these false.
    for (std::size_t k = 0; k < used.size(); ++k)
        EXPECT_TRUE(used[k]) << "shard " << k << " unused";
}

TEST(SessionManagerTest, ShardCountRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(Harness(floodConfig(1), 1)
                  .server.sessions()
                  .shardCount(),
              1u);
    EXPECT_EQ(Harness(floodConfig(3), 1)
                  .server.sessions()
                  .shardCount(),
              4u);
    EXPECT_EQ(Harness(floodConfig(8), 1)
                  .server.sessions()
                  .shardCount(),
              8u);
}

TEST(ComponentLogging, OverridesAndPrefixFallback)
{
    util::clearComponentLogLevels();
    util::setLogLevel(util::LogLevel::Warn);

    EXPECT_FALSE(util::logEnabled(util::LogLevel::Debug, "server"));
    util::setLogLevel("server", util::LogLevel::Debug);
    EXPECT_TRUE(util::logEnabled(util::LogLevel::Debug, "server"));

    // Dotted children inherit the nearest configured prefix.
    EXPECT_TRUE(
        util::logEnabled(util::LogLevel::Debug, "server.sessions"));
    util::setLogLevel("server.sessions", util::LogLevel::Off);
    EXPECT_FALSE(
        util::logEnabled(util::LogLevel::Error, "server.sessions"));
    EXPECT_TRUE(
        util::logEnabled(util::LogLevel::Debug, "server.auth"));

    // Unrelated components still follow the global level.
    EXPECT_FALSE(util::logEnabled(util::LogLevel::Debug, "mc"));
    EXPECT_TRUE(util::logEnabled(util::LogLevel::Warn, "mc"));

    util::clearComponentLogLevels();
    EXPECT_FALSE(util::logEnabled(util::LogLevel::Debug, "server"));
    EXPECT_TRUE(
        util::logEnabled(util::LogLevel::Error, "server.sessions"));
}

TEST(ComponentLogging, QueryReportsEffectiveLevel)
{
    util::clearComponentLogLevels();
    util::setLogLevel(util::LogLevel::Warn);
    EXPECT_EQ(util::logLevel("server"), util::LogLevel::Warn);
    util::setLogLevel("server", util::LogLevel::Info);
    EXPECT_EQ(util::logLevel("server"), util::LogLevel::Info);
    EXPECT_EQ(util::logLevel("server.remap"), util::LogLevel::Info);
    EXPECT_EQ(util::logLevel("firmware"), util::LogLevel::Warn);
    util::clearComponentLogLevels();
}
