/**
 * @file
 * Tests for error-map combination policies and server enrollment with
 * a pre-captured (combined) map.
 */

#include <gtest/gtest.h>

#include "mc/mapgen.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"

namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace fw = authenticache::firmware;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(64 * 1024);

core::ErrorMap
mapOf(std::initializer_list<sim::LinePoint> points,
      core::VddMv level = 700)
{
    core::ErrorMap map(kGeom);
    for (const auto &p : points)
        map.plane(level).add(p);
    return map;
}

} // namespace

TEST(CombineMaps, UnionIntersectionMajority)
{
    std::vector<core::ErrorMap> captures{
        mapOf({{1, 0}, {2, 0}, {3, 0}}),
        mapOf({{2, 0}, {3, 0}, {4, 0}}),
        mapOf({{3, 0}, {4, 0}, {5, 0}}),
    };

    auto u = core::combineErrorMaps(captures,
                                    core::CombinePolicy::Union);
    EXPECT_EQ(u.plane(700).errorCount(), 5u); // Lines 1-5.

    auto i = core::combineErrorMaps(
        captures, core::CombinePolicy::Intersection);
    EXPECT_EQ(i.plane(700).errorCount(), 1u); // Only line 3.
    EXPECT_TRUE(i.plane(700).contains({3, 0}));

    auto m = core::combineErrorMaps(captures,
                                    core::CombinePolicy::Majority);
    // Quorum 2 of 3: lines 2, 3, 4.
    EXPECT_EQ(m.plane(700).errorCount(), 3u);
    EXPECT_TRUE(m.plane(700).contains({2, 0}));
    EXPECT_TRUE(m.plane(700).contains({4, 0}));
    EXPECT_FALSE(m.plane(700).contains({1, 0}));
}

TEST(CombineMaps, HandlesDisjointLevels)
{
    // One capture saw level 690, the other did not: for union the
    // plane carries over; for intersection it empties.
    std::vector<core::ErrorMap> captures{mapOf({{1, 1}}, 690),
                                         mapOf({{1, 1}}, 700)};
    auto u = core::combineErrorMaps(captures,
                                    core::CombinePolicy::Union);
    EXPECT_TRUE(u.hasPlane(690));
    EXPECT_TRUE(u.hasPlane(700));
    EXPECT_EQ(u.totalErrors(), 2u);

    auto i = core::combineErrorMaps(
        captures, core::CombinePolicy::Intersection);
    EXPECT_EQ(i.totalErrors(), 0u);
}

TEST(CombineMaps, SingleCaptureIsIdentityForAllPolicies)
{
    Rng rng(1);
    std::vector<core::ErrorMap> one{
        authenticache::mc::randomErrorMap(kGeom, 700, 20, rng)};
    for (auto policy :
         {core::CombinePolicy::Union,
          core::CombinePolicy::Intersection,
          core::CombinePolicy::Majority}) {
        auto combined = core::combineErrorMaps(one, policy);
        EXPECT_EQ(combined, one.front());
    }
}

TEST(CombineMaps, Validation)
{
    EXPECT_THROW(core::combineErrorMaps({},
                                        core::CombinePolicy::Union),
                 std::invalid_argument);

    sim::CacheGeometry other(128 * 1024);
    std::vector<core::ErrorMap> mixed{core::ErrorMap(kGeom),
                                      core::ErrorMap(other)};
    EXPECT_THROW(
        core::combineErrorMaps(mixed, core::CombinePolicy::Union),
        std::invalid_argument);
}

TEST(RobustEnrollment, EnrollWithCombinedMapAuthenticates)
{
    sim::ChipConfig cfg;
    cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip chip(cfg, 0xE0B);
    fw::SimulatedMachine machine(2);
    fw::ClientConfig ccfg;
    ccfg.selfTestAttempts = 8;
    fw::AuthenticacheClient client(chip, machine, ccfg);
    client.boot();
    auto level = static_cast<core::VddMv>(client.floorMv() + 10.0);

    // Capture nominal and hot, enroll the majority... with two
    // captures majority quorum is 2 = intersection; use union here.
    auto cold = client.captureErrorMap({level}, 8);
    sim::Conditions hot;
    hot.temperatureDeltaC = 20.0;
    chip.setConditions(hot);
    auto warm = client.captureErrorMap({level}, 8);
    chip.setConditions(sim::Conditions::nominal());

    auto combined = core::combineErrorMaps(
        {cold, warm}, core::CombinePolicy::Union);

    srv::ServerConfig scfg;
    scfg.challengeBits = 128;
    scfg.verifier.pIntra = 0.10;
    srv::AuthenticationServer server(scfg, 2);
    server.enrollWithMap(4, combined, client, {level}, {});

    proto::InMemoryChannel channel;
    proto::ServerEndpoint server_end(channel);
    srv::DeviceAgent agent(4, client,
                           proto::ClientEndpoint(channel));

    // Authenticates at both ends of the envelope.
    for (double temp : {0.0, 20.0}) {
        sim::Conditions c;
        c.temperatureDeltaC = temp;
        chip.setConditions(c);
        agent.requestAuthentication();
        srv::runExchange(server, server_end, agent);
        ASSERT_TRUE(agent.lastDecision().has_value());
        EXPECT_TRUE(agent.lastDecision()->accepted)
            << "at +" << temp << "C, HD "
            << agent.lastDecision()->hammingDistance;
    }
}
