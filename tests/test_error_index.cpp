/**
 * @file
 * Cross-checks core::ErrorIndex against the brute-force reference:
 * identical found/distance/coordinate (including the tie rule) on
 * randomized planes, plus incremental add/remove consistency.
 */

#include <gtest/gtest.h>

#include "core/challenge.hpp"
#include "core/error_index.hpp"
#include "core/nearest.hpp"
#include "mc/mapgen.hpp"
#include "util/rng.hpp"

namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace mc = authenticache::mc;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(64 * 1024); // 128 sets x 8 ways.

sim::LinePoint
randomPoint(const sim::CacheGeometry &geom, Rng &rng)
{
    return geom.pointOf(rng.nextBelow(geom.lines()));
}

void
expectSameAnswer(const core::ErrorPlane &plane,
                 const core::ErrorIndex &index,
                 const sim::LinePoint &from)
{
    auto brute = core::nearestErrorBrute(plane, from);
    auto fast = index.nearest(from);
    ASSERT_EQ(fast.found, brute.found)
        << "query (" << from.set << "," << from.way << ")";
    if (brute.found) {
        EXPECT_EQ(fast.distance, brute.distance)
            << "query (" << from.set << "," << from.way << ")";
        EXPECT_EQ(fast.at, brute.at)
            << "query (" << from.set << "," << from.way << ")";
    }
}

} // namespace

TEST(ErrorIndex, EmptyPlane)
{
    core::ErrorPlane plane(kGeom);
    core::ErrorIndex index(plane);
    EXPECT_EQ(index.errorCount(), 0u);
    auto r = index.nearest({5, 3});
    EXPECT_FALSE(r.found);
    EXPECT_EQ(index.distanceOrInfinite({5, 3}),
              core::kInfiniteDistance);
    expectSameAnswer(plane, index, {0, 0});
}

TEST(ErrorIndex, SingleError)
{
    core::ErrorPlane plane(kGeom);
    plane.add({100, 2});
    core::ErrorIndex index(plane);
    EXPECT_EQ(index.errorCount(), 1u);
    for (auto from : {sim::LinePoint{100, 2}, sim::LinePoint{0, 0},
                      sim::LinePoint{127, 7}, sim::LinePoint{100, 0},
                      sim::LinePoint{0, 2}}) {
        expectSameAnswer(plane, index, from);
    }
    auto r = index.nearest({100, 2});
    EXPECT_EQ(r.distance, 0u);
}

TEST(ErrorIndex, TieBreaksToLexicographicSmallest)
{
    // Both errors at distance 2 from (10, 1); brute picks the
    // lexicographically smaller (set, way), i.e. (9, 0).
    core::ErrorPlane plane(kGeom);
    plane.add({9, 0});
    plane.add({11, 2});
    core::ErrorIndex index(plane);
    auto r = index.nearest({10, 1});
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.distance, 2u);
    EXPECT_EQ(r.at, (sim::LinePoint{9, 0}));
    expectSameAnswer(plane, index, {10, 1});

    // Same-row tie: errors flank the query at equal distance.
    core::ErrorPlane row(kGeom);
    row.add({20, 4});
    row.add({26, 4});
    core::ErrorIndex row_index(row);
    auto rr = row_index.nearest({23, 4});
    EXPECT_EQ(rr.distance, 3u);
    EXPECT_EQ(rr.at, (sim::LinePoint{20, 4}));
    expectSameAnswer(row, row_index, {23, 4});
}

TEST(ErrorIndex, CrossCheckRandomPlanes)
{
    Rng rng(0xE11D);
    for (std::size_t errors : {1u, 2u, 7u, 40u, 200u, 900u}) {
        auto plane = mc::randomPlane(kGeom, errors, rng);
        core::ErrorIndex index(plane);
        EXPECT_EQ(index.errorCount(), errors);
        for (int q = 0; q < 200; ++q)
            expectSameAnswer(plane, index, randomPoint(kGeom, rng));
        // Corners and edges, the clipping-sensitive spots.
        expectSameAnswer(plane, index, {0, 0});
        expectSameAnswer(plane, index, {kGeom.sets() - 1, 0});
        expectSameAnswer(plane, index, {0, kGeom.ways() - 1});
        expectSameAnswer(plane, index,
                         {kGeom.sets() - 1, kGeom.ways() - 1});
    }
}

TEST(ErrorIndex, ContainsMatchesPlane)
{
    Rng rng(0xC0);
    auto plane = mc::randomPlane(kGeom, 64, rng);
    core::ErrorIndex index(plane);
    for (const auto &e : plane.errors())
        EXPECT_TRUE(index.contains(e));
    for (int q = 0; q < 200; ++q) {
        auto p = randomPoint(kGeom, rng);
        EXPECT_EQ(index.contains(p), plane.contains(p));
    }
}

TEST(ErrorIndex, IncrementalAddRemoveStaysInSync)
{
    Rng rng(0x5EED);
    core::ErrorPlane plane(kGeom);
    core::ErrorIndex index(kGeom);

    for (int step = 0; step < 600; ++step) {
        auto p = randomPoint(kGeom, rng);
        if (rng.nextBool(0.6)) {
            plane.add(p);
            index.add(p);
        } else {
            plane.remove(p);
            index.remove(p);
        }
        ASSERT_EQ(index.errorCount(), plane.errorCount());
        if (step % 10 == 0)
            expectSameAnswer(plane, index, randomPoint(kGeom, rng));
    }

    // Idempotence both ways.
    auto p = plane.errors().empty() ? sim::LinePoint{1, 1}
                                    : plane.errors().front();
    index.add(p);
    index.add(p);
    std::size_t count = index.errorCount();
    index.add(p);
    EXPECT_EQ(index.errorCount(), count);
    index.remove(p);
    index.remove(p);
    EXPECT_EQ(index.errorCount(), count - 1);
}

TEST(ErrorIndex, CellsExaminedBounded)
{
    // The point of the index: query cost must not scale with the
    // error count. At most two candidates per way row are compared.
    Rng rng(0xB0B);
    auto plane = mc::randomPlane(kGeom, 900, rng);
    core::ErrorIndex index(plane);
    for (int q = 0; q < 50; ++q) {
        auto r = index.nearest(randomPoint(kGeom, rng));
        EXPECT_LE(r.cellsExamined, 2ull * kGeom.ways());
    }
}
