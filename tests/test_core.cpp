/**
 * @file
 * Tests for the core PUF library: error maps, nearest-error search
 * (brute vs spiral equivalence), challenge evaluation, remapping, and
 * CRP capacity math.
 */

#include <set>

#include <gtest/gtest.h>

#include "core/challenge.hpp"
#include "core/crp.hpp"
#include "core/error_map.hpp"
#include "core/nearest.hpp"
#include "core/remap.hpp"
#include "crypto/sha256.hpp"

namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace crypto = authenticache::crypto;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kSmall(64 * 1024); // 128 sets x 8 ways.

core::ErrorMap
randomMap(const sim::CacheGeometry &geom, core::VddMv level,
          std::size_t errors, std::uint64_t seed)
{
    Rng rng(seed);
    core::ErrorMap map(geom);
    for (auto idx : rng.sampleDistinct(geom.lines(), errors))
        map.plane(level).add(geom.pointOf(idx));
    return map;
}

} // namespace

TEST(ErrorPlane, AddRemoveContains)
{
    core::ErrorPlane plane(kSmall);
    sim::LinePoint p{5, 2};
    EXPECT_FALSE(plane.contains(p));
    plane.add(p);
    EXPECT_TRUE(plane.contains(p));
    EXPECT_EQ(plane.errorCount(), 1u);
    plane.add(p); // Idempotent.
    EXPECT_EQ(plane.errorCount(), 1u);
    plane.remove(p);
    EXPECT_FALSE(plane.contains(p));
    plane.remove(p); // Idempotent.
    EXPECT_EQ(plane.errorCount(), 0u);
}

TEST(ErrorPlane, ErrorsStaySorted)
{
    core::ErrorPlane plane(kSmall);
    plane.add({9, 1});
    plane.add({2, 7});
    plane.add({2, 3});
    auto &errors = plane.errors();
    ASSERT_EQ(errors.size(), 3u);
    EXPECT_TRUE(std::is_sorted(errors.begin(), errors.end()));
}

TEST(ErrorMap, PlanesPerVoltage)
{
    core::ErrorMap map(kSmall);
    map.plane(680).add({1, 1});
    map.plane(690).add({2, 2});
    map.plane(690).add({3, 3});
    EXPECT_TRUE(map.hasPlane(680));
    EXPECT_FALSE(map.hasPlane(700));
    EXPECT_EQ(map.levels(), (std::vector<core::VddMv>{680, 690}));
    EXPECT_EQ(map.totalErrors(), 3u);
    EXPECT_THROW(std::as_const(map).plane(700), std::out_of_range);
}

TEST(ErrorMap, AddSweepBulkInsert)
{
    core::ErrorMap map(kSmall);
    std::vector<sim::LinePoint> lines{{1, 0}, {5, 5}, {1, 0}};
    map.addSweep(700, lines);
    EXPECT_EQ(map.plane(700).errorCount(), 2u);
}

TEST(Nearest, BruteOnKnownPlane)
{
    core::ErrorPlane plane(kSmall);
    plane.add({10, 0});
    plane.add({20, 7});
    auto r = core::nearestErrorBrute(plane, {12, 1});
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.distance, 3u); // |12-10| + |1-0|.
    EXPECT_EQ(r.at, (sim::LinePoint{10, 0}));
}

TEST(Nearest, BruteEmptyPlane)
{
    core::ErrorPlane plane(kSmall);
    auto r = core::nearestErrorBrute(plane, {0, 0});
    EXPECT_FALSE(r.found);
}

TEST(Nearest, RingCellsRadiusZeroAndOne)
{
    auto r0 = core::ringCells(kSmall, {10, 4}, 0);
    ASSERT_EQ(r0.size(), 1u);
    EXPECT_EQ(r0[0], (sim::LinePoint{10, 4}));

    auto r1 = core::ringCells(kSmall, {10, 4}, 1);
    ASSERT_EQ(r1.size(), 4u);
    // Clockwise from north: (10,5), (11,4), (10,3), (9,4).
    EXPECT_EQ(r1[0], (sim::LinePoint{10, 5}));
    EXPECT_EQ(r1[1], (sim::LinePoint{11, 4}));
    EXPECT_EQ(r1[2], (sim::LinePoint{10, 3}));
    EXPECT_EQ(r1[3], (sim::LinePoint{9, 4}));
}

TEST(Nearest, RingCellsClippedAtBounds)
{
    // Corner point: most of the ring is out of bounds.
    auto cells = core::ringCells(kSmall, {0, 0}, 2);
    for (const auto &c : cells) {
        EXPECT_TRUE(kSmall.contains(c));
        EXPECT_EQ(sim::manhattan(c, {0, 0}), 2u);
    }
    ASSERT_EQ(cells.size(), 3u); // (0,2), (1,1), (2,0).
}

TEST(Nearest, RingCellsExactlyTheRing)
{
    // All in-bound cells at the radius, no duplicates, none missing.
    sim::LinePoint center{30, 3};
    for (std::uint64_t r : {1ull, 2ull, 5ull, 9ull, 15ull}) {
        auto cells = core::ringCells(kSmall, center, r);
        std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
        for (const auto &c : cells) {
            EXPECT_TRUE(kSmall.contains(c));
            EXPECT_EQ(sim::manhattan(c, center), r);
            EXPECT_TRUE(seen.insert({c.set, c.way}).second);
        }
        // Count by enumeration over the full plane.
        std::size_t expected = 0;
        for (std::uint32_t set = 0; set < kSmall.sets(); ++set) {
            for (std::uint32_t way = 0; way < kSmall.ways(); ++way) {
                if (sim::manhattan({set, way}, center) == r)
                    ++expected;
            }
        }
        EXPECT_EQ(cells.size(), expected) << "radius " << r;
    }
}

TEST(Nearest, SpiralEqualsBruteOnRandomMaps)
{
    // Property: spiral search with a perfect probe finds the same
    // distance as the brute-force scan, for random maps and points.
    Rng rng(321);
    for (int trial = 0; trial < 20; ++trial) {
        auto map = randomMap(kSmall, 700, 1 + trial, 1000 + trial);
        const auto &plane = map.plane(700);
        auto probe = [&](const sim::LinePoint &p) {
            return plane.contains(p);
        };
        for (int q = 0; q < 30; ++q) {
            sim::LinePoint from{
                static_cast<std::uint32_t>(rng.nextBelow(kSmall.sets())),
                static_cast<std::uint32_t>(rng.nextBelow(kSmall.ways()))};
            auto brute = core::nearestErrorBrute(plane, from);
            auto spiral = core::spiralSearch(
                kSmall, from, core::maxSearchRadius(kSmall), probe);
            ASSERT_EQ(spiral.found, brute.found);
            ASSERT_EQ(spiral.distance, brute.distance);
        }
    }
}

TEST(Nearest, SpiralRespectsMaxRadius)
{
    core::ErrorPlane plane(kSmall);
    plane.add({100, 0});
    auto probe = [&](const sim::LinePoint &p) {
        return plane.contains(p);
    };
    auto r = core::spiralSearch(kSmall, {0, 0}, 10, probe);
    EXPECT_FALSE(r.found);
}

TEST(Nearest, MaxSearchRadiusIsTight)
{
    // The farthest reachable cell from any corner is the opposite
    // corner at (sets-1) + (ways-1); anything larger walks rings that
    // are guaranteed empty.
    EXPECT_EQ(core::maxSearchRadius(kSmall),
              static_cast<std::uint64_t>(kSmall.sets() - 1) +
                  (kSmall.ways() - 1));
}

TEST(Nearest, SpiralStopsAtFirstEmptyRing)
{
    // On an error-free plane a corner search must examine each of the
    // plane's cells exactly once and then give up at the first empty
    // ring -- no walk through radii past the plane's extent.
    core::ErrorPlane plane(kSmall);
    auto probe = [&](const sim::LinePoint &p) {
        return plane.contains(p);
    };
    auto r = core::spiralSearch(kSmall, {0, 0},
                                core::maxSearchRadius(kSmall), probe);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.cellsExamined, kSmall.lines());

    // Even a wildly inflated give-up radius terminates at the same
    // cost thanks to the empty-ring early exit.
    auto r2 = core::spiralSearch(kSmall, {0, 0}, 1u << 20, probe);
    EXPECT_FALSE(r2.found);
    EXPECT_EQ(r2.cellsExamined, kSmall.lines());
}

TEST(Nearest, SpiralFindsCenter)
{
    core::ErrorPlane plane(kSmall);
    plane.add({5, 5});
    auto probe = [&](const sim::LinePoint &p) {
        return plane.contains(p);
    };
    auto r = core::spiralSearch(kSmall, {5, 5}, 10, probe);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.distance, 0u);
    EXPECT_EQ(r.cellsExamined, 1u);
}

TEST(Challenge, ResponseBitSemantics)
{
    // Eq 8: 0 when dist(A) <= dist(B).
    EXPECT_FALSE(core::responseBitFromDistances(3, 5));
    EXPECT_FALSE(core::responseBitFromDistances(5, 5));
    EXPECT_TRUE(core::responseBitFromDistances(6, 5));
}

TEST(Challenge, EvaluateKnownMap)
{
    core::ErrorMap map(kSmall);
    map.plane(700).add({10, 0});

    core::Challenge ch;
    // A at distance 2, B at distance 5 -> closer is A -> bit 0.
    ch.bits.push_back({{{ 8, 0}, 700}, {{15, 0}, 700}});
    // A at distance 7, B at distance 1 -> bit 1.
    ch.bits.push_back({{{ 3, 0}, 700}, {{11, 0}, 700}});
    auto resp = core::evaluate(map, ch);
    EXPECT_FALSE(resp.get(0));
    EXPECT_TRUE(resp.get(1));
}

TEST(Challenge, MissingPlaneIsInfiniteDistance)
{
    core::ErrorMap map(kSmall);
    map.plane(700).add({10, 0});

    core::Challenge ch;
    // A has no plane (infinite), B has an error: bit = 1.
    ch.bits.push_back({{{0, 0}, 650}, {{10, 1}, 700}});
    // Both missing: tie -> 0.
    ch.bits.push_back({{{0, 0}, 650}, {{10, 1}, 651}});
    auto resp = core::evaluate(map, ch);
    EXPECT_TRUE(resp.get(0));
    EXPECT_FALSE(resp.get(1));
}

TEST(Challenge, RandomChallengeDistinctPoints)
{
    Rng rng(77);
    auto ch = core::randomChallenge(kSmall, 700, 64, rng);
    EXPECT_EQ(ch.size(), 64u);
    std::set<std::uint64_t> lines;
    for (const auto &bit : ch.bits) {
        EXPECT_EQ(bit.a.vddMv, 700u);
        lines.insert(kSmall.lineIndex(bit.a.line));
        lines.insert(kSmall.lineIndex(bit.b.line));
    }
    EXPECT_EQ(lines.size(), 128u);
}

TEST(Remap, IdentityWithZeroKey)
{
    core::LogicalRemap remap(crypto::Key256::zero(), kSmall);
    EXPECT_TRUE(remap.isIdentity());
    sim::LinePoint p{7, 3};
    EXPECT_EQ(remap.map(p, 700), p);
    EXPECT_EQ(remap.unmap(p, 700), p);
}

TEST(Remap, RoundTripsEveryLine)
{
    crypto::Key256 key = crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("remap-test")));
    core::LogicalRemap remap(key, kSmall);
    EXPECT_FALSE(remap.isIdentity());
    for (std::uint64_t i = 0; i < kSmall.lines(); i += 7) {
        sim::LinePoint p = kSmall.pointOf(i);
        EXPECT_EQ(remap.unmap(remap.map(p, 700), 700), p);
    }
}

TEST(Remap, LevelsPermuteIndependently)
{
    crypto::Key256 key = crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("levels")));
    core::LogicalRemap remap(key, kSmall);
    int same = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
        sim::LinePoint p = kSmall.pointOf(i);
        same += remap.map(p, 700) == remap.map(p, 690);
    }
    EXPECT_LT(same, 5);
}

TEST(Remap, MapErrorMapPreservesCounts)
{
    crypto::Key256 key = crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("counts")));
    core::LogicalRemap remap(key, kSmall);
    auto physical = randomMap(kSmall, 700, 40, 5);
    auto logical = remap.mapErrorMap(physical);
    EXPECT_EQ(logical.plane(700).errorCount(), 40u);
    // Permuted, not equal (overwhelmingly likely).
    EXPECT_FALSE(logical == physical);
}

TEST(Remap, ChallengeUnmapInvertsMapping)
{
    crypto::Key256 key = crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("challenge")));
    core::LogicalRemap remap(key, kSmall);

    // Response on the physical map to a physical challenge equals
    // response on the logical map to the mapped challenge.
    auto physical = randomMap(kSmall, 700, 30, 6);
    auto logical = remap.mapErrorMap(physical);

    Rng rng(8);
    auto logical_ch = core::randomChallenge(kSmall, 700, 32, rng);
    auto physical_ch = remap.unmapChallenge(logical_ch);

    // Note: distances are evaluated in each space consistently; the
    // logical evaluation is the ground truth the server uses.
    auto server_resp = core::evaluate(logical, logical_ch);

    // The client, evaluating physically with a spiral probe in logical
    // space, must reproduce it; emulate by evaluating the logical map
    // built from the physical one.
    auto client_resp =
        core::evaluate(remap.mapErrorMap(physical), logical_ch);
    EXPECT_EQ(server_resp, client_resp);

    // And the physical challenge addresses the permuted lines.
    EXPECT_EQ(remap.unmapChallenge(logical_ch).bits[0].a.line,
              physical_ch.bits[0].a.line);
}

TEST(Crp, Equation10)
{
    EXPECT_EQ(core::possibleCrps(4), 6u);
    EXPECT_EQ(core::possibleCrps(65536), 65536ull * 65535 / 2);
}

TEST(Crp, Table1Values)
{
    // Paper Table 1: daily authentications over 10 years.
    const std::uint64_t lines_4mb = 65536;
    const std::uint64_t lines_32mb = 524288;
    EXPECT_EQ(core::authenticationsPerDay(lines_4mb, 64), 9192u);
    EXPECT_EQ(core::authenticationsPerDay(lines_4mb, 128), 4596u);
    EXPECT_EQ(core::authenticationsPerDay(lines_4mb, 256), 2298u);
    EXPECT_EQ(core::authenticationsPerDay(lines_4mb, 512), 1149u);
    // Exact integer accounting gives 73543 / 588350; the paper's
    // Table 1 prints 73544 / 588350 (rounded vs floored).
    EXPECT_EQ(core::authenticationsPerDay(lines_32mb, 512), 73543u);
    EXPECT_EQ(core::authenticationsPerDay(lines_32mb, 64), 588350u);
}

TEST(Crp, DegenerateInputs)
{
    EXPECT_EQ(core::possibleAuthentications(100, 0), 0u);
    EXPECT_EQ(core::authenticationsPerDay(100, 64, 0), 0u);
}
