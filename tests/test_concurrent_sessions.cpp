/**
 * @file
 * Integration: multiple devices interleaving authentications through
 * one server, each over its own channel (one connection per client,
 * as a real deployment would have) -- the server's nonce-based
 * session state must keep the exchanges independent, and interleaved
 * remaps must not cross wires.
 */

#include <memory>

#include <gtest/gtest.h>

#include "server/server.hpp"
#include "sim/chip.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;

namespace {

struct Device
{
    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
    proto::InMemoryChannel channel;
    std::unique_ptr<proto::ServerEndpoint> serverEnd;
    std::unique_ptr<srv::DeviceAgent> agent;
};

} // namespace

class ConcurrentSessions : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        srv::ServerConfig scfg;
        scfg.challengeBits = 64;
        scfg.verifier.pIntra = 0.08;
        server = std::make_unique<srv::AuthenticationServer>(scfg, 4);

        for (std::uint64_t i = 0; i < 3; ++i) {
            sim::ChipConfig cfg;
            cfg.cacheBytes = 1024 * 1024;
            auto &dev = devices[i];
            dev.chip = std::make_unique<sim::SimulatedChip>(
                cfg, 7000 + i);
            dev.machine = std::make_unique<fw::SimulatedMachine>(2);
            fw::ClientConfig ccfg;
            ccfg.selfTestAttempts = 8;
            dev.client = std::make_unique<fw::AuthenticacheClient>(
                *dev.chip, *dev.machine, ccfg);
            dev.client->boot();
            auto levels =
                srv::defaultChallengeLevels(*dev.client, 1);
            server->enroll(
                i + 1, *dev.client, levels,
                {srv::defaultReservedLevel(*dev.client)});
            dev.serverEnd = std::make_unique<proto::ServerEndpoint>(
                dev.channel);
            dev.agent = std::make_unique<srv::DeviceAgent>(
                i + 1, *dev.client,
                proto::ClientEndpoint(dev.channel));
        }
    }

    /** Pump every connection once, server side then device side. */
    void
    pumpEverything()
    {
        bool progress = true;
        while (progress) {
            progress = false;
            for (auto &dev : devices) {
                progress |= server->pumpOnce(*dev.serverEnd);
                progress |= dev.agent->pumpOnce();
            }
        }
    }

    std::unique_ptr<srv::AuthenticationServer> server;
    Device devices[3];
};

TEST_F(ConcurrentSessions, InterleavedAuthenticationsStayIndependent)
{
    // All three devices request before any response is processed.
    for (auto &dev : devices)
        dev.agent->requestAuthentication();

    // Server issues all three challenges first, then the devices
    // answer in a scrambled order.
    for (auto &dev : devices)
        server->pumpOnce(*dev.serverEnd);
    devices[2].agent->pumpOnce(); // Answers its challenge.
    devices[0].agent->pumpOnce();
    devices[1].agent->pumpOnce();
    pumpEverything();

    for (auto &dev : devices) {
        ASSERT_TRUE(dev.agent->lastDecision().has_value());
        EXPECT_TRUE(dev.agent->lastDecision()->accepted);
    }
    EXPECT_EQ(server->reports().size(), 3u);
}

TEST_F(ConcurrentSessions, RemapAndAuthInterleave)
{
    // Device 1 remaps while devices 2 and 3 authenticate.
    server->startRemap(1, *devices[0].serverEnd);
    devices[1].agent->requestAuthentication();
    devices[2].agent->requestAuthentication();
    pumpEverything();

    EXPECT_EQ(server->remapsCommitted(), 1u);
    ASSERT_TRUE(devices[1].agent->lastDecision().has_value());
    EXPECT_TRUE(devices[1].agent->lastDecision()->accepted);
    ASSERT_TRUE(devices[2].agent->lastDecision().has_value());
    EXPECT_TRUE(devices[2].agent->lastDecision()->accepted);

    // Device 1's rotated key still authenticates.
    devices[0].agent->requestAuthentication();
    srv::runExchange(*server, *devices[0].serverEnd,
                     *devices[0].agent);
    ASSERT_TRUE(devices[0].agent->lastDecision().has_value());
    EXPECT_TRUE(devices[0].agent->lastDecision()->accepted);
}

TEST_F(ConcurrentSessions, CrossDeviceResponseRejected)
{
    // Device 1 requests; device 2 tries to answer device 1's
    // challenge with its own silicon: nonce matches but the response
    // comes from the wrong fingerprint.
    devices[0].agent->requestAuthentication();
    server->pumpAll(*devices[0].serverEnd);

    auto msg = proto::ClientEndpoint(devices[0].channel).receive();
    ASSERT_TRUE(msg.has_value());
    auto *ch = std::get_if<proto::ChallengeMsg>(&*msg);
    ASSERT_NE(ch, nullptr);

    // Device 2 evaluates device 1's challenge (its floor may differ;
    // abort also counts as a failed hijack).
    auto outcome = devices[1].client->authenticate(ch->challenge);
    if (outcome.ok()) {
        proto::ResponseMsg resp;
        resp.nonce = ch->nonce;
        resp.response = std::move(outcome.response);
        proto::ClientEndpoint(devices[0].channel).send(resp);
        server->pumpAll(*devices[0].serverEnd);
        devices[0].agent->pumpAll();
        ASSERT_TRUE(devices[0].agent->lastDecision().has_value());
        EXPECT_FALSE(devices[0].agent->lastDecision()->accepted);
    }
}
