/**
 * @file
 * Differential property fuzz for the nearest-error implementations:
 * nearestErrorBrute (reference), ErrorIndex::nearest,
 * nearestErrorScan at every supported SIMD width, and
 * ErrorIndex::nearestBatch at every width -- all must agree on
 * found/distance/coordinate, including equal-distance ties, on
 * randomized planes and on the degenerate geometries (empty plane,
 * single error, one-way plane, everything in one row).
 *
 * Also pins the spiralSearch contract of nearest.hpp: distances
 * always agree with the map-side searches; the coordinate follows
 * the client's clockwise-first tie rule, so it is only asserted when
 * the nearest error is unique.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/challenge.hpp"
#include "core/error_index.hpp"
#include "core/nearest.hpp"
#include "core/nearest_scan.hpp"
#include "mc/mapgen.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace mc = authenticache::mc;
namespace util = authenticache::util;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(64 * 1024); // 128 sets x 8 ways.

sim::LinePoint
randomPoint(const sim::CacheGeometry &geom, Rng &rng)
{
    return geom.pointOf(rng.nextBelow(geom.lines()));
}

/**
 * Assert every implementation returns the brute answer for one
 * query, at every SIMD width the host supports.
 */
void
expectAllAgree(const core::ErrorPlane &plane,
               const core::ErrorIndex &index,
               const sim::LinePoint &from)
{
    const auto brute = core::nearestErrorBrute(plane, from);

    const auto indexed = index.nearest(from);
    ASSERT_EQ(indexed.found, brute.found)
        << "index.nearest at (" << from.set << "," << from.way << ")";
    if (brute.found) {
        EXPECT_EQ(indexed.distance, brute.distance);
        EXPECT_EQ(indexed.at, brute.at);
    }

    core::NearestScratch scratch;
    for (util::SimdLevel level : util::supportedSimdLevels()) {
        const auto scan = core::nearestErrorScan(plane, from, level);
        ASSERT_EQ(scan.found, brute.found)
            << "scan @" << util::simdLevelName(level) << " at ("
            << from.set << "," << from.way << ")";
        if (brute.found) {
            EXPECT_EQ(scan.distance, brute.distance)
                << "scan @" << util::simdLevelName(level);
            EXPECT_EQ(scan.at, brute.at)
                << "scan @" << util::simdLevelName(level);
        }
        // The scan examines every error point exactly once.
        EXPECT_EQ(scan.cellsExamined, plane.errorCount());

        core::NearestResult batched;
        index.nearestBatch({&from, 1}, {&batched, 1}, scratch, level);
        ASSERT_EQ(batched.found, brute.found)
            << "batch @" << util::simdLevelName(level);
        if (brute.found) {
            EXPECT_EQ(batched.distance, brute.distance)
                << "batch @" << util::simdLevelName(level);
            EXPECT_EQ(batched.at, brute.at)
                << "batch @" << util::simdLevelName(level);
        }
    }
}

} // namespace

TEST(NearestScan, EmptyPlane)
{
    core::ErrorPlane plane(kGeom);
    core::ErrorIndex index(plane);
    for (util::SimdLevel level : util::supportedSimdLevels()) {
        auto r = core::nearestErrorScan(plane, {5, 3}, level);
        EXPECT_FALSE(r.found);
        EXPECT_EQ(r.cellsExamined, 0u);
    }
    expectAllAgree(plane, index, {0, 0});
    expectAllAgree(plane, index, {kGeom.sets() - 1, kGeom.ways() - 1});
}

TEST(NearestScan, SingleError)
{
    core::ErrorPlane plane(kGeom);
    plane.add({100, 2});
    core::ErrorIndex index(plane);
    for (auto from : {sim::LinePoint{100, 2}, sim::LinePoint{0, 0},
                      sim::LinePoint{127, 7}, sim::LinePoint{100, 0},
                      sim::LinePoint{0, 2}}) {
        expectAllAgree(plane, index, from);
    }
}

TEST(NearestScan, ForcedEqualDistanceTies)
{
    // A diamond of errors all at distance 3 from (50, 4): the
    // lexicographically smallest, (47, 4), must win at every width.
    core::ErrorPlane plane(kGeom);
    plane.add({47, 4});
    plane.add({53, 4});
    plane.add({50, 1});
    plane.add({50, 7});
    plane.add({48, 2});
    plane.add({52, 6});
    core::ErrorIndex index(plane);
    const sim::LinePoint q{50, 4};
    for (util::SimdLevel level : util::supportedSimdLevels()) {
        auto r = core::nearestErrorScan(plane, q, level);
        ASSERT_TRUE(r.found);
        EXPECT_EQ(r.distance, 3u);
        EXPECT_EQ(r.at, (sim::LinePoint{47, 4}))
            << "@" << util::simdLevelName(level);
    }
    expectAllAgree(plane, index, q);
}

TEST(NearestScan, OneWayGeometry)
{
    // ways = 1 exercises the single-row binary-search path and the
    // scan's way-delta arithmetic with all-equal ways.
    const sim::CacheGeometry geom(8 * 1024, 64, 1);
    Rng rng(0x1A1);
    for (std::size_t errors : {1u, 2u, 9u, 40u}) {
        auto plane = mc::randomPlane(geom, errors, rng);
        core::ErrorIndex index(plane);
        for (int q = 0; q < 60; ++q)
            expectAllAgree(plane, index, randomPoint(geom, rng));
        expectAllAgree(plane, index, {0, 0});
        expectAllAgree(plane, index, {geom.sets() - 1, 0});
    }
}

TEST(NearestScan, SingleRowPlane)
{
    // Every error in one way row: all other rows are empty, the
    // sparse-row skip path in ErrorIndex and lane-tail handling in
    // the kernels.
    core::ErrorPlane plane(kGeom);
    for (std::uint32_t set = 3; set < 120; set += 7)
        plane.add({set, 5});
    core::ErrorIndex index(plane);
    Rng rng(0x5107);
    for (int q = 0; q < 100; ++q)
        expectAllAgree(plane, index, randomPoint(kGeom, rng));
}

TEST(NearestScan, DifferentialFuzzRandomPlanes)
{
    Rng rng(0xF022);
    // Error counts straddle the SIMD lane widths (1..8 cover every
    // partial-vector tail; the large counts exercise full vectors).
    for (std::size_t errors :
         {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 60u, 333u,
          1000u}) {
        auto plane = mc::randomPlane(kGeom, errors, rng);
        core::ErrorIndex index(plane);
        for (int q = 0; q < 40; ++q)
            expectAllAgree(plane, index, randomPoint(kGeom, rng));
        expectAllAgree(plane, index, {0, 0});
        expectAllAgree(plane, index, {kGeom.sets() - 1, 0});
        expectAllAgree(plane, index, {0, kGeom.ways() - 1});
        expectAllAgree(plane, index,
                       {kGeom.sets() - 1, kGeom.ways() - 1});
    }
}

TEST(NearestScan, BatchMatchesSequentialQueries)
{
    Rng rng(0xBA7C);
    auto plane = mc::randomPlane(kGeom, 200, rng);
    core::ErrorIndex index(plane);

    std::vector<sim::LinePoint> queries;
    for (int q = 0; q < 128; ++q)
        queries.push_back(randomPoint(kGeom, rng));

    core::NearestScratch scratch;
    std::vector<core::NearestResult> batched(queries.size());
    for (util::SimdLevel level : util::supportedSimdLevels()) {
        index.nearestBatch(queries, batched, scratch, level);
        for (std::size_t i = 0; i < queries.size(); ++i) {
            auto one = index.nearest(queries[i]);
            ASSERT_EQ(batched[i].found, one.found);
            EXPECT_EQ(batched[i].distance, one.distance);
            EXPECT_EQ(batched[i].at, one.at);
        }
    }
    // Steady state: the second batch through the same scratch must
    // not grow the arena (no per-call heap traffic).
    index.nearestBatch(queries, batched, scratch);
    const std::size_t blocks = scratch.arena.blockCount();
    index.nearestBatch(queries, batched, scratch);
    EXPECT_EQ(scratch.arena.blockCount(), blocks);
    EXPECT_EQ(blocks, 1u);
}

TEST(NearestScan, ManhattanBatchAllWidths)
{
    Rng rng(0xD157);
    const std::size_t n = 203; // Odd size: every kernel tail runs.
    std::vector<std::uint32_t> sets(n), ways(n);
    for (std::size_t i = 0; i < n; ++i) {
        sets[i] = static_cast<std::uint32_t>(rng.nextBelow(100000));
        ways[i] = static_cast<std::uint32_t>(rng.nextBelow(64));
    }
    const sim::LinePoint from{51234, 17};

    std::vector<std::uint32_t> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t dx = sets[i] > from.set ? sets[i] - from.set
                                              : from.set - sets[i];
        std::uint32_t dy = ways[i] > from.way ? ways[i] - from.way
                                              : from.way - ways[i];
        expected[i] = dx + dy;
    }

    std::vector<std::uint32_t> out(n);
    for (util::SimdLevel level : util::supportedSimdLevels()) {
        std::fill(out.begin(), out.end(), 0xFFFFFFFFu);
        core::manhattanBatch(sets.data(), ways.data(), n, from,
                             out.data(), level);
        EXPECT_EQ(out, expected)
            << "@" << util::simdLevelName(level);
    }
}

TEST(NearestScan, SpiralDistanceAgreesWithMapSearches)
{
    // The client-side spiral probes cells in exact distance order, so
    // its distance always matches brute/index/scan on an equal error
    // set; its coordinate follows the clockwise-first tie rule and is
    // only pinned when the nearest error is unique (nearest.hpp).
    Rng rng(0x5B1A);
    const std::uint64_t max_r = core::maxSearchRadius(kGeom);
    for (std::size_t errors : {1u, 5u, 80u}) {
        auto plane = mc::randomPlane(kGeom, errors, rng);
        core::ErrorIndex index(plane);
        for (int q = 0; q < 30; ++q) {
            auto from = randomPoint(kGeom, rng);
            auto brute = core::nearestErrorBrute(plane, from);
            auto spiral = core::spiralSearch(
                kGeom, from, max_r,
                [&](const sim::LinePoint &p) {
                    return plane.contains(p);
                });
            ASSERT_EQ(spiral.found, brute.found);
            ASSERT_TRUE(spiral.found);
            EXPECT_EQ(spiral.distance, brute.distance);
            EXPECT_EQ(spiral.distance,
                      index.nearest(from).distance);
            for (util::SimdLevel level :
                 util::supportedSimdLevels()) {
                EXPECT_EQ(
                    spiral.distance,
                    core::nearestErrorScan(plane, from, level)
                        .distance);
            }

            // Unique nearest error => identical coordinate too.
            std::size_t at_min = 0;
            for (const auto &e : plane.errors()) {
                if (sim::manhattan(e, from) == brute.distance)
                    ++at_min;
            }
            if (at_min == 1)
                EXPECT_EQ(spiral.at, brute.at);
        }
    }
}

TEST(NearestScan, CellsExaminedUnifiedAccounting)
{
    // nearest.hpp's unified definition: the brute scan and the SIMD
    // scan examine every error point exactly once; the index
    // examines at most two flank candidates per way row; the batch
    // path examines every gathered flank (no row pruning), so its
    // count is >= the sequential index's and <= 2 * ways.
    Rng rng(0xCE11);
    auto plane = mc::randomPlane(kGeom, 300, rng);
    core::ErrorIndex index(plane);
    core::NearestScratch scratch;
    for (int q = 0; q < 50; ++q) {
        auto from = randomPoint(kGeom, rng);
        auto brute = core::nearestErrorBrute(plane, from);
        EXPECT_EQ(brute.cellsExamined, plane.errorCount());
        for (util::SimdLevel level : util::supportedSimdLevels()) {
            EXPECT_EQ(
                core::nearestErrorScan(plane, from, level)
                    .cellsExamined,
                plane.errorCount());
        }
        auto indexed = index.nearest(from);
        EXPECT_LE(indexed.cellsExamined, 2ull * kGeom.ways());
        core::NearestResult batched;
        index.nearestBatch({&from, 1}, {&batched, 1}, scratch);
        EXPECT_GE(batched.cellsExamined, indexed.cellsExamined);
        EXPECT_LE(batched.cellsExamined, 2ull * kGeom.ways());
    }
}

TEST(NearestScan, EvaluateIndexedMatchesEvaluate)
{
    // The server's batched expected-response path must be
    // bit-identical to the reference evaluation at every width.
    Rng rng(0xEA17);
    core::ErrorMap map = mc::randomErrorMap(kGeom, 700, 60, rng);
    auto indexes = core::buildErrorIndexes(map);
    core::EvalScratch scratch;
    for (int round = 0; round < 20; ++round) {
        auto challenge =
            core::randomChallenge(kGeom, 700, 64, rng);
        auto reference = core::evaluate(map, challenge);
        for (util::SimdLevel level : util::supportedSimdLevels()) {
            auto fast = core::evaluateIndexed(indexes, challenge,
                                              scratch, level);
            EXPECT_EQ(fast, reference)
                << "@" << util::simdLevelName(level);
        }
    }
}
