/**
 * @file
 * Tests for the PUF quality metrics (Eq 1-2, 5-6) and the
 * identifiability machinery (Eq 3-4, EER threshold).
 */

#include <gtest/gtest.h>

#include "metrics/identifiability.hpp"
#include "metrics/quality.hpp"
#include "util/rng.hpp"

namespace m = authenticache::metrics;
using authenticache::util::BitVec;
using authenticache::util::Rng;

namespace {

BitVec
randomResponse(std::size_t bits, Rng &rng)
{
    BitVec v(bits);
    for (std::size_t i = 0; i < bits; ++i)
        v.set(i, rng.nextBool());
    return v;
}

} // namespace

TEST(Uniqueness, TwoChipsHandValue)
{
    // Two 4-bit responses differing in 2 bits: uniqueness = 50%.
    std::vector<BitVec> r{BitVec::fromString("0011"),
                          BitVec::fromString("0101")};
    EXPECT_DOUBLE_EQ(m::uniqueness(r), 50.0);
}

TEST(Uniqueness, IdenticalChipsZero)
{
    std::vector<BitVec> r{BitVec::fromString("1010"),
                          BitVec::fromString("1010"),
                          BitVec::fromString("1010")};
    EXPECT_DOUBLE_EQ(m::uniqueness(r), 0.0);
}

TEST(Uniqueness, RandomChipsNearIdeal)
{
    Rng rng(1);
    std::vector<BitVec> r;
    for (int i = 0; i < 20; ++i)
        r.push_back(randomResponse(256, rng));
    EXPECT_NEAR(m::uniqueness(r), 50.0, 3.0);
}

TEST(Uniqueness, Validation)
{
    std::vector<BitVec> one{BitVec::fromString("1")};
    EXPECT_THROW(m::uniqueness(one), std::invalid_argument);
    std::vector<BitVec> mismatch{BitVec::fromString("10"),
                                 BitVec::fromString("101")};
    EXPECT_THROW(m::uniqueness(mismatch), std::invalid_argument);
    EXPECT_THROW(m::uniqueness({}), std::invalid_argument);
}

TEST(Reliability, PerfectSamples)
{
    BitVec ref = BitVec::fromString("110010");
    std::vector<BitVec> samples{ref, ref, ref};
    EXPECT_DOUBLE_EQ(m::reliability(ref, samples), 100.0);
}

TEST(Reliability, KnownDegradation)
{
    BitVec ref = BitVec::fromString("11110000");
    BitVec one_flip = ref;
    one_flip.flip(0);
    // One flip in 8 bits over one sample: 100 - 12.5 = 87.5%.
    EXPECT_DOUBLE_EQ(m::reliability(ref, {one_flip}), 87.5);
    // Averaged with a perfect sample: 93.75%.
    EXPECT_DOUBLE_EQ(m::reliability(ref, {one_flip, ref}), 93.75);
}

TEST(Reliability, Validation)
{
    BitVec ref = BitVec::fromString("10");
    EXPECT_THROW(m::reliability(ref, {}), std::invalid_argument);
    EXPECT_THROW(m::reliability(ref, {BitVec::fromString("100")}),
                 std::invalid_argument);
}

TEST(Uniformity, HandValues)
{
    EXPECT_DOUBLE_EQ(m::uniformity(BitVec::fromString("1100")), 50.0);
    EXPECT_DOUBLE_EQ(m::uniformity(BitVec::fromString("1111")), 100.0);
    EXPECT_DOUBLE_EQ(m::uniformity(BitVec::fromString("0000")), 0.0);
    EXPECT_THROW(m::uniformity(BitVec()), std::invalid_argument);
}

TEST(Uniformity, MeanAcrossResponses)
{
    std::vector<BitVec> r{BitVec::fromString("1111"),
                          BitVec::fromString("0000")};
    EXPECT_DOUBLE_EQ(m::uniformity(r), 50.0);
}

TEST(BitAliasing, PerPositionValues)
{
    std::vector<BitVec> r{BitVec::fromString("10"),
                          BitVec::fromString("11"),
                          BitVec::fromString("10"),
                          BitVec::fromString("11")};
    auto aliasing = m::bitAliasing(r);
    ASSERT_EQ(aliasing.size(), 2u);
    EXPECT_DOUBLE_EQ(aliasing[0], 100.0);
    EXPECT_DOUBLE_EQ(aliasing[1], 50.0);
}

TEST(BitAliasing, DeviationFromIdeal)
{
    std::vector<BitVec> r{BitVec::fromString("10"),
                          BitVec::fromString("11")};
    // Position 0: 100% (dev 50); position 1: 50% (dev 0) -> mean 25.
    EXPECT_DOUBLE_EQ(m::bitAliasingDeviation(r), 25.0);
}

TEST(Identifiability, FarIsBinomialCdf)
{
    // FAR(t) with p_inter = 0.5 equals the binomial CDF directly.
    EXPECT_NEAR(m::falseAcceptanceRate(5, 10, 0.5), 0.623046875,
                1e-9);
    EXPECT_NEAR(m::falseRejectionRate(10, 10, 0.1), 0.0, 1e-12);
}

TEST(Identifiability, FarMonotoneInThreshold)
{
    double prev = -1.0;
    for (std::int64_t t = 0; t <= 64; t += 8) {
        double far = m::falseAcceptanceRate(t, 64, 0.5);
        EXPECT_GE(far, prev);
        prev = far;
    }
}

TEST(Identifiability, FrrMonotoneDecreasing)
{
    double prev = 2.0;
    for (std::int64_t t = 0; t <= 64; t += 8) {
        double frr = m::falseRejectionRate(t, 64, 0.06);
        EXPECT_LE(frr, prev);
        prev = frr;
    }
}

TEST(Identifiability, EerBalancesRates)
{
    auto choice = m::eerThreshold(128, 0.5, 0.06);
    // The threshold sits between the intra mean (7.7) and the inter
    // mean (64).
    EXPECT_GT(choice.threshold, 8);
    EXPECT_LT(choice.threshold, 64);
    // Within one step of the threshold, the max rate only gets worse.
    auto below = m::eerThreshold(128, 0.5, 0.06);
    double at = choice.errorRate();
    double up =
        std::max(m::falseAcceptanceRate(choice.threshold + 1, 128, 0.5),
                 m::falseRejectionRate(choice.threshold + 1, 128, 0.06));
    double down =
        std::max(m::falseAcceptanceRate(choice.threshold - 1, 128, 0.5),
                 m::falseRejectionRate(choice.threshold - 1, 128, 0.06));
    EXPECT_LE(at, up);
    EXPECT_LE(at, down);
    EXPECT_EQ(below.threshold, choice.threshold);
}

TEST(Identifiability, PaperScaleRatesAreTiny)
{
    // 512-bit responses at p_intra = 6%: misidentification far below
    // 1 ppm, which is why the paper's Fig 9 distributions at 10%
    // noise show "virtually no overlap".
    double rate = m::misidentificationRate(512, 0.5, 0.06);
    EXPECT_LT(rate, 1e-6);
    EXPECT_GT(rate, 0.0);
}

TEST(Identifiability, LargerResponsesSeparateBetter)
{
    double r64 = m::misidentificationRate(64, 0.5, 0.15);
    double r512 = m::misidentificationRate(512, 0.5, 0.15);
    EXPECT_LT(r512, r64);
}

TEST(Identifiability, HigherNoiseWorsensRate)
{
    double clean = m::misidentificationRate(128, 0.5, 0.05);
    double noisy = m::misidentificationRate(128, 0.5, 0.25);
    EXPECT_LT(clean, noisy);
}
