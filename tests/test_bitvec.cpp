/**
 * @file
 * Tests for the compact bit vector.
 */

#include <gtest/gtest.h>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

using authenticache::util::BitVec;
using authenticache::util::Rng;

TEST(BitVec, StartsCleared)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.popcount(), 0u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetAndGetAcrossWordBoundaries)
{
    BitVec v(130);
    for (std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) {
        v.set(i, true);
        EXPECT_TRUE(v.get(i));
    }
    EXPECT_EQ(v.popcount(), 7u);
    v.set(64, false);
    EXPECT_FALSE(v.get(64));
    EXPECT_EQ(v.popcount(), 6u);
}

TEST(BitVec, PushBackGrows)
{
    BitVec v;
    for (int i = 0; i < 100; ++i)
        v.pushBack(i % 3 == 0);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.popcount(), 34u);
    EXPECT_TRUE(v.get(0));
    EXPECT_FALSE(v.get(1));
    EXPECT_TRUE(v.get(99));
}

TEST(BitVec, FlipTogglesBit)
{
    BitVec v(10);
    v.flip(3);
    EXPECT_TRUE(v.get(3));
    v.flip(3);
    EXPECT_FALSE(v.get(3));
}

TEST(BitVec, HammingDistanceKnown)
{
    BitVec a = BitVec::fromString("10110010");
    BitVec b = BitVec::fromString("10011010");
    EXPECT_EQ(a.hammingDistance(b), 2u);
    EXPECT_EQ(a.hammingDistance(a), 0u);
}

TEST(BitVec, XorMatchesHamming)
{
    Rng rng(99);
    BitVec a(256);
    BitVec b(256);
    for (std::size_t i = 0; i < 256; ++i) {
        a.set(i, rng.nextBool());
        b.set(i, rng.nextBool());
    }
    EXPECT_EQ((a ^ b).popcount(), a.hammingDistance(b));
}

TEST(BitVec, EqualityAndClear)
{
    BitVec a = BitVec::fromString("1101");
    BitVec b = BitVec::fromString("1101");
    EXPECT_EQ(a, b);
    b.flip(0);
    EXPECT_NE(a, b);
    a.clear();
    EXPECT_EQ(a.popcount(), 0u);
    EXPECT_EQ(a.size(), 4u);
}

TEST(BitVec, StringRoundTrip)
{
    std::string s = "101100111000101";
    EXPECT_EQ(BitVec::fromString(s).toString(), s);
}

TEST(BitVec, FromStringRejectsGarbage)
{
    EXPECT_THROW(BitVec::fromString("10x1"), std::invalid_argument);
}

TEST(BitVec, WordsRoundTrip)
{
    Rng rng(7);
    BitVec a(200);
    for (std::size_t i = 0; i < 200; ++i)
        a.set(i, rng.nextBool());
    BitVec b = BitVec::fromWords(a.words(), a.size());
    EXPECT_EQ(a, b);
}

TEST(BitVec, FromWordsValidatesLength)
{
    std::vector<std::uint64_t> words{0, 0};
    EXPECT_THROW(BitVec::fromWords(words, 300), std::invalid_argument);
}

TEST(BitVec, FromWordsMasksDirtyTail)
{
    // Stray bits beyond nbits must not affect popcount or equality.
    std::vector<std::uint64_t> words{~0ull};
    BitVec v = BitVec::fromWords(words, 4);
    EXPECT_EQ(v.popcount(), 4u);
}
