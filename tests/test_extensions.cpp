/**
 * @file
 * Tests for the extension features: multi-voltage challenges (the
 * paper's Eq 7 with V != V', left as future work in its prototype)
 * and PUF-backed key generation (Sec 7.3).
 */

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "firmware/keygen.hpp"
#include "mc/mapgen.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace core = authenticache::core;
namespace crypto = authenticache::crypto;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(512 * 1024);

srv::DeviceRecord
twoLevelRecord(std::uint64_t id, std::uint64_t seed)
{
    Rng rng(seed);
    auto map = authenticache::mc::randomErrorMap(kGeom, 700, 30, rng);
    auto more =
        authenticache::mc::randomErrorMap(kGeom, 690, 30, rng);
    for (const auto &e : more.plane(690).errors())
        map.plane(690).add(e);
    return srv::DeviceRecord(id, std::move(map), {700, 690}, {});
}

} // namespace

TEST(MultiLevel, GeneratesMixedEndpoints)
{
    auto record = twoLevelRecord(1, 5);
    srv::ChallengeGenerator gen(Rng(6));
    auto out = gen.generateMultiLevel(record, 128);
    EXPECT_EQ(out.challenge.size(), 128u);

    std::set<core::VddMv> seen;
    std::size_t mixed_bits = 0;
    for (const auto &bit : out.challenge.bits) {
        seen.insert(bit.a.vddMv);
        seen.insert(bit.b.vddMv);
        mixed_bits += bit.a.vddMv != bit.b.vddMv;
    }
    EXPECT_EQ(seen.size(), 2u);
    // ~half the bits should pair different levels.
    EXPECT_GT(mixed_bits, 32u);
    EXPECT_LT(mixed_bits, 96u);
}

TEST(MultiLevel, ExpectedMatchesIdealEvaluation)
{
    auto record = twoLevelRecord(1, 7);
    record.setMapKey(crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("ml"))));
    srv::ChallengeGenerator gen(Rng(8));
    auto out = gen.generateMultiLevel(record, 64);

    core::LogicalRemap remap(record.mapKey(), kGeom);
    auto logical = remap.mapErrorMap(record.physicalMap());
    EXPECT_EQ(core::evaluate(logical, out.challenge), out.expected);
}

TEST(MultiLevel, RetiresMixedPairsBothOrders)
{
    auto record = twoLevelRecord(1, 9);
    EXPECT_TRUE(record.consumeMixedPair(700, 10, 690, 20));
    EXPECT_FALSE(record.consumeMixedPair(700, 10, 690, 20));
    EXPECT_FALSE(record.consumeMixedPair(690, 20, 700, 10));
    EXPECT_EQ(record.consumedMixedCount(), 1u);

    // Same line at the same level collapses to the single-level rule.
    EXPECT_TRUE(record.consumeMixedPair(700, 1, 700, 2));
    EXPECT_FALSE(record.pairAvailable(700, 2, 1));
}

TEST(MultiLevel, RequiresTwoLevels)
{
    Rng rng(11);
    auto map = authenticache::mc::randomErrorMap(kGeom, 700, 20, rng);
    srv::DeviceRecord record(1, std::move(map), {700}, {});
    srv::ChallengeGenerator gen(Rng(12));
    EXPECT_THROW(gen.generateMultiLevel(record, 16),
                 std::invalid_argument);
}

class MultiLevelIntegration : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::ChipConfig cfg;
        cfg.cacheBytes = 1024 * 1024;
        chip = std::make_unique<sim::SimulatedChip>(cfg, 8080);
        machine = std::make_unique<fw::SimulatedMachine>(2);
        fw::ClientConfig client_cfg;
        client_cfg.selfTestAttempts = 8;
        client = std::make_unique<fw::AuthenticacheClient>(
            *chip, *machine, client_cfg);
        client->boot();
    }

    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
};

TEST_F(MultiLevelIntegration, EndToEndAuthentication)
{
    srv::ServerConfig server_cfg;
    server_cfg.challengeBits = 128;
    server_cfg.multiLevelChallenges = true;
    server_cfg.verifier.pIntra = 0.08;
    srv::AuthenticationServer server(server_cfg, 777);

    auto levels = srv::defaultChallengeLevels(*client, 3);
    auto reserved = srv::defaultReservedLevel(*client);
    server.enroll(5, *client, levels, {reserved});

    proto::InMemoryChannel channel;
    proto::ServerEndpoint server_end(channel);
    srv::DeviceAgent agent(5, *client,
                           proto::ClientEndpoint(channel));
    agent.requestAuthentication();
    srv::runExchange(server, server_end, agent);

    ASSERT_TRUE(agent.lastDecision().has_value())
        << (agent.errors().empty() ? "no decision"
                                   : agent.errors().front());
    EXPECT_TRUE(agent.lastDecision()->accepted);
    EXPECT_GT(server.database().at(5).consumedMixedCount(), 0u);
}

class KeygenTest : public MultiLevelIntegration
{
};

TEST_F(KeygenTest, ProvisionAndRegenerate)
{
    fw::PufKeyGenerator keygen(*client);
    auto level = static_cast<core::VddMv>(client->floorMv() + 10.0);

    Rng rng(13);
    auto provisioned = keygen.provision(level, rng);
    EXPECT_EQ(provisioned.slot.challenge.size(),
              keygen.responseBits());

    // Immediate regeneration reproduces the exact key.
    auto key = keygen.regenerate(provisioned.slot);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, provisioned.key);
}

TEST_F(KeygenTest, SurvivesModerateEnvironmentalDrift)
{
    fw::PufKeyGenerator keygen(*client);
    auto level = static_cast<core::VddMv>(client->floorMv() + 10.0);
    Rng rng(17);
    auto provisioned = keygen.provision(level, rng);

    sim::Conditions warm;
    warm.temperatureDeltaC = 10.0;
    chip->setConditions(warm);
    auto key = keygen.regenerate(provisioned.slot);
    chip->setConditions(sim::Conditions::nominal());
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, provisioned.key);
}

TEST_F(KeygenTest, DistinctSlotsDistinctKeys)
{
    fw::PufKeyGenerator keygen(*client);
    auto level = static_cast<core::VddMv>(client->floorMv() + 10.0);
    Rng rng(19);
    auto k1 = keygen.provision(level, rng);
    auto k2 = keygen.provision(level, rng);
    EXPECT_NE(k1.key, k2.key);
}

TEST_F(KeygenTest, WrongDeviceCannotRegenerate)
{
    fw::PufKeyGenerator keygen(*client);
    auto level = static_cast<core::VddMv>(client->floorMv() + 10.0);
    Rng rng(23);
    auto provisioned = keygen.provision(level, rng);

    // A different die, same slot: its response differs in ~half the
    // bits, far beyond BCH correction.
    sim::ChipConfig cfg;
    cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip other_chip(cfg, 9090);
    fw::SimulatedMachine other_machine(2);
    fw::AuthenticacheClient other(other_chip, other_machine);
    other.boot();
    // Only meaningful if the slot's level is reachable on this die.
    if (other.floorMv() <= level) {
        fw::PufKeyGenerator other_keygen(other);
        auto key = other_keygen.regenerate(provisioned.slot);
        if (key.has_value()) {
            EXPECT_NE(*key, provisioned.key);
        }
    }
}

TEST_F(KeygenTest, AbortSurfacesAsFailure)
{
    fw::PufKeyGenerator keygen(*client);
    Rng rng(29);
    auto bad_level =
        static_cast<core::VddMv>(client->floorMv() - 40.0);
    EXPECT_THROW(keygen.provision(bad_level, rng),
                 std::runtime_error);

    fw::KeySlot bogus;
    bogus.challenge = core::randomChallenge(
        chip->geometry(), bad_level, keygen.responseBits(), rng);
    bogus.helper = authenticache::util::BitVec(keygen.responseBits());
    EXPECT_FALSE(keygen.regenerate(bogus).has_value());
}
