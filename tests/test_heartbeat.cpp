/**
 * @file
 * Tests for the continuous-authentication heartbeat subsystem: the
 * trust ledger and its graceful-degradation ladder (step-up ->
 * proactive remap -> forced re-enrollment -> revocation), missed-round
 * scoring, duplicate-proof replay, admin revoke/unlock, and the
 * determinism of drift-driven trust trajectories.
 */

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/server.hpp"
#include "sim/drift.hpp"
#include "substrate/drift_injector.hpp"
#include "substrate_test_util.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
namespace sub = authenticache::substrate;
namespace testutil = authenticache::testutil;
namespace util = authenticache::util;

namespace {

/** A full device + server + agent harness over an in-memory channel. */
struct HeartbeatRig
{
    std::unique_ptr<sub::FingerprintSubstrate> chip;
    fw::SimulatedMachine machine{4};
    fw::AuthenticacheClient client;
    srv::AuthenticationServer server;
    util::SimClock clock;
    proto::InMemoryChannel channel;
    proto::ServerEndpoint serverEnd{channel};
    srv::DeviceAgent agent;

    static fw::ClientConfig clientConfig()
    {
        fw::ClientConfig cfg;
        cfg.selfTestAttempts = 8;
        return cfg;
    }

    explicit HeartbeatRig(const srv::ServerConfig &cfg,
                          std::uint64_t die_seed = 9,
                          std::uint64_t server_seed = 0x48B1)
        : chip(testutil::makeTestSubstrate(die_seed)),
          client(*chip, machine, clientConfig()),
          server(cfg, server_seed),
          agent(die_seed, client, proto::ClientEndpoint(channel))
    {
        client.boot();
        auto levels = srv::defaultChallengeLevels(client, 2);
        auto reserved = srv::defaultReservedLevel(client);
        server.enroll(die_seed, client, levels, {reserved});
        server.bindClock(&clock);
        agent.bindClock(&clock);
    }

    std::uint64_t deviceId() const { return agent_id; }

    void pump()
    {
        bool progress = true;
        while (progress) {
            progress = server.pumpOnce(serverEnd);
            progress |= agent.pumpOnce();
        }
    }

    /** One simulated step: pump, advance, cadence tick, retries. */
    void step(bool pump_agent = true)
    {
        if (pump_agent)
            pump();
        else
            server.pumpAll(serverEnd);
        clock.advance(1);
        server.tickHeartbeats(serverEnd);
        server.tick();
        if (pump_agent)
            agent.tick();
    }

    std::uint64_t agent_id = 9;
};

srv::ServerConfig
baseConfig()
{
    srv::ServerConfig cfg;
    cfg.challengeBits = 128;
    cfg.verifier.pIntra = 0.08;
    return cfg;
}

} // namespace

TEST(Heartbeat, CleanSessionHoldsTrustHigh)
{
    auto cfg = baseConfig();
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);
    for (int s = 0; s < 40; ++s)
        rig.step();

    // A healthy device at nominal conditions oscillates near the
    // ceiling (an occasional marginal round costs a few points) and
    // never slides down the degradation ladder.
    const auto &record = rig.server.database().at(9);
    EXPECT_GE(record.trustScore(), cfg.trust.stepUpBelow);
    EXPECT_FALSE(record.revoked());
    EXPECT_FALSE(record.reenrollRequired());
    EXPECT_EQ(record.remapBudgetUsed(), 0u);
    EXPECT_GT(rig.server.sessions().heartbeatsClean(), 5u);
    EXPECT_LE(rig.server.sessions().heartbeatsFailed(), 1u);
    EXPECT_EQ(rig.server.sessions().revocations(), 0u);
    EXPECT_EQ(rig.server.sessions().activeHeartbeats(), 1u);
    rig.agent.pumpAll(); // Drain any verdict still in flight.
    ASSERT_TRUE(rig.agent.lastTrust().has_value());
    EXPECT_EQ(*rig.agent.lastTrust(), record.trustScore());
    EXPECT_GE(rig.agent.heartbeatsAnswered(), 5u);
}

TEST(Heartbeat, SilentClientDecaysToRevocation)
{
    // Disable the remap/re-enrollment tiers so pure decay reaches the
    // revocation floor: an abandoned (or cloned) session cannot hold
    // trust or burn CRPs forever.
    auto cfg = baseConfig();
    cfg.trust.remapBelow = 0;
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);
    for (int s = 0; s < 60 && rig.server.sessions().revocations() == 0;
         ++s)
        rig.step(/*pump_agent=*/false);

    const auto &record = rig.server.database().at(9);
    EXPECT_TRUE(record.revoked());
    EXPECT_EQ(rig.server.sessions().revocations(), 1u);
    EXPECT_EQ(rig.server.sessions().activeHeartbeats(), 0u);
    EXPECT_GT(rig.server.sessions().heartbeatsFailed(), 2u);
    EXPECT_GT(rig.server.sessions().trustDecays(), 2u);

    // The queued Revoke reaches the agent once it finally pumps.
    rig.agent.pumpAll();
    EXPECT_TRUE(rig.agent.revoked());

    // A revoked device is refused plain authentication too.
    rig.agent.requestAuthentication();
    srv::runExchange(rig.server, rig.serverEnd, rig.agent);
    ASSERT_FALSE(rig.agent.errors().empty());
    EXPECT_EQ(rig.agent.errors().back(), "device revoked");

    // And a fresh heartbeat session is refused.
    rig.server.startHeartbeat(9, rig.serverEnd);
    rig.agent.pumpAll();
    EXPECT_EQ(rig.agent.errors().back(), "device revoked");
}

TEST(Heartbeat, SilentClientWithRemapTiersForcesReenrollment)
{
    // Under the default policy the remap tier catches a decaying
    // session twice (budget 2) before trust can ever cross the
    // revocation floor, so an unresponsive device lands in forced
    // re-enrollment rather than revocation.
    auto cfg = baseConfig();
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);
    for (int s = 0;
         s < 80 && !rig.server.database().at(9).reenrollRequired();
         ++s)
        rig.step(/*pump_agent=*/false);

    const auto &record = rig.server.database().at(9);
    EXPECT_TRUE(record.reenrollRequired());
    EXPECT_FALSE(record.revoked());
    EXPECT_EQ(record.remapBudgetUsed(), cfg.trust.remapBudget);
    EXPECT_EQ(rig.server.sessions().proactiveRemaps(),
              cfg.trust.remapBudget);
    EXPECT_EQ(rig.server.sessions().activeHeartbeats(), 0u);
}

TEST(Heartbeat, AdminUnlockClearsRevocationAndRestoresTrust)
{
    auto cfg = baseConfig();
    HeartbeatRig rig(cfg);
    rig.server.revokeDevice(9);
    EXPECT_TRUE(rig.server.database().at(9).revoked());
    EXPECT_EQ(rig.server.sessions().revocations(), 1u);

    rig.server.unlockDevice(9);
    const auto &record = rig.server.database().at(9);
    EXPECT_FALSE(record.revoked());
    EXPECT_FALSE(record.reenrollRequired());
    EXPECT_EQ(record.trustScore(), cfg.trust.max);
    EXPECT_EQ(rig.server.adminUnlocks(), 1u);

    // And the device authenticates again.
    rig.agent.requestAuthentication();
    srv::runExchange(rig.server, rig.serverEnd, rig.agent);
    ASSERT_TRUE(rig.agent.lastDecision().has_value());
    EXPECT_TRUE(rig.agent.lastDecision()->accepted);
}

TEST(Heartbeat, StepUpSessionsUseFullWidthChallenges)
{
    // A session opened below the step-up threshold issues full-width
    // challenges from the first round.
    auto cfg = baseConfig();
    cfg.trust.initial = cfg.trust.stepUpBelow - 1;
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);

    proto::ClientEndpoint peek(rig.channel);
    auto msg = peek.receive();
    ASSERT_TRUE(msg.has_value());
    auto *hb = std::get_if<proto::Heartbeat>(&*msg);
    ASSERT_NE(hb, nullptr);
    EXPECT_EQ(hb->challenge.size(), cfg.challengeBits);
    EXPECT_EQ(hb->seq, 1u);
}

TEST(Heartbeat, NominalSessionsUseLowCostChallenges)
{
    auto cfg = baseConfig();
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);

    proto::ClientEndpoint peek(rig.channel);
    auto msg = peek.receive();
    ASSERT_TRUE(msg.has_value());
    auto *hb = std::get_if<proto::Heartbeat>(&*msg);
    ASSERT_NE(hb, nullptr);
    EXPECT_EQ(hb->challenge.size(), cfg.trust.heartbeatBits);
    EXPECT_LT(cfg.trust.heartbeatBits, cfg.challengeBits);
}

TEST(Heartbeat, ProactiveRemapFiresAndCompletes)
{
    // Isolate the remap tier: no revocation, a tiny decay per missed
    // round, and an opening trust just above the remap threshold.
    auto cfg = baseConfig();
    cfg.trust.initial = 36;
    cfg.trust.failPenalty = 2;
    cfg.trust.revokeBelow = 0;
    cfg.trust.remapBudget = 1;
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);

    // Miss one round: 36 -> 34 < 35 schedules the remap and grants
    // remapRecovery back.
    for (int s = 0;
         s < 20 && rig.server.sessions().proactiveRemaps() == 0; ++s)
        rig.step(/*pump_agent=*/false);
    EXPECT_EQ(rig.server.sessions().proactiveRemaps(), 1u);
    const auto &record = rig.server.database().at(9);
    EXPECT_EQ(record.remapBudgetUsed(), 1u);
    EXPECT_GE(record.trustScore(), 34u + cfg.trust.remapRecovery -
                                       cfg.trust.failPenalty);

    // The queued RemapRequest completes once the agent pumps.
    for (int s = 0; s < 10; ++s)
        rig.step();
    EXPECT_EQ(rig.agent.remapsProcessed(), 1u);
    EXPECT_EQ(rig.server.remapsCommitted(), 1u);
}

TEST(Heartbeat, BudgetExhaustionForcesReenrollment)
{
    auto cfg = baseConfig();
    cfg.trust.initial = 36;
    cfg.trust.failPenalty = 2;
    cfg.trust.revokeBelow = 0;
    cfg.trust.remapBudget = 0;
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);
    for (int s = 0; s < 20 &&
                    !rig.server.database().at(9).reenrollRequired();
         ++s)
        rig.step(/*pump_agent=*/false);

    const auto &record = rig.server.database().at(9);
    EXPECT_TRUE(record.reenrollRequired());
    EXPECT_FALSE(record.revoked());
    EXPECT_EQ(rig.server.sessions().activeHeartbeats(), 0u);

    // Auth and a fresh heartbeat are both refused until re-enrollment.
    rig.agent.pumpAll();
    rig.agent.requestAuthentication();
    srv::runExchange(rig.server, rig.serverEnd, rig.agent);
    ASSERT_FALSE(rig.agent.errors().empty());
    EXPECT_EQ(rig.agent.errors().back(), "re-enrollment required");

    rig.server.startHeartbeat(9, rig.serverEnd);
    rig.agent.pumpAll();
    EXPECT_EQ(rig.agent.errors().back(), "re-enrollment required");
}

TEST(Heartbeat, DuplicateProofReplaysCachedVerdict)
{
    auto cfg = baseConfig();
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);

    // Answer round 1, capturing the proof frame for replay.
    proto::ClientEndpoint client_end(rig.channel);
    auto msg = client_end.receive();
    ASSERT_TRUE(msg.has_value());
    auto *hb = std::get_if<proto::Heartbeat>(&*msg);
    ASSERT_NE(hb, nullptr);
    auto outcome = rig.client.authenticate(hb->challenge);
    ASSERT_TRUE(outcome.ok());
    proto::HeartbeatProof proof;
    proof.nonce = hb->nonce;
    proof.response = outcome.response;
    client_end.send(proof);
    rig.server.pumpAll(rig.serverEnd);
    const std::uint32_t trust_after =
        rig.server.database().at(9).trustScore();

    // The duplicate replays the cached TrustUpdate and never
    // re-scores the ledger.
    client_end.send(proof);
    rig.server.pumpAll(rig.serverEnd);
    EXPECT_EQ(rig.server.database().at(9).trustScore(), trust_after);
    EXPECT_EQ(rig.server.duplicateCompletions(), 1u);

    auto replay = client_end.receive(); // Original verdict.
    ASSERT_TRUE(replay.has_value());
    auto dup = client_end.receive(); // Replayed verdict.
    ASSERT_TRUE(dup.has_value());
    auto *v1 = std::get_if<proto::TrustUpdate>(&*replay);
    auto *v2 = std::get_if<proto::TrustUpdate>(&*dup);
    ASSERT_NE(v1, nullptr);
    ASSERT_NE(v2, nullptr);
    EXPECT_EQ(v1->trust, v2->trust);
    EXPECT_EQ(v1->nonce, v2->nonce);
}

TEST(Heartbeat, StopTearsDownSession)
{
    auto cfg = baseConfig();
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);
    EXPECT_EQ(rig.server.sessions().activeHeartbeats(), 1u);
    EXPECT_TRUE(rig.server.stopHeartbeat(9));
    EXPECT_FALSE(rig.server.stopHeartbeat(9));
    EXPECT_EQ(rig.server.sessions().activeHeartbeats(), 0u);

    // After the stop, ticking past the old due time scores nothing.
    for (int s = 0; s < 10; ++s)
        rig.step(/*pump_agent=*/false);
    EXPECT_EQ(rig.server.sessions().heartbeatsFailed(), 0u);
}

TEST(Heartbeat, DriftTrajectoryIsDeterministic)
{
    // Two independent rigs with identical seeds and an identical
    // drift schedule must produce byte-identical wire transcripts and
    // identical trust trajectories -- the foundation of the drift
    // sweep's reproducibility gate.
    auto run = [](std::vector<std::uint8_t> &transcript_bytes,
                  std::vector<std::uint32_t> &trust_trajectory) {
        auto cfg = baseConfig();
        HeartbeatRig rig(cfg);
        proto::Transcript transcript;
        rig.channel.attachTranscript(&transcript);

        sim::DriftScheduleConfig dcfg;
        dcfg.rampSteps = 40;
        dcfg.holdSteps = 100;
        dcfg.returnToNominal = false;
        sub::DriftInjector drift(*rig.chip,
                                 sim::DriftSchedule(0xD21F7, 9, dcfg));
        rig.server.startHeartbeat(9, rig.serverEnd);
        for (int s = 0; s < 80; ++s) {
            rig.pump();
            trust_trajectory.push_back(
                rig.server.database().at(9).trustScore());
            rig.clock.advance(1);
            drift.apply(rig.clock.now());
            rig.server.tickHeartbeats(rig.serverEnd);
            rig.server.tick();
            rig.agent.tick();
        }
        for (const auto &entry : transcript.entries())
            transcript_bytes.insert(transcript_bytes.end(),
                                    entry.frame.begin(),
                                    entry.frame.end());
    };

    std::vector<std::uint8_t> bytes_a, bytes_b;
    std::vector<std::uint32_t> trust_a, trust_b;
    run(bytes_a, trust_a);
    run(bytes_b, trust_b);
    EXPECT_EQ(trust_a, trust_b);
    EXPECT_EQ(bytes_a, bytes_b);
    EXPECT_FALSE(bytes_a.empty());
}

TEST(DriftSchedule, PureAndSeedDeterministic)
{
    sim::DriftScheduleConfig cfg;
    cfg.rampSteps = 10;
    cfg.holdSteps = 5;
    cfg.phaseJitterSteps = 4;

    sim::DriftSchedule a(42, 7, cfg);
    sim::DriftSchedule b(42, 7, cfg);
    EXPECT_EQ(a.phaseSteps(), b.phaseSteps());
    EXPECT_EQ(a.peakScale(), b.peakScale());
    for (std::uint64_t step : {0u, 3u, 9u, 14u, 20u, 100u}) {
        auto ca = a.at(step);
        auto cb = b.at(step);
        EXPECT_EQ(ca.temperatureDeltaC, cb.temperatureDeltaC);
        EXPECT_EQ(ca.agingYears, cb.agingYears);
        EXPECT_EQ(ca.measurementSigmaMv, cb.measurementSigmaMv);
    }

    // Distinct devices draw distinct phase/peak jitter (with a
    // non-degenerate config this collides with tiny probability; the
    // chosen seeds do not collide).
    sim::DriftSchedule c(42, 8, cfg);
    EXPECT_TRUE(a.phaseSteps() != c.phaseSteps() ||
                a.peakScale() != c.peakScale());
}

TEST(DriftSchedule, RampHoldAndReturnShape)
{
    sim::DriftScheduleConfig cfg;
    cfg.peakTemperatureDeltaC = 20.0;
    cfg.peakAgingYears = 1.0;
    cfg.peakSigmaMv = 3.0;
    cfg.rampSteps = 10;
    cfg.holdSteps = 4;
    cfg.phaseJitterSteps = 0; // Deterministic phase for shape checks.
    cfg.peakJitter = 0.0;
    sim::DriftSchedule sched(1, 1, cfg);

    auto at0 = sched.at(0);
    EXPECT_EQ(at0.temperatureDeltaC, 0.0);
    EXPECT_EQ(at0.measurementSigmaMv, 1.0);

    auto mid = sched.at(5);
    EXPECT_GT(mid.temperatureDeltaC, 0.0);
    EXPECT_LT(mid.temperatureDeltaC, 20.0);

    auto peak = sched.at(10);
    EXPECT_DOUBLE_EQ(peak.temperatureDeltaC, 20.0);
    EXPECT_DOUBLE_EQ(peak.agingYears, 1.0);
    EXPECT_DOUBLE_EQ(peak.measurementSigmaMv, 3.0);

    auto held = sched.at(14);
    EXPECT_DOUBLE_EQ(held.temperatureDeltaC, 20.0);

    auto returned = sched.at(24);
    EXPECT_DOUBLE_EQ(returned.temperatureDeltaC, 0.0);
    EXPECT_DOUBLE_EQ(returned.measurementSigmaMv, 1.0);

    // Without returnToNominal the excursion persists.
    cfg.returnToNominal = false;
    sim::DriftSchedule hold(1, 1, cfg);
    EXPECT_DOUBLE_EQ(hold.at(1000).temperatureDeltaC, 20.0);
}

TEST(Heartbeat, RevokeMessageRoundTripsThroughAgent)
{
    auto cfg = baseConfig();
    HeartbeatRig rig(cfg);
    rig.server.startHeartbeat(9, rig.serverEnd);
    rig.pump();
    EXPECT_FALSE(rig.agent.revoked());

    rig.server.revokeDevice(9);
    EXPECT_EQ(rig.server.sessions().activeHeartbeats(), 0u);

    // An admin revocation does not stream a Revoke (the session is
    // torn down server-side); the agent discovers it on its next
    // exchange attempt.
    rig.agent.requestAuthentication();
    srv::runExchange(rig.server, rig.serverEnd, rig.agent);
    ASSERT_FALSE(rig.agent.errors().empty());
    EXPECT_EQ(rig.agent.errors().back(), "device revoked");
}
