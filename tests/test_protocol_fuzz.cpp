/**
 * @file
 * Robustness fuzzing: the protocol decoder and the database snapshot
 * loader must never crash, hang, or mis-handle hostile bytes -- every
 * malformed input must surface as DecodeError (or a clean decode of a
 * genuinely valid frame).
 */

#include <gtest/gtest.h>

#include "mc/mapgen.hpp"
#include "protocol/messages.hpp"
#include "server/storage.hpp"
#include "util/rng.hpp"

namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
using authenticache::util::Rng;

namespace {

/** Try decoding; success or DecodeError are both acceptable. */
void
mustNotCrash(std::span<const std::uint8_t> frame)
{
    try {
        (void)proto::decodeMessage(frame);
    } catch (const proto::DecodeError &) {
        // Expected for malformed inputs.
    }
}

std::vector<std::uint8_t>
validFrame(Rng &rng)
{
    const sim::CacheGeometry geom(256 * 1024);
    switch (rng.nextBelow(4)) {
      case 0:
        return proto::encodeMessage(proto::AuthRequest{rng.next()});
      case 1: {
        proto::ChallengeMsg m;
        m.nonce = rng.next();
        m.challenge = core::randomChallenge(
            geom, 700, 1 + rng.nextBelow(64), rng);
        return proto::encodeMessage(m);
      }
      case 2: {
        proto::ResponseMsg m;
        m.nonce = rng.next();
        m.response = authenticache::util::BitVec(64);
        return proto::encodeMessage(m);
      }
      default:
        return proto::encodeMessage(
            proto::ErrorMsg{"fuzz seed frame"});
    }
}

} // namespace

TEST(ProtocolFuzz, RandomBytesNeverCrash)
{
    Rng rng(0xF022);
    for (int trial = 0; trial < 3000; ++trial) {
        std::size_t len = rng.nextBelow(200);
        std::vector<std::uint8_t> blob(len);
        for (auto &b : blob)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        mustNotCrash(blob);
    }
}

TEST(ProtocolFuzz, MutatedValidFramesNeverCrash)
{
    Rng rng(0xF023);
    for (int trial = 0; trial < 2000; ++trial) {
        auto frame = validFrame(rng);
        // Mutate 1-4 bytes.
        std::size_t mutations = 1 + rng.nextBelow(4);
        for (std::size_t m = 0; m < mutations; ++m) {
            std::size_t pos = rng.nextBelow(frame.size());
            frame[pos] =
                static_cast<std::uint8_t>(rng.nextBelow(256));
        }
        mustNotCrash(frame);
    }
}

TEST(ProtocolFuzz, TruncatedAndExtendedFramesNeverCrash)
{
    Rng rng(0xF024);
    for (int trial = 0; trial < 1000; ++trial) {
        auto frame = validFrame(rng);
        if (rng.nextBool()) {
            frame.resize(rng.nextBelow(frame.size() + 1));
        } else {
            std::size_t extra = 1 + rng.nextBelow(16);
            for (std::size_t i = 0; i < extra; ++i)
                frame.push_back(static_cast<std::uint8_t>(
                    rng.nextBelow(256)));
        }
        mustNotCrash(frame);
    }
}

TEST(ProtocolFuzz, LengthFieldLies)
{
    // A frame whose length prefix points far beyond the buffer.
    proto::ByteWriter w;
    w.putU32(0xFFFFFF00u);
    w.putU8(1);
    EXPECT_THROW(proto::decodeMessage(w.bytes()),
                 proto::DecodeError);
}

TEST(SnapshotFuzz, MutatedSnapshotsNeverCrash)
{
    Rng rng(0xF025);
    srv::EnrollmentDatabase db;
    const sim::CacheGeometry geom(256 * 1024);
    auto map = authenticache::mc::randomErrorMap(geom, 700, 20, rng);
    db.enroll(srv::DeviceRecord(1, std::move(map), {700}, {}));
    auto blob = srv::saveDatabase(db);

    for (int trial = 0; trial < 1500; ++trial) {
        auto mutated = blob;
        std::size_t mutations = 1 + rng.nextBelow(6);
        for (std::size_t m = 0; m < mutations; ++m) {
            mutated[rng.nextBelow(mutated.size())] =
                static_cast<std::uint8_t>(rng.nextBelow(256));
        }
        try {
            (void)srv::loadDatabase(mutated);
        } catch (const proto::DecodeError &) {
            // Expected: CRC or structural validation caught it.
        } catch (const std::invalid_argument &) {
            // Acceptable: duplicate-id enrollment from mutated ids.
        }
    }
}

TEST(SnapshotFuzz, RandomBlobsNeverCrash)
{
    Rng rng(0xF026);
    for (int trial = 0; trial < 1000; ++trial) {
        std::size_t len = rng.nextBelow(400);
        std::vector<std::uint8_t> blob(len);
        for (auto &b : blob)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        try {
            (void)srv::loadDatabase(blob);
        } catch (const proto::DecodeError &) {
        }
    }
}
