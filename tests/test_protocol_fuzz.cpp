/**
 * @file
 * Robustness fuzzing: the protocol decoder and the database snapshot
 * loader must never crash, hang, or mis-handle hostile bytes -- every
 * malformed input must surface as DecodeError (or a clean decode of a
 * genuinely valid frame).
 */

#include <gtest/gtest.h>

#include "mc/mapgen.hpp"
#include "protocol/messages.hpp"
#include "server/storage.hpp"
#include "util/rng.hpp"

namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace util = authenticache::util;
using authenticache::util::Rng;

namespace {

/** Try decoding; success or DecodeError are both acceptable. */
void
mustNotCrash(std::span<const std::uint8_t> frame)
{
    try {
        (void)proto::decodeMessage(frame);
    } catch (const proto::DecodeError &) {
        // Expected for malformed inputs.
    }
}

util::BitVec
randomBits(std::size_t n, Rng &rng)
{
    util::BitVec v(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.nextBool())
            v.flip(i);
    }
    return v;
}

/** A random valid instance of any of the 12 message types. */
proto::Message
randomMessage(Rng &rng)
{
    const sim::CacheGeometry geom(256 * 1024);
    switch (rng.nextBelow(12)) {
      case 0:
        return proto::AuthRequest{rng.next()};
      case 1: {
        proto::ChallengeMsg m;
        m.nonce = rng.next();
        m.challenge = core::randomChallenge(
            geom, 700, 1 + rng.nextBelow(64), rng);
        return m;
      }
      case 2: {
        proto::ResponseMsg m;
        m.nonce = rng.next();
        m.response = randomBits(1 + rng.nextBelow(256), rng);
        return m;
      }
      case 3: {
        proto::AuthDecision m;
        m.nonce = rng.next();
        m.accepted = rng.nextBool();
        m.hammingDistance =
            static_cast<std::uint32_t>(rng.nextBelow(512));
        return m;
      }
      case 4: {
        proto::RemapRequest m;
        m.nonce = rng.next();
        m.challenge = core::randomChallenge(
            geom, 650, 1 + rng.nextBelow(40), rng);
        m.helper = randomBits(1 + rng.nextBelow(200), rng);
        m.repetition =
            1 + static_cast<std::uint32_t>(rng.nextBelow(9));
        return m;
      }
      case 5: {
        proto::RemapAck m;
        m.nonce = rng.next();
        m.success = rng.nextBool();
        for (auto &b : m.confirmation)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        return m;
      }
      case 6: {
        proto::RemapCommit m;
        m.nonce = rng.next();
        m.committed = rng.nextBool();
        return m;
      }
      case 7: {
        proto::Heartbeat m;
        m.nonce = rng.next();
        m.seq = rng.next();
        m.challenge = core::randomChallenge(
            geom, 700, 1 + rng.nextBelow(64), rng);
        return m;
      }
      case 8: {
        proto::HeartbeatProof m;
        m.nonce = rng.next();
        m.response = randomBits(1 + rng.nextBelow(256), rng);
        return m;
      }
      case 9: {
        proto::TrustUpdate m;
        m.nonce = rng.next();
        m.trust = static_cast<std::uint32_t>(rng.nextBelow(101));
        m.tier = static_cast<std::uint8_t>(rng.nextBelow(5));
        m.accepted = rng.nextBool();
        m.hammingDistance =
            static_cast<std::uint32_t>(rng.nextBelow(512));
        return m;
      }
      case 10: {
        proto::Revoke m;
        m.deviceId = rng.next();
        std::size_t len = rng.nextBelow(48);
        for (std::size_t i = 0; i < len; ++i)
            m.reason.push_back(
                static_cast<char>(' ' + rng.nextBelow(95)));
        return m;
      }
      default: {
        std::string reason;
        std::size_t len = rng.nextBelow(64);
        for (std::size_t i = 0; i < len; ++i)
            reason.push_back(
                static_cast<char>(' ' + rng.nextBelow(95)));
        return proto::ErrorMsg{std::move(reason)};
      }
    }
}

/** Field-by-field equality across every message alternative. */
bool
messagesEqual(const proto::Message &a, const proto::Message &b)
{
    if (a.index() != b.index())
        return false;
    if (auto *x = std::get_if<proto::AuthRequest>(&a))
        return x->deviceId ==
               std::get<proto::AuthRequest>(b).deviceId;
    if (auto *x = std::get_if<proto::ChallengeMsg>(&a)) {
        const auto &y = std::get<proto::ChallengeMsg>(b);
        return x->nonce == y.nonce &&
               x->challenge.bits == y.challenge.bits;
    }
    if (auto *x = std::get_if<proto::ResponseMsg>(&a)) {
        const auto &y = std::get<proto::ResponseMsg>(b);
        return x->nonce == y.nonce && x->response == y.response;
    }
    if (auto *x = std::get_if<proto::AuthDecision>(&a)) {
        const auto &y = std::get<proto::AuthDecision>(b);
        return x->nonce == y.nonce && x->accepted == y.accepted &&
               x->hammingDistance == y.hammingDistance;
    }
    if (auto *x = std::get_if<proto::RemapRequest>(&a)) {
        const auto &y = std::get<proto::RemapRequest>(b);
        return x->nonce == y.nonce &&
               x->challenge.bits == y.challenge.bits &&
               x->helper == y.helper &&
               x->repetition == y.repetition;
    }
    if (auto *x = std::get_if<proto::RemapAck>(&a)) {
        const auto &y = std::get<proto::RemapAck>(b);
        return x->nonce == y.nonce && x->success == y.success &&
               x->confirmation == y.confirmation;
    }
    if (auto *x = std::get_if<proto::RemapCommit>(&a)) {
        const auto &y = std::get<proto::RemapCommit>(b);
        return x->nonce == y.nonce && x->committed == y.committed;
    }
    if (auto *x = std::get_if<proto::Heartbeat>(&a)) {
        const auto &y = std::get<proto::Heartbeat>(b);
        return x->nonce == y.nonce && x->seq == y.seq &&
               x->challenge.bits == y.challenge.bits;
    }
    if (auto *x = std::get_if<proto::HeartbeatProof>(&a)) {
        const auto &y = std::get<proto::HeartbeatProof>(b);
        return x->nonce == y.nonce && x->response == y.response;
    }
    if (auto *x = std::get_if<proto::TrustUpdate>(&a)) {
        const auto &y = std::get<proto::TrustUpdate>(b);
        return x->nonce == y.nonce && x->trust == y.trust &&
               x->tier == y.tier && x->accepted == y.accepted &&
               x->hammingDistance == y.hammingDistance;
    }
    if (auto *x = std::get_if<proto::Revoke>(&a)) {
        const auto &y = std::get<proto::Revoke>(b);
        return x->deviceId == y.deviceId && x->reason == y.reason;
    }
    if (auto *x = std::get_if<proto::ErrorMsg>(&a))
        return x->reason == std::get<proto::ErrorMsg>(b).reason;
    return false;
}

std::vector<std::uint8_t>
validFrame(Rng &rng)
{
    return proto::encodeMessage(randomMessage(rng));
}

} // namespace

TEST(ProtocolRoundTrip, DecodeInvertsEncodeForEveryType)
{
    // Property: decode(encode(m)) == m, across all 12 message types
    // with randomized field contents.
    Rng rng(0xF021);
    for (int trial = 0; trial < 800; ++trial) {
        auto original = randomMessage(rng);
        auto decoded =
            proto::decodeMessage(proto::encodeMessage(original));
        ASSERT_TRUE(messagesEqual(original, decoded))
            << "round-trip mismatch at trial " << trial
            << " (variant " << original.index() << ")";
    }
}

TEST(ProtocolRoundTrip, EncodingIsDeterministic)
{
    Rng rngA(0xF028);
    Rng rngB(0xF028);
    for (int trial = 0; trial < 200; ++trial) {
        EXPECT_EQ(proto::encodeMessage(randomMessage(rngA)),
                  proto::encodeMessage(randomMessage(rngB)));
    }
}

TEST(ProtocolFuzz, RandomBytesNeverCrash)
{
    Rng rng(0xF022);
    for (int trial = 0; trial < 3000; ++trial) {
        std::size_t len = rng.nextBelow(200);
        std::vector<std::uint8_t> blob(len);
        for (auto &b : blob)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        mustNotCrash(blob);
    }
}

TEST(ProtocolFuzz, MutatedValidFramesNeverCrash)
{
    Rng rng(0xF023);
    for (int trial = 0; trial < 2000; ++trial) {
        auto frame = validFrame(rng);
        // Mutate 1-4 bytes.
        std::size_t mutations = 1 + rng.nextBelow(4);
        for (std::size_t m = 0; m < mutations; ++m) {
            std::size_t pos = rng.nextBelow(frame.size());
            frame[pos] =
                static_cast<std::uint8_t>(rng.nextBelow(256));
        }
        mustNotCrash(frame);
    }
}

TEST(ProtocolFuzz, TruncatedAndExtendedFramesNeverCrash)
{
    Rng rng(0xF024);
    for (int trial = 0; trial < 1000; ++trial) {
        auto frame = validFrame(rng);
        if (rng.nextBool()) {
            frame.resize(rng.nextBelow(frame.size() + 1));
        } else {
            std::size_t extra = 1 + rng.nextBelow(16);
            for (std::size_t i = 0; i < extra; ++i)
                frame.push_back(static_cast<std::uint8_t>(
                    rng.nextBelow(256)));
        }
        mustNotCrash(frame);
    }
}

TEST(ProtocolFuzz, LengthFieldLies)
{
    // A frame whose length prefix points far beyond the buffer.
    proto::ByteWriter w;
    w.putU32(0xFFFFFF00u);
    w.putU8(1);
    EXPECT_THROW(proto::decodeMessage(w.bytes()),
                 proto::DecodeError);
}

TEST(SnapshotFuzz, MutatedSnapshotsNeverCrash)
{
    Rng rng(0xF025);
    srv::EnrollmentDatabase db;
    const sim::CacheGeometry geom(256 * 1024);
    auto map = authenticache::mc::randomErrorMap(geom, 700, 20, rng);
    db.enroll(srv::DeviceRecord(1, std::move(map), {700}, {}));
    auto blob = srv::saveDatabase(db);

    for (int trial = 0; trial < 1500; ++trial) {
        auto mutated = blob;
        std::size_t mutations = 1 + rng.nextBelow(6);
        for (std::size_t m = 0; m < mutations; ++m) {
            mutated[rng.nextBelow(mutated.size())] =
                static_cast<std::uint8_t>(rng.nextBelow(256));
        }
        try {
            (void)srv::loadDatabase(mutated);
        } catch (const proto::DecodeError &) {
            // Expected: CRC or structural validation caught it.
        } catch (const std::invalid_argument &) {
            // Acceptable: duplicate-id enrollment from mutated ids.
        }
    }
}

TEST(SnapshotFuzz, RandomBlobsNeverCrash)
{
    Rng rng(0xF026);
    for (int trial = 0; trial < 1000; ++trial) {
        std::size_t len = rng.nextBelow(400);
        std::vector<std::uint8_t> blob(len);
        for (auto &b : blob)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        try {
            (void)srv::loadDatabase(blob);
        } catch (const proto::DecodeError &) {
        }
    }
}
