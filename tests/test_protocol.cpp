/**
 * @file
 * Tests for serialization, protocol messages (round trips, framing,
 * corruption detection), and the in-memory channel with transcript and
 * fault injection.
 */

#include <gtest/gtest.h>

#include "protocol/channel.hpp"
#include "protocol/messages.hpp"
#include "protocol/serialize.hpp"
#include "util/crc32.hpp"

namespace p = authenticache::protocol;
namespace core = authenticache::core;
using authenticache::util::BitVec;

TEST(Serialize, ScalarRoundTrip)
{
    p::ByteWriter w;
    w.putU8(0xAB);
    w.putU16(0x1234);
    w.putU32(0xDEADBEEF);
    w.putU64(0x0123456789ABCDEFull);
    w.putString("hello");

    p::ByteReader r(w.bytes());
    EXPECT_EQ(r.getU8(), 0xAB);
    EXPECT_EQ(r.getU16(), 0x1234);
    EXPECT_EQ(r.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.getString(), "hello");
    EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncationThrows)
{
    p::ByteWriter w;
    w.putU16(7);
    p::ByteReader r(w.bytes());
    EXPECT_EQ(r.getU8(), 7);
    EXPECT_THROW(r.getU32(), p::DecodeError);
}

TEST(Serialize, ExpectEndCatchesTrailing)
{
    p::ByteWriter w;
    w.putU32(1);
    p::ByteReader r(w.bytes());
    r.getU16();
    EXPECT_THROW(r.expectEnd(), p::DecodeError);
}

namespace {

core::Challenge
sampleChallenge()
{
    core::Challenge c;
    c.bits.push_back({{{10, 2}, 680}, {{300, 5}, 680}});
    c.bits.push_back({{{77, 0}, 690}, {{1, 7}, 680}});
    return c;
}

} // namespace

TEST(Messages, ChallengeRoundTrip)
{
    p::ChallengeMsg msg;
    msg.nonce = 0xC0FFEE;
    msg.challenge = sampleChallenge();

    auto frame = p::encodeMessage(msg);
    auto decoded = p::decodeMessage(frame);
    auto *out = std::get_if<p::ChallengeMsg>(&decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->nonce, 0xC0FFEEu);
    ASSERT_EQ(out->challenge.size(), 2u);
    EXPECT_EQ(out->challenge.bits[0].a.line.set, 10u);
    EXPECT_EQ(out->challenge.bits[0].b.vddMv, 680u);
    EXPECT_EQ(out->challenge.bits[1].b.line.way, 7u);
}

TEST(Messages, AllTypesRoundTrip)
{
    BitVec resp = BitVec::fromString("1011001110001011");

    std::vector<p::Message> messages{
        p::AuthRequest{42},
        p::ChallengeMsg{7, sampleChallenge()},
        p::ResponseMsg{7, resp},
        p::AuthDecision{7, true, 3},
        p::RemapRequest{9, sampleChallenge(), resp, 5},
        p::RemapAck{9, true},
        p::ErrorMsg{"something failed"},
    };

    for (const auto &msg : messages) {
        auto frame = p::encodeMessage(msg);
        auto decoded = p::decodeMessage(frame);
        EXPECT_EQ(p::messageType(decoded), p::messageType(msg));
    }

    // Spot-check payload fidelity.
    auto decoded =
        p::decodeMessage(p::encodeMessage(p::ResponseMsg{7, resp}));
    EXPECT_EQ(std::get<p::ResponseMsg>(decoded).response, resp);

    auto err = p::decodeMessage(
        p::encodeMessage(p::ErrorMsg{"something failed"}));
    EXPECT_EQ(std::get<p::ErrorMsg>(err).reason, "something failed");
}

TEST(Messages, CorruptionDetectedByCrc)
{
    auto frame = p::encodeMessage(p::AuthRequest{1});
    // Flip a payload byte (after the 4-byte length prefix).
    frame[5] ^= 0x01;
    EXPECT_THROW(p::decodeMessage(frame), p::DecodeError);
}

TEST(Messages, TruncatedFrameThrows)
{
    auto frame = p::encodeMessage(p::AuthRequest{1});
    frame.resize(frame.size() - 3);
    EXPECT_THROW(p::decodeMessage(frame), p::DecodeError);
}

TEST(Messages, TrailingBytesThrow)
{
    auto frame = p::encodeMessage(p::AuthRequest{1});
    frame.push_back(0);
    EXPECT_THROW(p::decodeMessage(frame), p::DecodeError);
}

TEST(Messages, UnknownTypeRejected)
{
    // Hand-build a frame with type tag 99 and a valid CRC.
    p::ByteWriter payload;
    payload.putU8(99);
    p::ByteWriter frame;
    frame.putU32(static_cast<std::uint32_t>(payload.size()));
    frame.putBytes(payload.bytes());
    frame.putU32(
        authenticache::util::crc32(payload.bytes()));
    EXPECT_THROW(p::decodeMessage(frame.bytes()), p::DecodeError);
}

TEST(Channel, FifoBothDirections)
{
    p::InMemoryChannel channel;
    p::ClientEndpoint client(channel);
    p::ServerEndpoint server(channel);

    client.send(p::AuthRequest{1});
    client.send(p::AuthRequest{2});
    auto m1 = server.receive();
    auto m2 = server.receive();
    ASSERT_TRUE(m1 && m2);
    EXPECT_EQ(std::get<p::AuthRequest>(*m1).deviceId, 1u);
    EXPECT_EQ(std::get<p::AuthRequest>(*m2).deviceId, 2u);
    EXPECT_FALSE(server.receive().has_value());

    server.send(p::AuthDecision{5, true, 0});
    auto m3 = client.receive();
    ASSERT_TRUE(m3);
    EXPECT_TRUE(std::get<p::AuthDecision>(*m3).accepted);
}

TEST(Channel, DropInjection)
{
    p::InMemoryChannel channel;
    p::ClientEndpoint client(channel);
    p::ServerEndpoint server(channel);

    channel.dropNextFrames(1);
    client.send(p::AuthRequest{1});
    EXPECT_FALSE(server.receive().has_value());
    client.send(p::AuthRequest{2});
    auto m = server.receive();
    ASSERT_TRUE(m);
    EXPECT_EQ(std::get<p::AuthRequest>(*m).deviceId, 2u);
}

TEST(Channel, CorruptionInjection)
{
    p::InMemoryChannel channel;
    p::ClientEndpoint client(channel);
    p::ServerEndpoint server(channel);

    channel.corruptNextFrames(1);
    client.send(p::AuthRequest{1});
    EXPECT_THROW(server.receive(), p::DecodeError);
}

TEST(Transcript, RecordsAndDecodesCrps)
{
    p::InMemoryChannel channel;
    p::Transcript transcript;
    channel.attachTranscript(&transcript);
    p::ClientEndpoint client(channel);
    p::ServerEndpoint server(channel);

    BitVec resp = BitVec::fromString("01");
    server.send(p::ChallengeMsg{11, sampleChallenge()});
    client.send(p::ResponseMsg{11, resp});
    // A second, unmatched challenge must not produce a pair.
    server.send(p::ChallengeMsg{12, sampleChallenge()});

    EXPECT_EQ(transcript.size(), 3u);
    auto crps = transcript.observedCrps();
    ASSERT_EQ(crps.size(), 1u);
    EXPECT_EQ(crps[0].first.size(), 2u);
    EXPECT_EQ(crps[0].second, resp);
}

TEST(Transcript, ClearEmpties)
{
    p::InMemoryChannel channel;
    p::Transcript transcript;
    channel.attachTranscript(&transcript);
    p::ClientEndpoint client(channel);
    client.send(p::AuthRequest{1});
    EXPECT_EQ(transcript.size(), 1u);
    transcript.clear();
    EXPECT_EQ(transcript.size(), 0u);
}
