/**
 * @file
 * Exhaustive single-fault sweep over the canonical
 * enroll -> authenticate -> remap exchange: every fault type at every
 * frame index of the fault-free baseline. The reliability layer's
 * contract is that each faulted run either completes or fails with a
 * clean status -- no hang, no leaked pending session after GC, no
 * double-retired challenge pair, and both sides' logical-map keys
 * stay in sync. The whole sweep is replayed under the same seeds and
 * must produce bit-for-bit identical outcomes.
 */

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/server.hpp"
#include "substrate_test_util.hpp"

namespace fw = authenticache::firmware;
namespace testutil = authenticache::testutil;
namespace core = authenticache::core;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
using authenticache::util::SimClock;

namespace {

constexpr std::uint64_t kChipSeed = 0x5EED;
constexpr std::uint64_t kServerSeed = 777;
constexpr std::uint64_t kDeviceId = 9;
constexpr std::uint64_t kPlanSeed = 0xFA017;
constexpr std::uint64_t kDelaySteps = 8;
constexpr std::uint64_t kSessionTimeout = 40;
constexpr std::uint64_t kMaxSteps = 400;

// The fault-free exchange: AuthRequest(0) Challenge(1) Response(2)
// Decision(3) RemapRequest(4) RemapAck(5) RemapCommit(6).
constexpr std::uint64_t kBaselineFrames = 7;

const char *
frameName(std::uint64_t index)
{
    static const char *names[] = {
        "AuthRequest", "Challenge", "Response",   "Decision",
        "RemapRequest", "RemapAck", "RemapCommit"};
    return index < kBaselineFrames ? names[index] : "?";
}

const char *
faultName(proto::FaultType t)
{
    switch (t) {
      case proto::FaultType::None: return "none";
      case proto::FaultType::Drop: return "drop";
      case proto::FaultType::Duplicate: return "duplicate";
      case proto::FaultType::Reorder: return "reorder";
      case proto::FaultType::Delay: return "delay";
      case proto::FaultType::Corrupt: return "corrupt";
    }
    return "?";
}

srv::ServerConfig
serverConfig()
{
    srv::ServerConfig scfg;
    scfg.challengeBits = 32;
    scfg.remapSecretBits = 8;
    scfg.fuzzyRepetition = 5;
    scfg.verifier.pIntra = 0.08;
    scfg.sessionTimeoutSteps = kSessionTimeout;
    return scfg;
}

/** Enrollment template captured once: error map, floor, levels. */
struct DeviceTemplate
{
    core::ErrorMap map;
    double floorMv;
    std::vector<core::VddMv> levels;
    core::VddMv reserved;
};

DeviceTemplate
captureTemplate()
{
    auto chip = testutil::makeTestSubstrate(kChipSeed);
    fw::SimulatedMachine machine(kDeviceId);
    fw::ClientConfig ccfg;
    ccfg.selfTestAttempts = 8;
    fw::AuthenticacheClient client(*chip, machine, ccfg);

    double floor = client.boot();
    auto levels = srv::defaultChallengeLevels(client, 1);
    auto reserved = srv::defaultReservedLevel(client);
    std::vector<core::VddMv> all = levels;
    all.push_back(reserved);
    return DeviceTemplate{client.captureErrorMap(all, 8), floor,
                          std::move(levels), reserved};
}

/** Everything a single faulted run can report, serializable. */
struct RunOutcome
{
    bool quiesced = false;
    std::uint64_t steps = 0;
    std::string authStatus;
    bool accepted = false;
    std::uint64_t remapsCommitted = 0;
    std::uint64_t agentRemapTimeouts = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t dupRequests = 0;
    std::uint64_t dupCompletions = 0;
    std::uint64_t expired = 0;
    std::size_t pendingAfterGc = 0;
    std::size_t consumedAuthPairs = 0;
    std::size_t consumedReservedPairs = 0;
    bool keysInSync = false;

    std::string
    serialize() const
    {
        std::ostringstream os;
        os << "quiesced=" << quiesced << " steps=" << steps
           << " auth=" << authStatus << " accepted=" << accepted
           << " remaps=" << remapsCommitted
           << " remapTimeouts=" << agentRemapTimeouts
           << " retx=" << retransmissions
           << " dupReq=" << dupRequests
           << " dupDone=" << dupCompletions << " expired=" << expired
           << " pending=" << pendingAfterGc
           << " consumedAuth=" << consumedAuthPairs
           << " consumedReserved=" << consumedReservedPairs
           << " keySync=" << keysInSync;
        return os.str();
    }
};

std::string
statusName(const std::optional<fw::AuthOutcome::Status> &s)
{
    if (!s)
        return "InFlight";
    switch (*s) {
      case fw::AuthOutcome::Status::Ok: return "Ok";
      case fw::AuthOutcome::Status::Aborted: return "Aborted";
      case fw::AuthOutcome::Status::TimedOut: return "TimedOut";
    }
    return "?";
}

/**
 * Run the canonical exchange under one fault plan on a fresh device,
 * server, channel, and clock, all rebuilt from the same seeds: the
 * only degree of freedom between runs is the plan itself.
 */
RunOutcome
runFaultedExchange(const DeviceTemplate &tmpl,
                   const proto::FaultPlan &fault_plan,
                   proto::Transcript *tap = nullptr)
{
    auto chip = testutil::makeTestSubstrate(kChipSeed);
    fw::SimulatedMachine machine(kDeviceId);
    fw::ClientConfig ccfg;
    ccfg.selfTestAttempts = 8;
    fw::AuthenticacheClient client(*chip, machine, ccfg);
    client.adoptFloor(tmpl.floorMv);

    srv::AuthenticationServer server(serverConfig(), kServerSeed);
    server.enrollWithMap(kDeviceId, tmpl.map, client, tmpl.levels,
                         {tmpl.reserved});

    SimClock clock;
    proto::InMemoryChannel channel;
    channel.bindClock(&clock);
    channel.setFaultPlan(fault_plan);
    if (tap)
        channel.attachTranscript(tap);
    proto::ServerEndpoint server_end(channel);
    server.bindClock(&clock);

    srv::DeviceAgent agent(kDeviceId, client,
                           proto::ClientEndpoint(channel));
    agent.bindClock(&clock);

    RunOutcome out;
    agent.requestAuthentication();
    auto auth = srv::runExchangeSteps(server, server_end, agent,
                                      clock, channel, kMaxSteps);
    server.startRemap(kDeviceId, server_end);
    auto remap = srv::runExchangeSteps(server, server_end, agent,
                                       clock, channel, kMaxSteps);

    out.quiesced = auth.quiesced && remap.quiesced;
    out.steps = auth.steps + remap.steps;
    out.authStatus = statusName(agent.lastAuthStatus());
    out.accepted = agent.lastDecision().has_value() &&
                   agent.lastDecision()->accepted;

    // Whatever the fault did, the session deadline must eventually
    // reclaim every pending session.
    clock.advance(kSessionTimeout + 1);
    server.tick();
    out.pendingAfterGc = server.pendingSessions();

    out.remapsCommitted = server.remapsCommitted();
    out.agentRemapTimeouts = agent.remapsTimedOut();
    out.retransmissions = agent.retransmissions();
    out.dupRequests = server.duplicateRequests();
    out.dupCompletions = server.duplicateCompletions();
    out.expired = server.sessionsExpired();

    const auto &record = server.database().at(kDeviceId);
    out.consumedAuthPairs = record.consumedCount(tmpl.levels[0]);
    out.consumedReservedPairs = record.consumedCount(tmpl.reserved);
    out.keysInSync = client.mapKey() == record.mapKey();
    return out;
}

std::vector<std::pair<std::string, RunOutcome>>
runFullSweep(const DeviceTemplate &tmpl)
{
    const proto::FaultType kinds[] = {
        proto::FaultType::Drop, proto::FaultType::Duplicate,
        proto::FaultType::Reorder, proto::FaultType::Delay,
        proto::FaultType::Corrupt};

    std::vector<std::pair<std::string, RunOutcome>> sweep;
    for (auto kind : kinds) {
        for (std::uint64_t frame = 0; frame < kBaselineFrames;
             ++frame) {
            proto::FaultPlan plan(kPlanSeed);
            plan.add({kind, frame, kDelaySteps});
            std::string label = std::string(faultName(kind)) + "@" +
                                frameName(frame);
            sweep.emplace_back(label,
                               runFaultedExchange(tmpl, plan));
        }
    }
    return sweep;
}

} // namespace

class FaultSweep : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        tmpl = new DeviceTemplate(captureTemplate());
    }

    static void
    TearDownTestSuite()
    {
        delete tmpl;
        tmpl = nullptr;
    }

    static DeviceTemplate *tmpl;
};

DeviceTemplate *FaultSweep::tmpl = nullptr;

TEST_F(FaultSweep, BaselineIsSevenFramesAndClean)
{
    proto::Transcript tap;
    auto out =
        runFaultedExchange(*tmpl, proto::FaultPlan(kPlanSeed), &tap);
    EXPECT_TRUE(out.quiesced);
    EXPECT_EQ(out.authStatus, "Ok");
    EXPECT_TRUE(out.accepted);
    EXPECT_EQ(out.remapsCommitted, 1u);
    EXPECT_EQ(out.retransmissions, 0u);
    EXPECT_EQ(out.pendingAfterGc, 0u);
    EXPECT_TRUE(out.keysInSync);
    // The tap still sees the canonical frames (and defines the frame
    // indices the sweep below injects at).
    EXPECT_EQ(tap.entries().size(), kBaselineFrames);
}

TEST_F(FaultSweep, EverySingleFaultCompletesOrFailsClean)
{
    const auto baseline =
        runFaultedExchange(*tmpl, proto::FaultPlan(kPlanSeed));
    ASSERT_TRUE(baseline.quiesced);

    for (const auto &[label, out] : runFullSweep(*tmpl)) {
        SCOPED_TRACE(label);
        std::cout << "[sweep] " << label << ": " << out.serialize()
                  << "\n";

        // No hang: the exchange reached quiescence in budget.
        EXPECT_TRUE(out.quiesced);

        // Clean terminal status, never stuck in flight.
        EXPECT_TRUE(out.authStatus == "Ok" ||
                    out.authStatus == "TimedOut");

        // A single fault never defeats authentication: the retry
        // machine always recovers the auth phase.
        EXPECT_EQ(out.authStatus, "Ok");
        EXPECT_TRUE(out.accepted);

        // No leaked session once deadlines have passed.
        EXPECT_EQ(out.pendingAfterGc, 0u);

        // Exactly-once retirement: every run burns exactly the
        // baseline's pair budget, faults never re-burn or double-burn.
        EXPECT_EQ(out.consumedAuthPairs, baseline.consumedAuthPairs);
        EXPECT_EQ(out.consumedReservedPairs,
                  baseline.consumedReservedPairs);

        // Two-phase remap never desyncs the key, even when the
        // exchange itself is abandoned.
        EXPECT_TRUE(out.keysInSync);

        // A remap either commits exactly once or fails cleanly with
        // the server session garbage-collected.
        EXPECT_LE(out.remapsCommitted, 1u);
        if (out.remapsCommitted == 0) {
            EXPECT_GE(out.expired + out.agentRemapTimeouts, 1u);
        }
    }
}

TEST_F(FaultSweep, SweepIsDeterministicAcrossRuns)
{
    auto first = runFullSweep(*tmpl);
    auto second = runFullSweep(*tmpl);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        SCOPED_TRACE(first[i].first);
        EXPECT_EQ(first[i].first, second[i].first);
        EXPECT_EQ(first[i].second.serialize(),
                  second[i].second.serialize());
    }
}
