/**
 * @file
 * Overload and shed determinism over the loopback transport, plus the
 * bounded-queue semantics of the in-memory channel.
 *
 * The transport's degradation contract is that overload behavior is a
 * *policy*, not an accident of timing: which requests are admitted,
 * which are shed with an Overloaded reject, which connections stall
 * on backpressure, and every counter the transport publishes must be
 * byte-identical across repeated runs and across ServerFrontEnd pool
 * widths (extending test_server_batch's equivalence pattern one layer
 * down the stack). The suite drives the loopback transport past its
 * global in-flight budget and compares full transcripts -- every
 * reply byte every client saw, plus the serialized counters --
 * between seeded runs at 1 and 8 worker threads.
 *
 * The channel suite pins the InMemoryChannel's bounded queues: caps
 * are enforced per direction, delay-held frames own their slot, and
 * overflow is counted, so loopback simulations exhibit the same
 * finite-buffer behavior as a real connection.
 */

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mc/mapgen.hpp"
#include "net/loopback.hpp"
#include "server/server.hpp"
#include "util/sim_clock.hpp"
#include "util/stats_registry.hpp"

namespace net = authenticache::net;
namespace proto = authenticache::protocol;
namespace core = authenticache::core;
namespace srv = authenticache::server;
namespace mc = authenticache::mc;
namespace util = authenticache::util;

namespace {

constexpr std::uint64_t kServerSeed = 0x5EDD;
constexpr std::uint64_t kFirstId = 501;
constexpr core::VddMv kLevel = 700.0;

srv::ServerConfig
serverConfig()
{
    srv::ServerConfig cfg;
    cfg.challengeBits = 32;
    cfg.remapSecretBits = 8;
    cfg.fuzzyRepetition = 5;
    cfg.verifier.pIntra = 0.08;
    cfg.sessionShards = 4;
    return cfg;
}

/** A server with @p n enrolled devices and a loopback transport. */
struct Rig
{
    srv::ServerConfig cfg;
    srv::AuthenticationServer server;
    net::LoopbackTransport transport;

    Rig(std::size_t n_devices, const net::TransportConfig &tcfg)
        : cfg(serverConfig()), server(cfg, kServerSeed),
          transport(server.frontEnd(), tcfg)
    {
        core::CacheGeometry geom(64 * 1024);
        for (std::size_t i = 0; i < n_devices; ++i) {
            std::uint64_t id = kFirstId + i;
            util::Rng mr = util::Rng::forStream(0xD1CE, id);
            server.database().enroll(srv::DeviceRecord(
                id, mc::randomErrorMap(geom, kLevel, 40, mr),
                {kLevel}, {}));
        }
    }
};

std::string
hex(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (auto b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xF]);
    }
    return out;
}

struct OverloadResult
{
    std::string counters; ///< TransportCounters::serialize().
    std::uint64_t shed = 0;
    std::uint64_t accepted = 0;
    std::uint64_t stalls = 0;
    std::size_t rejectsSeen = 0;
    std::size_t repliesSeen = 0;
};

/**
 * Drive kConns connections, each bursting kPerConn requests, through
 * a transport whose global budget is far below the offered load, then
 * drain and fingerprint everything observable.
 */
OverloadResult
runOverload(unsigned pool_width)
{
    constexpr std::size_t kConns = 6;
    constexpr std::size_t kPerConn = 12;

    net::TransportConfig tcfg;
    tcfg.perConnectionQueue = 4;
    tcfg.globalInFlight = 8; // kConns * perConnectionQueue > budget:
                             // the budget, not backpressure, binds.
    tcfg.maxBatchFrames = 16;

    Rig rig(kConns, tcfg);
    util::ThreadPool pool(pool_width);

    std::vector<net::LoopbackTransport::Client *> clients;
    for (std::size_t c = 0; c < kConns; ++c)
        clients.push_back(rig.transport.connect());

    // Every client bursts all its requests up front; stream id is the
    // device id. Requests repeat per device (dedup re-issues), which
    // keeps the server side deterministic regardless of how many of
    // them get through.
    for (std::size_t c = 0; c < kConns; ++c)
        for (std::size_t r = 0; r < kPerConn; ++r)
            clients[c]->sendMessage(
                kFirstId + c,
                proto::Message{proto::AuthRequest{kFirstId + c}});

    rig.transport.pumpUntilIdle(pool);

    OverloadResult out;
    const auto &tally = rig.transport.counters();
    out.counters = tally.serialize();
    out.shed = tally.shed;
    out.accepted = tally.accepted;
    out.stalls = tally.backpressureStalls;

    for (std::size_t c = 0; c < kConns; ++c)
        for (auto &[stream, msg] : clients[c]->readMessages()) {
            if (net::isOverloadedReject(msg))
                ++out.rejectsSeen;
            else
                ++out.repliesSeen;
        }
    return out;
}

/** As runOverload, but fingerprints raw bytes without decoding. */
std::string
rawTranscript(unsigned pool_width, OverloadResult *result = nullptr)
{
    constexpr std::size_t kConns = 6;
    constexpr std::size_t kPerConn = 12;

    net::TransportConfig tcfg;
    tcfg.perConnectionQueue = 4;
    tcfg.globalInFlight = 8;
    tcfg.maxBatchFrames = 16;

    Rig rig(kConns, tcfg);
    util::ThreadPool pool(pool_width);

    std::vector<net::LoopbackTransport::Client *> clients;
    for (std::size_t c = 0; c < kConns; ++c)
        clients.push_back(rig.transport.connect());
    for (std::size_t c = 0; c < kConns; ++c)
        for (std::size_t r = 0; r < kPerConn; ++r)
            clients[c]->sendMessage(
                kFirstId + c,
                proto::Message{proto::AuthRequest{kFirstId + c}});

    rig.transport.pumpUntilIdle(pool);

    std::ostringstream ts;
    for (std::size_t c = 0; c < kConns; ++c)
        ts << "conn " << c << ":"
           << hex(clients[c]->takeRawBytes()) << "\n";
    ts << rig.transport.counters().serialize();

    if (result != nullptr) {
        const auto &tally = rig.transport.counters();
        result->shed = tally.shed;
        result->accepted = tally.accepted;
        result->stalls = tally.backpressureStalls;
    }
    return ts.str();
}

} // namespace

TEST(TransportShed, OverloadIsActuallyExercised)
{
    OverloadResult r = runOverload(2);
    // The scenario must genuinely overload the transport, or the
    // determinism comparisons below prove nothing.
    EXPECT_GT(r.shed, 0u) << r.counters;
    EXPECT_GT(r.accepted, 0u) << r.counters;
    EXPECT_GT(r.stalls, 0u) << r.counters;
    EXPECT_GT(r.rejectsSeen, 0u);
    EXPECT_GT(r.repliesSeen, 0u);
    // Every offered request was answered exactly once: a challenge
    // (or dedup re-issue) if admitted, an Overloaded reject if shed.
    EXPECT_EQ(r.rejectsSeen, r.shed);
    EXPECT_EQ(r.repliesSeen, r.accepted);
}

TEST(TransportShed, ByteIdenticalAcrossRepeatedRuns)
{
    std::string first = rawTranscript(2);
    std::string second = rawTranscript(2);
    EXPECT_EQ(first, second);
}

TEST(TransportShed, ByteIdenticalAcrossThreadCounts)
{
    std::string one = rawTranscript(1);
    std::string eight = rawTranscript(8);
    EXPECT_EQ(one, eight);
}

TEST(TransportShed, CountersPublishedToRegistry)
{
    net::TransportConfig tcfg;
    tcfg.perConnectionQueue = 4;
    tcfg.globalInFlight = 8;

    Rig rig(2, tcfg);
    util::ThreadPool pool(2);
    auto *client = rig.transport.connect();
    for (int r = 0; r < 20; ++r)
        client->sendMessage(
            kFirstId, proto::Message{proto::AuthRequest{kFirstId}});
    rig.transport.pumpUntilIdle(pool);

    util::StatsRegistry registry;
    rig.transport.transportCore().collectStats(registry);

    const auto &tally = rig.transport.counters();
    EXPECT_EQ(registry.getInt("server.transport", "accepted"),
              std::optional<std::uint64_t>(tally.accepted));
    EXPECT_EQ(registry.getInt("server.transport", "shed"),
              std::optional<std::uint64_t>(tally.shed));
    EXPECT_EQ(registry.getInt("server.transport", "frames_in"),
              std::optional<std::uint64_t>(tally.framesIn));
    EXPECT_EQ(registry.getInt("server.transport", "frames_out"),
              std::optional<std::uint64_t>(tally.framesOut));
    EXPECT_EQ(
        registry.getInt("server.transport", "connections_opened"),
        std::optional<std::uint64_t>(1));
    EXPECT_EQ(registry.getInt("server.transport", "queued"),
              std::optional<std::uint64_t>(0));
}

TEST(TransportShed, BackpressureNeverDropsAdmittedWork)
{
    // With the global budget far above the offered load but tiny
    // per-connection queues, everything stalls through backpressure
    // and *nothing* is shed: every request eventually gets a real
    // reply.
    net::TransportConfig tcfg;
    tcfg.perConnectionQueue = 2;
    tcfg.globalInFlight = 4096;

    Rig rig(3, tcfg);
    util::ThreadPool pool(2);
    std::vector<net::LoopbackTransport::Client *> clients;
    for (std::size_t c = 0; c < 3; ++c)
        clients.push_back(rig.transport.connect());
    for (std::size_t c = 0; c < 3; ++c)
        for (int r = 0; r < 25; ++r)
            clients[c]->sendMessage(
                kFirstId + c,
                proto::Message{proto::AuthRequest{kFirstId + c}});

    rig.transport.pumpUntilIdle(pool);

    const auto &tally = rig.transport.counters();
    EXPECT_EQ(tally.shed, 0u) << tally.serialize();
    EXPECT_GT(tally.backpressureStalls, 0u);
    EXPECT_EQ(tally.accepted, 75u);
    std::size_t replies = 0;
    for (auto *c : clients)
        replies += c->readMessages().size();
    EXPECT_EQ(replies, 75u);
}

TEST(TransportShed, RecoveryAfterOverload)
{
    // Once the overload burst drains, the transport admits new work
    // again: shedding is a transient of load, not a latched state.
    net::TransportConfig tcfg;
    tcfg.perConnectionQueue = 4;
    tcfg.globalInFlight = 8;

    Rig rig(6, tcfg);
    util::ThreadPool pool(2);
    std::vector<net::LoopbackTransport::Client *> clients;
    for (std::size_t c = 0; c < 6; ++c)
        clients.push_back(rig.transport.connect());
    for (std::size_t c = 0; c < 6; ++c)
        for (int r = 0; r < 12; ++r)
            clients[c]->sendMessage(
                kFirstId + c,
                proto::Message{proto::AuthRequest{kFirstId + c}});
    rig.transport.pumpUntilIdle(pool);
    const std::uint64_t shedBefore = rig.transport.counters().shed;
    ASSERT_GT(shedBefore, 0u);
    for (auto *c : clients)
        c->readMessages();

    // A gentle second wave: one request per connection.
    for (std::size_t c = 0; c < 6; ++c)
        clients[c]->sendMessage(
            kFirstId + c,
            proto::Message{proto::AuthRequest{kFirstId + c}});
    rig.transport.pumpUntilIdle(pool);

    EXPECT_EQ(rig.transport.counters().shed, shedBefore);
    for (auto *c : clients) {
        auto msgs = c->readMessages();
        ASSERT_EQ(msgs.size(), 1u);
        EXPECT_FALSE(net::isOverloadedReject(msgs[0].second));
    }
}

TEST(TransportShed, DrainClosesEverythingCleanly)
{
    net::TransportConfig tcfg;
    Rig rig(2, tcfg);
    util::ThreadPool pool(2);
    auto *a = rig.transport.connect();
    auto *b = rig.transport.connect();
    a->sendMessage(kFirstId,
                   proto::Message{proto::AuthRequest{kFirstId}});
    b->sendMessage(kFirstId + 1,
                   proto::Message{proto::AuthRequest{kFirstId + 1}});

    rig.transport.drain(pool);

    // Admitted work was serviced before the close, and no further
    // connections are accepted.
    EXPECT_EQ(a->readMessages().size(), 1u);
    EXPECT_EQ(b->readMessages().size(), 1u);
    EXPECT_TRUE(a->serverClosed());
    EXPECT_TRUE(b->serverClosed());
    EXPECT_EQ(rig.transport.connect(), nullptr);
    const auto &tally = rig.transport.counters();
    EXPECT_EQ(tally.connectionsClosed, tally.connectionsOpened);
    EXPECT_EQ(tally.droppedOnClose, 0u);
}

TEST(TransportShed, ContinuationReserveProtectsInProgressWork)
{
    // With a continuation reserve, new work (AuthRequest) competes
    // only for the unreserved slice of the budget, while frames that
    // complete an in-progress exchange (ResponseMsg) may fill the
    // budget entirely -- overload sheds new work first. Exercised on
    // a bare TransportCore so admission is observable between
    // ingests, without a batch draining the queues.
    net::TransportConfig tcfg;
    tcfg.perConnectionQueue = 64;
    tcfg.globalInFlight = 8;
    tcfg.continuationReserve = 4;
    tcfg.classifyContinuation = net::isContinuationPayload;
    Rig rig(1, tcfg);

    net::TransportCore core(rig.server.frontEnd(), tcfg);
    net::TransportCore::Conn &conn = core.open();

    // 10 new requests against an unreserved slice of 4: 4 admitted.
    for (std::uint64_t s = 0; s < 10; ++s)
        core.ingest(conn,
                    net::encodeWireMessage(
                        s, proto::Message{proto::AuthRequest{s}}));
    EXPECT_EQ(core.counters().accepted, 4u);
    EXPECT_EQ(core.counters().shed, 6u);

    // Continuations use the reserve: admitted up to the full budget
    // of 8, shed only beyond it.
    for (std::uint64_t s = 0; s < 6; ++s)
        core.ingest(conn, net::encodeWireMessage(
                              100 + s,
                              proto::Message{proto::ResponseMsg{
                                  s, util::BitVec()}}));
    EXPECT_EQ(core.counters().accepted, 8u);
    EXPECT_EQ(core.counters().shed, 8u);
    EXPECT_EQ(core.globalQueued(), 8u);
}

// ---------------------------------------------------------------- //
// InMemoryChannel bounded queues                                   //
// ---------------------------------------------------------------- //

TEST(ChannelBoundedQueue, CapEnforcedPerDirection)
{
    proto::InMemoryChannel chan;
    EXPECT_EQ(chan.queueCapacity(),
              proto::InMemoryChannel::kDefaultQueueCap);
    chan.setQueueCap(3);

    for (int i = 0; i < 5; ++i)
        chan.sendToServer({std::uint8_t(i)});
    EXPECT_EQ(chan.faultCounters().overflows, 2u);

    // The other direction has its own budget.
    for (int i = 0; i < 3; ++i)
        chan.sendToClient({std::uint8_t(0x80 + i)});
    EXPECT_EQ(chan.faultCounters().overflows, 2u);

    // FIFO order among the survivors; the overflowed frames are the
    // *newest*, mirroring a full connection queue refusing new reads.
    for (int i = 0; i < 3; ++i) {
        auto f = chan.receiveAtServer();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ((*f)[0], i);
    }
    EXPECT_FALSE(chan.receiveAtServer().has_value());

    // Space freed: sends are accepted again.
    chan.sendToServer({9});
    EXPECT_EQ(chan.faultCounters().overflows, 2u);
    EXPECT_TRUE(chan.receiveAtServer().has_value());
}

TEST(ChannelBoundedQueue, DelayHeldFramesOwnTheirSlot)
{
    util::SimClock clock;
    proto::InMemoryChannel chan;
    chan.bindClock(&clock);
    chan.setQueueCap(1);
    proto::FaultPlan plan(0x11);
    plan.add({proto::FaultType::Delay, 0, 2});
    chan.setFaultPlan(plan);

    chan.sendToServer({1}); // Held for 2 steps; owns the only slot.
    EXPECT_EQ(chan.faultCounters().delays, 1u);
    chan.sendToServer({2}); // Queue "full" via the held frame.
    EXPECT_EQ(chan.faultCounters().overflows, 1u);
    EXPECT_FALSE(chan.receiveAtServer().has_value());

    // Release never drops: the held frame had its slot reserved.
    clock.advance(2);
    auto f = chan.receiveAtServer();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ((*f)[0], 1);
    EXPECT_EQ(chan.faultCounters().overflows, 1u);
}

TEST(ChannelBoundedQueue, ZeroCapMeansUnbounded)
{
    proto::InMemoryChannel chan;
    chan.setQueueCap(0);
    for (int i = 0; i < 10000; ++i)
        chan.sendToServer({std::uint8_t(i & 0xFF)});
    EXPECT_EQ(chan.faultCounters().overflows, 0u);
    std::size_t n = 0;
    while (chan.receiveAtServer())
        ++n;
    EXPECT_EQ(n, 10000u);
}

TEST(ChannelBoundedQueue, DuplicateFaultRespectsCap)
{
    proto::InMemoryChannel chan;
    chan.setQueueCap(1);
    proto::FaultPlan plan(0x11);
    plan.add({proto::FaultType::Duplicate, 0, 0});
    chan.setFaultPlan(plan);

    // The duplicate's second copy finds the queue full and overflows.
    chan.sendToServer({7});
    EXPECT_EQ(chan.faultCounters().duplicates, 1u);
    EXPECT_EQ(chan.faultCounters().overflows, 1u);
    std::size_t n = 0;
    while (chan.receiveAtServer())
        ++n;
    EXPECT_EQ(n, 1u);
}
