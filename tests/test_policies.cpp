/**
 * @file
 * Tests for the side-channel decoy interleaving (paper Sec 7.2) and
 * the server lockout policy.
 */

#include <memory>

#include <gtest/gtest.h>

#include "server/server.hpp"
#include "server/storage.hpp"
#include "sim/chip.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace core = authenticache::core;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
using authenticache::util::Rng;

namespace {

sim::ChipConfig
testChip()
{
    sim::ChipConfig cfg;
    cfg.cacheBytes = 1024 * 1024;
    return cfg;
}

} // namespace

TEST(Decoys, InflateLineTestsWithoutChangingResponse)
{
    sim::SimulatedChip chip(testChip(), 4242);
    fw::SimulatedMachine machine(2);

    fw::ClientConfig plain_cfg;
    plain_cfg.selfTestAttempts = 8;
    fw::AuthenticacheClient plain(chip, machine, plain_cfg);
    double floor = plain.boot();

    fw::ClientConfig decoy_cfg = plain_cfg;
    decoy_cfg.decoyRatio = 1.0;
    fw::AuthenticacheClient masked(chip, machine, decoy_cfg);
    masked.adoptFloor(floor);

    auto level = static_cast<core::VddMv>(floor + 10.0);
    Rng rng(1);
    auto challenge =
        core::randomChallenge(chip.geometry(), level, 24, rng);

    auto base = plain.authenticate(challenge);
    auto with_decoys = masked.authenticate(challenge);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(with_decoys.ok());

    // The response is semantically unchanged (small persistence
    // noise aside)...
    EXPECT_LE(
        base.response.hammingDistance(with_decoys.response), 3u);
    // ...but the access stream roughly doubles.
    EXPECT_GT(with_decoys.lineTests, base.lineTests * 3 / 2);
    EXPECT_GT(with_decoys.elapsedMs, base.elapsedMs);
}

TEST(Decoys, FractionalRatioHonoredInExpectation)
{
    sim::SimulatedChip chip(testChip(), 4243);
    fw::SimulatedMachine machine(2);
    fw::ClientConfig cfg;
    cfg.selfTestAttempts = 1;
    fw::AuthenticacheClient plain(chip, machine, cfg);
    double floor = plain.boot();

    cfg.decoyRatio = 0.5;
    fw::AuthenticacheClient masked(chip, machine, cfg);
    masked.adoptFloor(floor);

    auto level = static_cast<core::VddMv>(floor + 10.0);
    Rng rng(2);
    auto challenge =
        core::randomChallenge(chip.geometry(), level, 32, rng);
    auto base = plain.authenticate(challenge);
    auto half = masked.authenticate(challenge);
    ASSERT_TRUE(base.ok() && half.ok());

    double ratio = static_cast<double>(half.lineTests) /
                   static_cast<double>(base.lineTests);
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 1.8);
}

class Lockout : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        chip = std::make_unique<sim::SimulatedChip>(testChip(), 5151);
        machine = std::make_unique<fw::SimulatedMachine>(2);
        fw::ClientConfig ccfg;
        ccfg.selfTestAttempts = 8;
        client = std::make_unique<fw::AuthenticacheClient>(
            *chip, *machine, ccfg);
        client->boot();

        srv::ServerConfig scfg;
        scfg.challengeBits = 64;
        scfg.lockoutThreshold = 3;
        server =
            std::make_unique<srv::AuthenticationServer>(scfg, 5);
        auto levels = srv::defaultChallengeLevels(*client, 1);
        server->enroll(9, *client, levels,
                       {srv::defaultReservedLevel(*client)});

        server_end = std::make_unique<proto::ServerEndpoint>(channel);
        agent = std::make_unique<srv::DeviceAgent>(
            9, *client, proto::ClientEndpoint(channel));
    }

    /** Run one auth with the response sabotaged to force rejection. */
    void
    failOnce()
    {
        agent->requestAuthentication();
        // Pump manually so we can corrupt the response in flight.
        server->pumpOnce(*server_end); // Request -> challenge.
        auto msg = proto::ClientEndpoint(channel).receive();
        ASSERT_TRUE(msg.has_value());
        auto *ch = std::get_if<proto::ChallengeMsg>(&*msg);
        ASSERT_NE(ch, nullptr);
        proto::ResponseMsg bogus;
        bogus.nonce = ch->nonce;
        bogus.response = core::Response(ch->challenge.size());
        for (std::size_t i = 0; i < bogus.response.size(); i += 2)
            bogus.response.flip(i); // Half the bits wrong.
        proto::ClientEndpoint(channel).send(bogus);
        server->pumpOnce(*server_end);
        agent->pumpAll();
    }

    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
    std::unique_ptr<srv::AuthenticationServer> server;
    proto::InMemoryChannel channel;
    std::unique_ptr<proto::ServerEndpoint> server_end;
    std::unique_ptr<srv::DeviceAgent> agent;
};

TEST_F(Lockout, LocksAfterConsecutiveFailures)
{
    failOnce();
    failOnce();
    EXPECT_FALSE(server->database().at(9).locked());
    failOnce();
    EXPECT_TRUE(server->database().at(9).locked());

    // Further requests are refused outright.
    agent->requestAuthentication();
    srv::runExchange(*server, *server_end, *agent);
    ASSERT_FALSE(agent->errors().empty());
    EXPECT_NE(agent->errors().back().find("device locked"),
              std::string::npos);
}

TEST_F(Lockout, SuccessResetsTheCounter)
{
    failOnce();
    failOnce();
    // Genuine authentication succeeds and clears the streak.
    agent->requestAuthentication();
    srv::runExchange(*server, *server_end, *agent);
    ASSERT_TRUE(agent->lastDecision().has_value());
    ASSERT_TRUE(agent->lastDecision()->accepted);
    EXPECT_EQ(server->database().at(9).consecutiveFailures(), 0u);

    failOnce();
    failOnce();
    EXPECT_FALSE(server->database().at(9).locked());
}

TEST_F(Lockout, AdminUnlockRestoresService)
{
    failOnce();
    failOnce();
    failOnce();
    ASSERT_TRUE(server->database().at(9).locked());

    server->unlockDevice(9);
    EXPECT_FALSE(server->database().at(9).locked());
    agent->requestAuthentication();
    srv::runExchange(*server, *server_end, *agent);
    ASSERT_TRUE(agent->lastDecision().has_value());
    EXPECT_TRUE(agent->lastDecision()->accepted);
}

TEST_F(Lockout, StatePersistsThroughSnapshot)
{
    failOnce();
    failOnce();
    failOnce();
    ASSERT_TRUE(server->database().at(9).locked());

    auto blob = srv::saveDatabase(server->database());
    auto restored = srv::loadDatabase(blob);
    EXPECT_TRUE(restored.at(9).locked());
    EXPECT_EQ(restored.at(9).consecutiveFailures(), 3u);
}
