/**
 * @file
 * Cross-validation tests: the analytic identifiability machinery
 * (binomial FAR/FRR of Eq 3-4) is checked against direct Monte Carlo
 * measurement, and geometry/variation invariants are swept across
 * cache sizes with parameterized tests.
 */

#include <gtest/gtest.h>

#include "core/nearest.hpp"
#include "mc/experiments.hpp"
#include "mc/mapgen.hpp"
#include "metrics/identifiability.hpp"
#include "sim/variation.hpp"
#include "util/stats.hpp"

namespace mc = authenticache::mc;
namespace m = authenticache::metrics;
namespace sim = authenticache::sim;
namespace core = authenticache::core;
namespace u = authenticache::util;
using authenticache::util::Rng;

TEST(CrossCheck, AnalyticFarMatchesMonteCarlo)
{
    // FAR at threshold t with p_inter: fraction of random-chip
    // responses landing within t of the expected one. Compare the
    // binomial model against simulation at a threshold with a
    // measurable rate.
    const std::uint64_t n = 64;
    const double p_inter = 0.5;
    const std::int64_t t = 22;

    double analytic = m::falseAcceptanceRate(t, n, p_inter);

    Rng rng(0xCC01);
    const int trials = 200000;
    int accepted = 0;
    for (int trial = 0; trial < trials; ++trial) {
        // Random expected and random impostor response: HD ~
        // Bino(n, 0.5).
        int hd = 0;
        for (std::uint64_t b = 0; b < n; ++b)
            hd += rng.nextBool();
        accepted += hd <= t;
    }
    double simulated = static_cast<double>(accepted) / trials;
    EXPECT_NEAR(simulated, analytic,
                5 * u::proportionConfidence95(analytic, trials));
}

TEST(CrossCheck, AnalyticFrrMatchesMonteCarlo)
{
    const std::uint64_t n = 128;
    const double p_intra = 0.10;
    const std::int64_t t = 18;

    double analytic = m::falseRejectionRate(t, n, p_intra);

    Rng rng(0xCC02);
    const int trials = 200000;
    int rejected = 0;
    for (int trial = 0; trial < trials; ++trial) {
        int hd = 0;
        for (std::uint64_t b = 0; b < n; ++b)
            hd += rng.nextBool(p_intra);
        rejected += hd > t;
    }
    double simulated = static_cast<double>(rejected) / trials;
    EXPECT_NEAR(simulated, analytic, 0.01);
}

TEST(CrossCheck, HammingSamplesMatchFlipProbability)
{
    // The mean of the intra Hamming distribution must equal
    // bits * p_intra estimated independently.
    const sim::CacheGeometry geom(256 * 1024);
    mc::NoiseProfile noise;
    noise.injectFraction = 0.5;

    mc::ExperimentConfig cfg;
    cfg.maps = 10;
    cfg.samplesPerMap = 50;
    cfg.seed = 0xCC03;
    auto samples = mc::hammingDistributions(geom, 40, 128, noise, cfg);

    u::RunningStats hd;
    for (auto s : samples.intra)
        hd.add(s);

    mc::ExperimentConfig pcfg;
    pcfg.maps = 30;
    pcfg.samplesPerMap = 3000;
    pcfg.seed = 0xCC04;
    double p = mc::estimateIntraFlipProbability(geom, 40, noise, pcfg);

    EXPECT_NEAR(hd.mean(), 128.0 * p, 128.0 * p * 0.15 + 1.0);
}

class GeometrySweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeometrySweep, InvariantsHold)
{
    sim::CacheGeometry geom(GetParam());
    EXPECT_EQ(static_cast<std::uint64_t>(geom.sets()) * geom.ways() *
                  geom.lineBytes(),
              geom.sizeBytes());
    // Round trips at the corners.
    EXPECT_EQ(geom.lineIndex(geom.pointOf(0)), 0u);
    EXPECT_EQ(geom.lineIndex(geom.pointOf(geom.lines() - 1)),
              geom.lines() - 1);
    // CRP capacity is consistent with Eq 10.
    EXPECT_EQ(geom.possibleCrps(),
              geom.lines() * (geom.lines() - 1) / 2);
}

TEST_P(GeometrySweep, VariationDensityScalesWithSize)
{
    sim::CacheGeometry geom(GetParam());
    sim::VariationParams params;
    sim::VminField field(geom, params, 0xABC);
    auto weak =
        field.linesFailingAt(field.vcorrMv() - params.windowMv);

    // Expected count scales linearly with line count (Fig 1 density).
    double expected = params.tailDensityPerMv * params.windowMv *
                      static_cast<double>(geom.lines()) /
                      params.densityReferenceLines;
    EXPECT_GT(static_cast<double>(weak.size()), expected * 0.4);
    EXPECT_LT(static_cast<double>(weak.size()), expected * 1.9);
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, GeometrySweep,
                         ::testing::Values(256ull * 1024,
                                           512ull * 1024,
                                           1024ull * 1024,
                                           2048ull * 1024,
                                           4096ull * 1024));

class RingOrder : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RingOrder, ClockwiseParameterIsStrictlyIncreasing)
{
    // The ring enumerator promises clockwise perimeter order starting
    // north; recompute each cell's perimeter parameter and verify
    // monotonicity.
    const sim::CacheGeometry geom(1024 * 1024);
    const sim::LinePoint center{500, 4};
    const std::int64_t r = static_cast<std::int64_t>(GetParam());

    auto cells = core::ringCells(geom, center, GetParam());
    std::int64_t prev = -1;
    for (const auto &c : cells) {
        std::int64_t dx = static_cast<std::int64_t>(c.set) -
                          static_cast<std::int64_t>(center.set);
        std::int64_t dy = static_cast<std::int64_t>(c.way) -
                          static_cast<std::int64_t>(center.way);
        std::int64_t t;
        if (dx >= 0 && dy > 0)
            t = dx;
        else if (dx > 0)
            t = r - dy;
        else if (dy < 0)
            t = 2 * r - dx;
        else
            t = 3 * r + dy;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Radii, RingOrder,
                         ::testing::Values(1ull, 2ull, 3ull, 7ull,
                                           12ull, 40ull));
