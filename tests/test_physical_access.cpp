/**
 * @file
 * Tests for the physical-access attacker (Sec 4.4): the stolen
 * physical error map clones the PUF only together with the remap key.
 */

#include <gtest/gtest.h>

#include "attack/physical_access.hpp"
#include "mc/mapgen.hpp"

namespace attack = authenticache::attack;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace crypto = authenticache::crypto;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(512 * 1024);

struct Victim
{
    core::ErrorMap physical;
    crypto::Key256 key;
    core::ErrorMap logical;

    explicit Victim(std::uint64_t seed)
        : physical([&] {
              Rng rng(seed);
              return authenticache::mc::randomErrorMap(kGeom, 700, 40,
                                                       rng);
          }()),
          key(crypto::Key256::fromDigest(crypto::Sha256::hash(
              std::string("victim") + std::to_string(seed)))),
          logical(core::LogicalRemap(key, kGeom).mapErrorMap(physical))
    {
    }

    /** The victim's true response to a logical challenge. */
    core::Response
    answer(const core::Challenge &challenge) const
    {
        return core::evaluate(logical, challenge);
    }
};

} // namespace

TEST(PhysicalAccess, FullCompromiseWithStolenKey)
{
    Victim victim(1);
    attack::PhysicalMapAttacker attacker(victim.physical, victim.key);

    Rng rng(2);
    auto challenge = core::randomChallenge(kGeom, 700, 256, rng);
    auto actual = victim.answer(challenge);
    EXPECT_EQ(attacker.accuracy(challenge, actual), 1.0);
    EXPECT_EQ(attacker.predict(challenge), actual);
}

TEST(PhysicalAccess, MapAloneIsCoinFlip)
{
    Victim victim(3);
    // No key: the attacker evaluates the physical map directly.
    attack::PhysicalMapAttacker attacker(victim.physical,
                                         std::nullopt);

    Rng rng(4);
    double acc_total = 0.0;
    const int rounds = 8;
    for (int round = 0; round < rounds; ++round) {
        auto challenge = core::randomChallenge(kGeom, 700, 256, rng);
        acc_total +=
            attacker.accuracy(challenge, victim.answer(challenge));
    }
    EXPECT_NEAR(acc_total / rounds, 0.5, 0.06);
}

TEST(PhysicalAccess, WrongKeyGuessIsCoinFlip)
{
    Victim victim(5);
    crypto::Key256 wrong = crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("not-the-key")));
    attack::PhysicalMapAttacker attacker(victim.physical, wrong);

    Rng rng(6);
    double acc_total = 0.0;
    const int rounds = 8;
    for (int round = 0; round < rounds; ++round) {
        auto challenge = core::randomChallenge(kGeom, 700, 256, rng);
        acc_total +=
            attacker.accuracy(challenge, victim.answer(challenge));
    }
    EXPECT_NEAR(acc_total / rounds, 0.5, 0.06);
}

TEST(PhysicalAccess, KeyRotationRevokesACompromisedKey)
{
    // The attacker captured K_A once; after the remap protocol
    // rotates to K_B, the stolen map + old key predicts nothing.
    Victim victim(7);
    attack::PhysicalMapAttacker attacker(victim.physical, victim.key);

    crypto::Key256 rotated = crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("K_B")));
    core::ErrorMap new_logical =
        core::LogicalRemap(rotated, kGeom).mapErrorMap(victim.physical);

    Rng rng(8);
    auto challenge = core::randomChallenge(kGeom, 700, 256, rng);
    auto actual = core::evaluate(new_logical, challenge);
    EXPECT_LT(attacker.accuracy(challenge, actual), 0.65);
}

TEST(PhysicalAccess, DegenerateInputs)
{
    Victim victim(9);
    attack::PhysicalMapAttacker attacker(victim.physical, victim.key);
    core::Challenge empty;
    EXPECT_EQ(attacker.accuracy(empty, core::Response()), 0.0);
    core::Challenge one;
    one.bits.push_back({{{0, 0}, 700}, {{1, 0}, 700}});
    EXPECT_EQ(attacker.accuracy(one, core::Response(5)), 0.0);
}
