/**
 * @file
 * Unit tests for the session-reliability layer: the deterministic
 * retry policy, the channel fault primitives, client-side timeout
 * with a clean TimedOut status, server-side session expiry, and the
 * composition of the lockout policy with duplicated frames (a
 * retransmitted rejected response must never count as two failures).
 */

#include <memory>

#include <gtest/gtest.h>

#include "server/server.hpp"
#include "sim/chip.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace core = authenticache::core;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
using authenticache::util::SimClock;

namespace {

sim::ChipConfig
smallChip()
{
    sim::ChipConfig cfg;
    cfg.cacheBytes = 256 * 1024;
    return cfg;
}

std::vector<std::uint8_t>
testFrame()
{
    return proto::encodeMessage(proto::AuthRequest{77});
}

} // namespace

TEST(RetryPolicy, ScheduleIsDeterministic)
{
    srv::RetryPolicy p;
    for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
        EXPECT_EQ(p.deadlineFor(100, attempt),
                  p.deadlineFor(100, attempt));
    }
}

TEST(RetryPolicy, FirstAttemptHasNoBackoff)
{
    srv::RetryPolicy p;
    std::uint64_t d = p.deadlineFor(0, 0);
    EXPECT_GE(d, p.timeoutSteps);
    EXPECT_LE(d, p.timeoutSteps + p.jitterSteps);
}

TEST(RetryPolicy, BackoffIsBoundedByCap)
{
    srv::RetryPolicy p;
    for (std::uint32_t attempt = 0; attempt < 100; ++attempt) {
        std::uint64_t d = p.deadlineFor(0, attempt);
        EXPECT_GE(d, p.timeoutSteps);
        EXPECT_LE(d, p.timeoutSteps + p.backoffCapSteps +
                         p.jitterSteps);
    }
    // Deep into the schedule the backoff saturates at the cap.
    std::uint64_t deep = p.deadlineFor(0, 90);
    EXPECT_GE(deep, p.timeoutSteps + p.backoffCapSteps);
}

TEST(ChannelFaults, DropDiscardsExactlyTheTargetFrame)
{
    proto::InMemoryChannel channel;
    channel.setFaultPlan(proto::FaultPlan(1).add(
        {proto::FaultType::Drop, 1, 0}));
    channel.sendToServer(testFrame());
    channel.sendToServer(testFrame());
    channel.sendToServer(testFrame());
    EXPECT_TRUE(channel.receiveAtServer().has_value());
    EXPECT_TRUE(channel.receiveAtServer().has_value());
    EXPECT_FALSE(channel.receiveAtServer().has_value());
    EXPECT_EQ(channel.faultCounters().drops, 1u);
    EXPECT_TRUE(channel.idle());
}

TEST(ChannelFaults, DuplicateDeliversTwice)
{
    proto::InMemoryChannel channel;
    channel.setFaultPlan(proto::FaultPlan(1).add(
        {proto::FaultType::Duplicate, 0, 0}));
    channel.sendToClient(testFrame());
    auto a = channel.receiveAtClient();
    auto b = channel.receiveAtClient();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
    EXPECT_FALSE(channel.receiveAtClient().has_value());
    EXPECT_EQ(channel.faultCounters().duplicates, 1u);
}

TEST(ChannelFaults, ReorderJumpsTheQueue)
{
    proto::InMemoryChannel channel;
    channel.setFaultPlan(proto::FaultPlan(1).add(
        {proto::FaultType::Reorder, 1, 0}));
    auto first = proto::encodeMessage(proto::AuthRequest{1});
    auto second = proto::encodeMessage(proto::AuthRequest{2});
    channel.sendToServer(first);
    channel.sendToServer(second);
    EXPECT_EQ(*channel.receiveAtServer(), second);
    EXPECT_EQ(*channel.receiveAtServer(), first);
    EXPECT_EQ(channel.faultCounters().reorders, 1u);
}

TEST(ChannelFaults, DelayHoldsFrameUntilRelease)
{
    SimClock clock;
    proto::InMemoryChannel channel;
    channel.bindClock(&clock);
    channel.setFaultPlan(proto::FaultPlan(1).add(
        {proto::FaultType::Delay, 0, 5}));
    channel.sendToServer(testFrame());
    EXPECT_FALSE(channel.receiveAtServer().has_value());
    EXPECT_FALSE(channel.idle()); // Held, not lost.
    clock.advance(4);
    EXPECT_FALSE(channel.receiveAtServer().has_value());
    clock.advance(1);
    EXPECT_TRUE(channel.receiveAtServer().has_value());
    EXPECT_TRUE(channel.idle());
    EXPECT_EQ(channel.faultCounters().delays, 1u);
}

TEST(ChannelFaults, CorruptionIsSeededAndReplayable)
{
    auto corruptOnce = [](std::uint64_t seed) {
        proto::InMemoryChannel channel;
        channel.setFaultPlan(proto::FaultPlan(seed).add(
            {proto::FaultType::Corrupt, 0, 0}));
        channel.sendToServer(testFrame());
        return *channel.receiveAtServer();
    };
    auto one = corruptOnce(42);
    auto two = corruptOnce(42);
    EXPECT_EQ(one, two);       // Same seed: bit-identical damage.
    EXPECT_NE(one, testFrame()); // But damage did happen.
    EXPECT_NE(corruptOnce(43), one); // Different seed, different bits.
}

class RetryMachine : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        chip = std::make_unique<sim::SimulatedChip>(smallChip(), 31);
        machine = std::make_unique<fw::SimulatedMachine>(4);
        fw::ClientConfig ccfg;
        ccfg.selfTestAttempts = 8;
        client = std::make_unique<fw::AuthenticacheClient>(
            *chip, *machine, ccfg);
        client->boot();

        srv::ServerConfig scfg;
        scfg.challengeBits = 32;
        scfg.verifier.pIntra = 0.08;
        scfg.sessionTimeoutSteps = 40;
        server =
            std::make_unique<srv::AuthenticationServer>(scfg, 11);
        auto levels = srv::defaultChallengeLevels(*client, 1);
        server->enroll(4, *client, levels,
                       {srv::defaultReservedLevel(*client)});

        channel.bindClock(&clock);
        server->bindClock(&clock);
        server_end = std::make_unique<proto::ServerEndpoint>(channel);
        agent = std::make_unique<srv::DeviceAgent>(
            4, *client, proto::ClientEndpoint(channel));
        agent->bindClock(&clock);
    }

    SimClock clock;
    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
    std::unique_ptr<srv::AuthenticationServer> server;
    proto::InMemoryChannel channel;
    std::unique_ptr<proto::ServerEndpoint> server_end;
    std::unique_ptr<srv::DeviceAgent> agent;
};

TEST_F(RetryMachine, ExhaustedRetriesEndWithTimedOut)
{
    // Every AuthRequest attempt is lost: the agent must give up with
    // a clean TimedOut status instead of wedging the exchange.
    proto::FaultPlan plan(9);
    for (std::uint64_t i = 0; i < 8; ++i)
        plan.add({proto::FaultType::Drop, i, 0});
    channel.setFaultPlan(plan);

    agent->requestAuthentication();
    auto result = srv::runExchangeSteps(*server, *server_end, *agent,
                                        clock, channel, 400);
    EXPECT_TRUE(result.quiesced);
    EXPECT_FALSE(agent->sessionActive());
    ASSERT_TRUE(agent->lastAuthStatus().has_value());
    EXPECT_EQ(*agent->lastAuthStatus(),
              fw::AuthOutcome::Status::TimedOut);
    EXPECT_FALSE(agent->lastDecision().has_value());
    EXPECT_GE(agent->retransmissions(), 1u);
}

TEST_F(RetryMachine, SingleLossRecoversViaRetransmission)
{
    channel.setFaultPlan(proto::FaultPlan(9).add(
        {proto::FaultType::Drop, 0, 0}));
    agent->requestAuthentication();
    auto result = srv::runExchangeSteps(*server, *server_end, *agent,
                                        clock, channel, 400);
    EXPECT_TRUE(result.quiesced);
    ASSERT_TRUE(agent->lastDecision().has_value());
    EXPECT_TRUE(agent->lastDecision()->accepted);
    EXPECT_EQ(agent->retransmissions(), 1u);
}

TEST_F(RetryMachine, ServerExpiresAbandonedSessions)
{
    // A request whose device never answers the challenge is garbage
    // collected once its deadline passes -- nothing leaks.
    channel.sendToServer(
        proto::encodeMessage(proto::AuthRequest{4}));
    server->pumpOnce(*server_end);
    EXPECT_EQ(server->pendingSessions(), 1u);

    clock.advance(39);
    server->tick();
    EXPECT_EQ(server->pendingSessions(), 1u); // Not yet due.

    clock.advance(2);
    server->tick();
    EXPECT_EQ(server->pendingSessions(), 0u);
    EXPECT_EQ(server->sessionsExpired(), 1u);

    // The expired nonce is dead: answering it now is rejected.
    (void)channel.receiveAtClient(); // Discard the challenge.
    proto::ResponseMsg late;
    late.nonce = 0xDEAD;
    late.response = core::Response(32);
    channel.sendToServer(proto::encodeMessage(late));
    server->pumpOnce(*server_end);
    EXPECT_TRUE(server->reports().empty());
}

class LockoutReplay : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        chip = std::make_unique<sim::SimulatedChip>(smallChip(), 31);
        machine = std::make_unique<fw::SimulatedMachine>(4);
        fw::ClientConfig ccfg;
        ccfg.selfTestAttempts = 8;
        client = std::make_unique<fw::AuthenticacheClient>(
            *chip, *machine, ccfg);
        client->boot();

        srv::ServerConfig scfg;
        scfg.challengeBits = 64;
        scfg.lockoutThreshold = 2;
        server =
            std::make_unique<srv::AuthenticationServer>(scfg, 11);
        auto levels = srv::defaultChallengeLevels(*client, 1);
        server->enroll(4, *client, levels,
                       {srv::defaultReservedLevel(*client)});
        server_end = std::make_unique<proto::ServerEndpoint>(channel);
    }

    /** Open a session and build a response that must be rejected. */
    proto::ResponseMsg
    bogusResponse()
    {
        while (channel.receiveAtClient()) {
            // Drain decisions left over from earlier rounds.
        }
        channel.sendToServer(
            proto::encodeMessage(proto::AuthRequest{4}));
        server->pumpOnce(*server_end);
        auto frame = channel.receiveAtClient();
        EXPECT_TRUE(frame.has_value());
        auto msg = proto::decodeMessage(*frame);
        auto *ch = std::get_if<proto::ChallengeMsg>(&msg);
        EXPECT_NE(ch, nullptr);
        proto::ResponseMsg bogus;
        bogus.nonce = ch->nonce;
        bogus.response = core::Response(ch->challenge.size());
        for (std::size_t i = 0; i < bogus.response.size(); i += 2)
            bogus.response.flip(i);
        return bogus;
    }

    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
    std::unique_ptr<srv::AuthenticationServer> server;
    proto::InMemoryChannel channel;
    std::unique_ptr<proto::ServerEndpoint> server_end;
};

TEST_F(LockoutReplay, DuplicatedRejectedResponseCountsOnce)
{
    // First rejection counts...
    auto bogus = bogusResponse();
    auto frame = proto::encodeMessage(bogus);
    channel.sendToServer(frame);
    server->pumpOnce(*server_end);
    EXPECT_EQ(server->database().at(4).consecutiveFailures(), 1u);
    EXPECT_FALSE(server->database().at(4).locked());

    // ...but replaying the identical frame (a retransmission or a
    // network duplicate) is served from the completed cache and must
    // NOT count as a second failure toward the lockout threshold.
    channel.sendToServer(frame);
    server->pumpOnce(*server_end);
    EXPECT_EQ(server->database().at(4).consecutiveFailures(), 1u);
    EXPECT_FALSE(server->database().at(4).locked());
    EXPECT_EQ(server->duplicateCompletions(), 1u);
    EXPECT_EQ(server->reports().size(), 1u);

    // A genuinely fresh failure still advances the policy.
    channel.sendToServer(proto::encodeMessage(bogusResponse()));
    server->pumpOnce(*server_end);
    EXPECT_EQ(server->database().at(4).consecutiveFailures(), 2u);
    EXPECT_TRUE(server->database().at(4).locked());
}

TEST_F(LockoutReplay, DuplicateChallengeReissueDoesNotBurnPairs)
{
    // Satellite invariant restated at the unit level: a retransmitted
    // AuthRequest never consumes fresh challenge pairs.
    channel.sendToServer(proto::encodeMessage(proto::AuthRequest{4}));
    server->pumpOnce(*server_end);
    auto consumedBefore = server->database().at(4).consumedCount(
        server->database().at(4).challengeLevels().front());
    for (int i = 0; i < 5; ++i) {
        channel.sendToServer(
            proto::encodeMessage(proto::AuthRequest{4}));
        server->pumpOnce(*server_end);
    }
    EXPECT_EQ(server->database().at(4).consumedCount(
                  server->database().at(4).challengeLevels().front()),
              consumedBefore);
    EXPECT_EQ(server->duplicateRequests(), 5u);
}
