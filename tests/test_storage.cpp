/**
 * @file
 * Tests for enrollment-database persistence: error-map and record
 * round trips, whole-database snapshots (including consumed-pair
 * state, so no-reuse survives a server restart), corruption
 * detection, and file I/O.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "mc/mapgen.hpp"
#include "server/storage.hpp"
#include "util/crc32.hpp"

namespace srv = authenticache::server;
namespace core = authenticache::core;
namespace sim = authenticache::sim;
namespace proto = authenticache::protocol;
namespace crypto = authenticache::crypto;
using authenticache::util::Rng;

namespace {

const sim::CacheGeometry kGeom(256 * 1024);

core::ErrorMap
sampleMap(std::uint64_t seed)
{
    Rng rng(seed);
    auto map = authenticache::mc::randomErrorMap(kGeom, 700, 30, rng);
    auto more = authenticache::mc::randomErrorMap(kGeom, 690, 20, rng);
    for (const auto &e : more.plane(690).errors())
        map.plane(690).add(e);
    return map;
}

srv::DeviceRecord
sampleRecord(std::uint64_t id, std::uint64_t seed)
{
    srv::DeviceRecord record(id, sampleMap(seed), {700}, {690});
    record.setMapKey(crypto::Key256::fromDigest(crypto::Sha256::hash(
        std::string("key") + std::to_string(seed))));
    record.consumePair(700, 3, 99);
    record.consumePair(700, 8, 12);
    record.consumeMixedPair(700, 5, 690, 7);
    record.recordAccept();
    record.recordAccept();
    record.recordReject();
    return record;
}

} // namespace

TEST(Storage, ErrorMapRoundTrip)
{
    auto map = sampleMap(1);
    proto::ByteWriter w;
    srv::encodeErrorMap(w, map);
    proto::ByteReader r(w.bytes());
    auto decoded = srv::decodeErrorMap(r);
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(decoded, map);
}

TEST(Storage, ErrorMapRejectsBadGeometry)
{
    proto::ByteWriter w;
    w.putU64(12345); // Not a valid cache size.
    w.putU32(64);
    w.putU32(8);
    w.putU32(0);
    proto::ByteReader r(w.bytes());
    EXPECT_THROW(srv::decodeErrorMap(r), proto::DecodeError);
}

TEST(Storage, ErrorMapRejectsOutOfRangeError)
{
    proto::ByteWriter w;
    w.putU64(kGeom.sizeBytes());
    w.putU32(kGeom.lineBytes());
    w.putU32(kGeom.ways());
    w.putU32(1);           // One plane.
    w.putU32(700);         // Level.
    w.putU64(1);           // One error...
    w.putU32(kGeom.sets()); // ...at an invalid set.
    w.putU32(0);
    proto::ByteReader r(w.bytes());
    EXPECT_THROW(srv::decodeErrorMap(r), proto::DecodeError);
}

TEST(Storage, DeviceRecordRoundTrip)
{
    auto record = sampleRecord(42, 7);
    proto::ByteWriter w;
    srv::encodeDeviceRecord(w, record);
    proto::ByteReader r(w.bytes());
    auto decoded = srv::decodeDeviceRecord(r);
    EXPECT_TRUE(r.exhausted());

    EXPECT_EQ(decoded.deviceId(), 42u);
    EXPECT_EQ(decoded.physicalMap(), record.physicalMap());
    EXPECT_EQ(decoded.mapKey(), record.mapKey());
    EXPECT_EQ(decoded.challengeLevels(), record.challengeLevels());
    EXPECT_EQ(decoded.reservedLevels(), record.reservedLevels());
    EXPECT_EQ(decoded.accepted(), 2u);
    EXPECT_EQ(decoded.rejected(), 1u);

    // Consumed-pair state survives: the same pairs are still retired.
    EXPECT_FALSE(decoded.pairAvailable(700, 3, 99));
    EXPECT_FALSE(decoded.pairAvailable(700, 99, 3));
    EXPECT_FALSE(decoded.pairAvailable(700, 12, 8));
    EXPECT_TRUE(decoded.pairAvailable(700, 1, 2));
    EXPECT_FALSE(decoded.consumeMixedPair(690, 7, 700, 5));
    EXPECT_EQ(decoded.consumedCount(700), 2u);
    EXPECT_EQ(decoded.consumedMixedCount(), 1u);
}

TEST(Storage, DatabaseSnapshotRoundTrip)
{
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));
    db.enroll(sampleRecord(2, 20));
    db.enroll(sampleRecord(3, 30));

    auto blob = srv::saveDatabase(db);
    auto restored = srv::loadDatabase(blob);
    EXPECT_EQ(restored.size(), 3u);
    for (std::uint64_t id : {1, 2, 3}) {
        EXPECT_TRUE(restored.contains(id));
        EXPECT_EQ(restored.at(id).physicalMap(),
                  db.at(id).physicalMap());
        EXPECT_EQ(restored.at(id).mapKey(), db.at(id).mapKey());
    }
}

TEST(Storage, EmptyDatabaseRoundTrip)
{
    srv::EnrollmentDatabase db;
    auto restored = srv::loadDatabase(srv::saveDatabase(db));
    EXPECT_EQ(restored.size(), 0u);
}

TEST(Storage, SnapshotCorruptionDetected)
{
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));
    auto blob = srv::saveDatabase(db);

    auto corrupted = blob;
    corrupted[corrupted.size() / 2] ^= 0x5A;
    EXPECT_THROW(srv::loadDatabase(corrupted), proto::DecodeError);

    auto truncated = blob;
    truncated.resize(truncated.size() - 8);
    EXPECT_THROW(srv::loadDatabase(truncated), proto::DecodeError);

    std::vector<std::uint8_t> tiny{1, 2};
    EXPECT_THROW(srv::loadDatabase(tiny), proto::DecodeError);
}

TEST(Storage, BadMagicAndVersionRejected)
{
    srv::EnrollmentDatabase db;
    auto blob = srv::saveDatabase(db);
    // Flip a magic byte and fix the CRC by recomputing a fresh frame:
    // easier to hand-build the bad frame.
    proto::ByteWriter w;
    w.putU32(0xDEADBEEF);
    w.putU16(1);
    w.putU32(0);
    std::uint32_t crc = authenticache::util::crc32(w.bytes());
    w.putU32(crc);
    EXPECT_THROW(srv::loadDatabase(w.bytes()), proto::DecodeError);
}

TEST(Storage, FileRoundTrip)
{
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(7, 70));

    std::string path = "/tmp/authenticache_test_db.bin";
    srv::saveDatabaseFile(db, path);
    auto restored = srv::loadDatabaseFile(path);
    EXPECT_TRUE(restored.contains(7));
    EXPECT_EQ(restored.at(7).physicalMap(), db.at(7).physicalMap());
    std::remove(path.c_str());

    EXPECT_THROW(srv::loadDatabaseFile("/nonexistent/nope.bin"),
                 std::runtime_error);
}

TEST(Storage, V1MigrationRoundTrip)
{
    srv::EnrollmentDatabase db;
    db.enroll(sampleRecord(1, 10));
    db.enroll(sampleRecord(2, 20));

    // A v1 snapshot (no durability metadata) still loads, reporting
    // zero metadata...
    auto v1 = srv::saveDatabaseV1(db);
    srv::SnapshotMeta meta{99, 99};
    auto migrated = srv::loadDatabase(v1, &meta);
    EXPECT_EQ(meta.generation, 0u);
    EXPECT_EQ(meta.journalWatermark, 0u);
    EXPECT_EQ(migrated.size(), 2u);

    // ...and re-saving produces a v2 snapshot that round-trips with
    // the metadata intact and identical record state.
    auto v2 = srv::saveDatabase(migrated, srv::SnapshotMeta{3, 77});
    ASSERT_NE(v1, v2);
    srv::SnapshotMeta meta2;
    auto restored = srv::loadDatabase(v2, &meta2);
    EXPECT_EQ(meta2.generation, 3u);
    EXPECT_EQ(meta2.journalWatermark, 77u);
    EXPECT_EQ(srv::saveDatabase(restored), srv::saveDatabase(db));
}

TEST(Storage, UnknownVersionRejected)
{
    proto::ByteWriter w;
    w.putU32(0x42444341); // "ACDB".
    w.putU16(3);          // One past the current version.
    w.putU32(0);
    std::uint32_t crc = authenticache::util::crc32(w.bytes());
    w.putU32(crc);
    EXPECT_THROW(srv::loadDatabase(w.bytes()), proto::DecodeError);
}

TEST(Storage, CanonicalSnapshotBytes)
{
    // Equal logical states must serialize identically even when the
    // consumed sets were populated in different orders (they are
    // unordered in memory; recovery compares states by snapshot
    // bytes).
    srv::DeviceRecord a(1, sampleMap(5), {700}, {690});
    srv::DeviceRecord b(1, sampleMap(5), {700}, {690});
    for (std::uint64_t k = 0; k < 40; ++k)
        a.consumePair(700, k, k + 100);
    for (std::uint64_t k = 40; k-- > 0;)
        b.consumePair(700, k + 100, k);

    srv::EnrollmentDatabase da, dbb;
    da.enroll(std::move(a));
    dbb.enroll(std::move(b));
    EXPECT_EQ(srv::saveDatabase(da), srv::saveDatabase(dbb));
}

TEST(Storage, AtomicSaveSurvivesCrashMidWrite)
{
    srv::EnrollmentDatabase old_db;
    old_db.enroll(sampleRecord(1, 10));
    srv::EnrollmentDatabase new_db;
    new_db.enroll(sampleRecord(1, 10));
    new_db.enroll(sampleRecord(2, 20));

    std::string path = "/tmp/authenticache_test_atomic.bin";
    srv::saveDatabaseFile(old_db, path);
    auto old_bytes = srv::saveDatabase(old_db);

    // Kill the writer at every coarse crash opportunity: the live
    // snapshot must stay byte-identical to the old one until the
    // rename, and be the complete new one after it.
    srv::CrashInjector inj;
    inj.disarm();
    srv::saveDatabaseFile(new_db, path, {}, &inj);
    std::uint64_t total = inj.opportunities();
    ASSERT_GT(total, 3u);

    for (std::uint64_t t = 0; t < total; ++t) {
        srv::saveDatabaseFile(old_db, path);
        inj.arm(t);
        bool crashed = false;
        try {
            srv::saveDatabaseFile(new_db, path, {}, &inj);
        } catch (const srv::CrashException &) {
            crashed = true;
        }
        ASSERT_TRUE(crashed) << "opportunity " << t;
        auto loaded = srv::saveDatabase(srv::loadDatabaseFile(path));
        EXPECT_TRUE(loaded == old_bytes ||
                    loaded == srv::saveDatabase(new_db))
            << "torn snapshot at opportunity " << t;
    }
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}
