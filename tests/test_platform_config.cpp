/**
 * @file
 * Platform config loader: golden bad-config fixtures and the parsed
 * shape of good configs.
 *
 * Every fixture under config_fixtures/ carries its expected failure
 * in a "# expect-error:" header; the test asserts the loader throws a
 * single-line ConfigError whose message contains that text (which
 * includes the ":<line>:" anchor, so mis-anchored errors fail too).
 * This keeps error-message quality under test: a config typo must
 * come back with the file, the line, and what to do about it.
 */

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "substrate/config.hpp"

namespace sub = authenticache::substrate;
namespace fs = std::filesystem;

namespace {

constexpr const char *kFixtureDir = AUTH_CONFIG_FIXTURE_DIR;
constexpr const char *kExpectTag = "# expect-error:";

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** The "# expect-error:" payload of a fixture's header line. */
std::string
expectedError(const std::string &text)
{
    std::istringstream stream(text);
    std::string first;
    std::getline(stream, first);
    if (first.rfind(kExpectTag, 0) != 0)
        return {};
    std::size_t b = first.find_first_not_of(' ',
                                            std::strlen(kExpectTag));
    return b == std::string::npos ? std::string{} : first.substr(b);
}

} // namespace

TEST(PlatformConfig, EveryBadFixtureFailsWithItsGoldenMessage)
{
    std::size_t fixtures = 0;
    for (const auto &entry : fs::directory_iterator(kFixtureDir)) {
        if (entry.path().extension() != ".conf")
            continue;
        ++fixtures;
        SCOPED_TRACE(entry.path().filename().string());

        const std::string text = slurp(entry.path());
        const std::string expected = expectedError(text);
        ASSERT_FALSE(expected.empty())
            << "fixture lacks a '# expect-error:' header";

        try {
            (void)sub::parsePlatformConfig(
                text, entry.path().filename().string());
            FAIL() << "expected ConfigError, parsed cleanly";
        } catch (const sub::ConfigError &e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find(expected), std::string::npos)
                << "error was: " << msg;
            // Single line, "<origin>:<line>: ..." shape.
            EXPECT_EQ(msg.find('\n'), std::string::npos);
            EXPECT_EQ(msg.rfind(entry.path().filename().string(), 0),
                      0u);
        }
    }
    EXPECT_GE(fixtures, 10u);
}

TEST(PlatformConfig, GoodConfigRoundTripsEveryField)
{
    const char *text = R"(# full config
substrate: dram_mra
ecc: bch_127_64
remap.enabled: true
cache.kb: 256
cache.line_bytes: 128
cache.ways: 16
error_log.capacity: 1024
dram.tcorr_mean: 700
dram.tcorr_sigma: 12
dram.window: 80
dram.tail_density: 4
regulator.nominal: 820
regulator.min: 510
)";
    auto cfg = sub::parsePlatformConfig(text, "inline");
    EXPECT_EQ(cfg.substrate, "dram_mra");
    EXPECT_EQ(cfg.ecc, "bch_127_64");
    EXPECT_TRUE(cfg.remapEnabled);
    EXPECT_EQ(cfg.cacheBytes, 256u * 1024u);
    EXPECT_EQ(cfg.lineBytes, 128u);
    EXPECT_EQ(cfg.ways, 16u);
    EXPECT_EQ(cfg.errorLogCapacity, 1024u);
    EXPECT_DOUBLE_EQ(cfg.dram.tcorrMean, 700.0);
    EXPECT_DOUBLE_EQ(cfg.dram.tcorrSigma, 12.0);
    EXPECT_DOUBLE_EQ(cfg.dram.window, 80.0);
    EXPECT_DOUBLE_EQ(cfg.dram.tailDensity, 4.0);
    EXPECT_DOUBLE_EQ(cfg.regulator.nominalMv, 820.0);
    EXPECT_DOUBLE_EQ(cfg.regulator.absoluteMinMv, 510.0);
}

TEST(PlatformConfig, EmptyConfigYieldsDefaults)
{
    auto cfg = sub::parsePlatformConfig("# nothing\n\n", "inline");
    EXPECT_EQ(cfg.substrate, "sram_vmin");
    EXPECT_EQ(cfg.ecc, "secded_72_64");
    EXPECT_TRUE(cfg.remapEnabled);
}

TEST(PlatformConfig, CrcEdcAllowedWhenRemapDisabled)
{
    auto cfg = sub::parsePlatformConfig(
        "ecc: crc_edc\nremap.enabled: false\n", "inline");
    EXPECT_EQ(cfg.ecc, "crc_edc");
    EXPECT_FALSE(cfg.remapEnabled);
}

TEST(PlatformConfig, MissingFileFailsWithPathAndLine)
{
    try {
        (void)sub::loadPlatformConfigFile("/nonexistent/x.conf");
        FAIL() << "expected ConfigError";
    } catch (const sub::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "/nonexistent/x.conf:1: cannot open"),
                  std::string::npos);
    }
}

TEST(PlatformConfig, ShippedExampleConfigsParse)
{
    const fs::path repo_configs =
        fs::path(kFixtureDir).parent_path().parent_path() / "configs";
    auto sram =
        sub::loadPlatformConfigFile((repo_configs / "sram_vmin.conf")
                                        .string());
    EXPECT_EQ(sram.substrate, "sram_vmin");
    auto dram =
        sub::loadPlatformConfigFile((repo_configs / "dram_mra.conf")
                                        .string());
    EXPECT_EQ(dram.substrate, "dram_mra");
    EXPECT_DOUBLE_EQ(dram.dram.tailDensity, 3.0);
}
