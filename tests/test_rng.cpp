/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

using authenticache::util::Rng;
using authenticache::util::RunningStats;
using authenticache::util::SplitMix64;

TEST(SplitMix64, KnownSequenceIsStable)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsIndependent)
{
    Rng a(123);
    Rng b(124);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversSmallRangeUniformly)
{
    Rng rng(11);
    std::array<int, 8> counts{};
    const int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBelow(8)];
    for (int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), draws / 8.0,
                    5 * std::sqrt(draws / 8.0));
    }
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        stats.add(d);
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.nextGaussian(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.nextExponential(0.5));
    EXPECT_NEAR(stats.mean(), 2.0, 0.08);
}

TEST(Rng, GammaMoments)
{
    Rng rng(23);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.nextGamma(3.0, 2.0));
    // Gamma(shape k, scale s): mean ks, variance ks^2.
    EXPECT_NEAR(stats.mean(), 6.0, 0.1);
    EXPECT_NEAR(stats.variance(), 12.0, 0.6);
}

TEST(Rng, GammaSmallShape)
{
    Rng rng(29);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i) {
        double v = rng.nextGamma(0.5, 1.0);
        ASSERT_GE(v, 0.0);
        stats.add(v);
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.03);
}

TEST(Rng, BetaMomentsMatchCalibratedPersistence)
{
    // The persistence model relies on Beta(1.4, 0.492) having mean
    // ~0.74 and E[(1-q)^4] ~ 0.06; check both empirically.
    Rng rng(31);
    RunningStats mean_stats;
    RunningStats mask4_stats;
    for (int i = 0; i < 100000; ++i) {
        double q = rng.nextBeta(1.4, 0.492);
        ASSERT_GE(q, 0.0);
        ASSERT_LE(q, 1.0);
        mean_stats.add(q);
        double miss = 1.0 - q;
        mask4_stats.add(miss * miss * miss * miss);
    }
    EXPECT_NEAR(mean_stats.mean(), 0.74, 0.01);
    EXPECT_NEAR(mask4_stats.mean(), 0.06, 0.01);
}

TEST(Rng, SampleDistinctProducesDistinctValues)
{
    Rng rng(37);
    auto sample = rng.sampleDistinct(1000, 100);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 100u);
    for (auto v : sample)
        EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleDistinctFullRange)
{
    Rng rng(41);
    auto sample = rng.sampleDistinct(16, 16);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 16u);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(43);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(Rng, ForkDivergesFromParent)
{
    Rng parent(47);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 2);
}
