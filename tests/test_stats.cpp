/**
 * @file
 * Tests for statistics helpers, including the binomial machinery the
 * identifiability analysis (FAR/FRR, Eq 3-4) depends on, plus the
 * registerStat-style self-reporting of the substrate plugins.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "firmware/client.hpp"
#include "mc/mapgen.hpp"
#include "protocol/channel.hpp"
#include "server/server.hpp"
#include "substrate/config.hpp"
#include "substrate/registry.hpp"
#include "util/sim_clock.hpp"
#include "util/stats.hpp"
#include "util/stats_registry.hpp"

namespace u = authenticache::util;
namespace fw = authenticache::firmware;
namespace sub = authenticache::substrate;
namespace srv = authenticache::server;
namespace sim = authenticache::sim;
namespace proto = authenticache::protocol;

TEST(RunningStats, EmptyIsZero)
{
    u::RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    u::RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero)
{
    u::RunningStats s;
    s.add(3.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.mean(), 3.0);
}

TEST(Histogram, BinningAndClamping)
{
    u::Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-5.0);  // clamped to bin 0
    h.add(15.0);  // clamped to bin 9
    h.add(5.0);   // bin 5
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.binCount(5), 1u);
}

TEST(Histogram, CentersAndFractions)
{
    u::Histogram h(0.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 3.5);
    h.add(0.1);
    h.add(0.2);
    h.add(3.9);
    EXPECT_NEAR(h.binFraction(0), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(h.binFraction(3), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, EmpiricalCdf)
{
    u::Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.cdf(4.6), 0.5, 1e-12);
    EXPECT_NEAR(h.cdf(100.0), 1.0, 1e-12);
}

TEST(Binomial, CoefficientMatchesPascal)
{
    EXPECT_NEAR(std::exp(u::logBinomialCoefficient(5, 2)), 10.0, 1e-9);
    EXPECT_NEAR(std::exp(u::logBinomialCoefficient(10, 5)), 252.0, 1e-6);
    EXPECT_NEAR(std::exp(u::logBinomialCoefficient(64, 0)), 1.0, 1e-9);
    EXPECT_NEAR(std::exp(u::logBinomialCoefficient(64, 64)), 1.0, 1e-9);
}

TEST(Binomial, PmfSumsToOne)
{
    for (double p : {0.1, 0.5, 0.9}) {
        double acc = 0.0;
        for (std::uint64_t k = 0; k <= 64; ++k)
            acc += u::binomialPmf(64, k, p);
        EXPECT_NEAR(acc, 1.0, 1e-9);
    }
}

TEST(Binomial, PmfDegenerateProbabilities)
{
    EXPECT_EQ(u::binomialPmf(10, 0, 0.0), 1.0);
    EXPECT_EQ(u::binomialPmf(10, 3, 0.0), 0.0);
    EXPECT_EQ(u::binomialPmf(10, 10, 1.0), 1.0);
    EXPECT_EQ(u::binomialPmf(10, 9, 1.0), 0.0);
}

TEST(Binomial, CdfKnownValues)
{
    // X ~ Bino(10, 0.5): P[X <= 5] = 0.623046875.
    EXPECT_NEAR(u::binomialCdf(10, 5, 0.5), 0.623046875, 1e-9);
    // P[X <= 0] = 2^-10.
    EXPECT_NEAR(u::binomialCdf(10, 0, 0.5), 1.0 / 1024.0, 1e-12);
}

TEST(Binomial, CdfBoundaries)
{
    EXPECT_EQ(u::binomialCdf(10, -1, 0.5), 0.0);
    EXPECT_EQ(u::binomialCdf(10, 10, 0.5), 1.0);
    EXPECT_EQ(u::binomialCdf(10, 25, 0.5), 1.0);
}

TEST(Binomial, SfComplementsCdf)
{
    for (std::int64_t k : {0, 3, 7, 10}) {
        double total = u::binomialCdf(10, k, 0.3) +
                       u::binomialSf(10, k, 0.3);
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

TEST(Binomial, TinyTailsRepresentable)
{
    // The 1 ppm identifiability criterion needs accurate tiny tails:
    // P[X <= 100] for X ~ Bino(512, 0.5) is astronomically small but
    // must be > 0 and well below 1e-6.
    double far = u::binomialCdf(512, 100, 0.5);
    EXPECT_GT(far, 0.0);
    EXPECT_LT(far, 1e-6);
}

TEST(Binomial, SymmetryAtHalf)
{
    // For p = 0.5, P[X <= k] == P[X >= n-k].
    double lhs = u::binomialCdf(64, 20, 0.5);
    double rhs = u::binomialSf(64, 43, 0.5);
    EXPECT_NEAR(lhs, rhs, 1e-12);
}

TEST(NormalCdf, ReferencePoints)
{
    EXPECT_NEAR(u::normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(u::normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(u::normalCdf(-1.96), 0.025, 1e-3);
}

TEST(Proportion, ConfidenceShrinksWithSamples)
{
    double wide = u::proportionConfidence95(0.5, 100);
    double narrow = u::proportionConfidence95(0.5, 10000);
    EXPECT_GT(wide, narrow);
    EXPECT_NEAR(narrow, 1.96 * 0.005, 1e-9);
}

TEST(PluginStats, EverySubstrateSelfReportsUnderItsNamespace)
{
    // Both builtin plugins must publish the same substrate.* schema
    // plus their ECC scheme's ecc.* namespace -- the CLI's --stats
    // output and any external scraper depend on these names.
    for (const std::string &name : sub::substrateNames()) {
        SCOPED_TRACE(name);
        sub::PlatformConfig cfg;
        cfg.substrate = name;
        cfg.cacheBytes = 64 * 1024;
        auto chip = sub::makeSubstrate(cfg, 0x57A7);
        fw::SimulatedMachine machine;
        fw::AuthenticacheClient client(*chip, machine);
        client.boot();

        u::StatsRegistry registry;
        chip->reportStats(registry, "substrate");

        for (const char *stat :
             {"word_reads", "word_writes", "ecc_corrected",
              "ecc_uncorrectable", "ecc_log_overflows",
              "level_transitions", "line_self_tests"}) {
            SCOPED_TRACE(stat);
            EXPECT_TRUE(
                registry.getInt("substrate", stat).has_value());
        }
        // Boot calibration sweeps the array and moves the level, so
        // the activity counters must already be live.
        EXPECT_GT(*registry.getInt("substrate", "line_self_tests"),
                  0u);
        EXPECT_GT(*registry.getInt("substrate", "level_transitions"),
                  0u);
        EXPECT_GT(*registry.getFloat("substrate", "level"), 0.0);

        EXPECT_EQ(*registry.getInt("ecc", "data_bits"), 64u);
        EXPECT_EQ(*registry.getInt("ecc", "corrects"), 1u);
        EXPECT_GT(*registry.getInt("ecc", "decodes"), 0u);
    }
}

TEST(ServerTrustStats, LedgerCountersSurfaceInRegistry)
{
    // A heartbeat session with a silent client: two missed rounds are
    // enough to light up the decay / failed-heartbeat / step-up
    // counters, and the full server.trust.* schema the CLI's --stats
    // output depends on must be present from the first collection.
    srv::ServerConfig cfg;
    cfg.trust.periodSteps = 2;
    srv::AuthenticationServer server(cfg, 0x57A8);
    u::SimClock clock;
    server.bindClock(&clock);

    const sim::CacheGeometry geom(256 * 1024);
    u::Rng rng(0x57A9);
    auto map = authenticache::mc::randomErrorMap(geom, 700, 20, rng);
    map.plane(690);
    server.enrollRecord(
        srv::DeviceRecord(1, std::move(map), {700}, {690}));

    proto::InMemoryChannel channel;
    proto::ServerEndpoint sink(channel);
    server.startHeartbeat(1, sink);
    for (int i = 0; i < 4; ++i) {
        clock.advance();
        server.tickHeartbeats(sink);
        server.tick();
    }

    u::StatsRegistry registry;
    srv::collectServerStats(server, registry);
    for (const char *stat :
         {"decays", "step_ups", "proactive_remaps", "revocations",
          "unlocks", "heartbeats_clean", "heartbeats_marginal",
          "heartbeats_failed", "heartbeats_active"}) {
        SCOPED_TRACE(stat);
        EXPECT_TRUE(
            registry.getInt("server.trust", stat).has_value());
    }
    EXPECT_EQ(*registry.getInt("server.trust", "heartbeats_failed"),
              2u);
    EXPECT_EQ(*registry.getInt("server.trust", "decays"), 2u);
    EXPECT_EQ(*registry.getInt("server.trust", "step_ups"), 1u);
    EXPECT_EQ(*registry.getInt("server.trust", "heartbeats_active"),
              1u);
    EXPECT_EQ(*registry.getInt("server.trust", "heartbeats_clean"),
              0u);
    EXPECT_EQ(*registry.getInt("server.trust", "revocations"), 0u);

    // Admin revoke + unlock round-trips through the same schema.
    server.revokeDevice(1);
    server.unlockDevice(1);
    u::StatsRegistry after;
    srv::collectServerStats(server, after);
    EXPECT_EQ(*after.getInt("server.trust", "unlocks"), 1u);
    EXPECT_EQ(*after.getInt("server.trust", "heartbeats_active"), 0u);
}
