/**
 * @file
 * Tests for the firmware layer: SMM machine, timing ledger, voltage
 * control (floor calibration, abort paths), error handler emergencies,
 * and the end-to-end client authentication algorithm.
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/nearest.hpp"
#include "firmware/client.hpp"
#include "sim/chip.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace core = authenticache::core;
namespace crypto = authenticache::crypto;
using authenticache::util::Rng;

namespace {

sim::ChipConfig
testChip()
{
    sim::ChipConfig cfg;
    cfg.cacheBytes = 1024 * 1024; // 2048 sets x 8 ways.
    return cfg;
}

} // namespace

TEST(Machine, SmiEntryParksOtherCores)
{
    fw::SimulatedMachine machine(4);
    EXPECT_FALSE(machine.inSmm());
    {
        fw::SmmSession session(machine, 1);
        EXPECT_TRUE(machine.inSmm());
        EXPECT_EQ(machine.coreState(1), fw::CoreState::Smm);
        EXPECT_EQ(machine.coreState(0), fw::CoreState::Halted);
        EXPECT_EQ(machine.coreState(2), fw::CoreState::Halted);
        EXPECT_EQ(session.master(), 1u);
        EXPECT_TRUE(session.token().live());
    }
    EXPECT_FALSE(machine.inSmm());
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(machine.coreState(i), fw::CoreState::Running);
    EXPECT_EQ(machine.smiCount(), 1u);
}

TEST(Machine, NestedSmiRejected)
{
    fw::SimulatedMachine machine(2);
    fw::SmmSession session(machine, 0);
    EXPECT_THROW(fw::SmmSession(machine, 1), fw::PrivilegeError);
}

TEST(Machine, BadCoreRejected)
{
    fw::SimulatedMachine machine(2);
    EXPECT_THROW(fw::SmmSession(machine, 5), std::out_of_range);
    EXPECT_THROW(fw::SimulatedMachine(0), std::invalid_argument);
}

TEST(Timing, LedgerAccumulates)
{
    fw::TimingParams params;
    params.smiEntryUs = 100.0;
    params.lineTestUs = 2.0;
    fw::TimingLedger ledger(params);
    ledger.addSmiEntry();
    ledger.addLineTests(10);
    ledger.addVddTransition(500.0);
    EXPECT_DOUBLE_EQ(ledger.totalUs(), 100.0 + 20.0 + 500.0);
    EXPECT_EQ(ledger.lineTests(), 10u);
    EXPECT_EQ(ledger.vddTransitions(), 1u);
    ledger.reset();
    EXPECT_DOUBLE_EQ(ledger.totalUs(), 0.0);
}

TEST(VoltageControl, RequiresSmmPrivilege)
{
    sim::SimulatedChip chip(testChip(), 1);
    fw::SimulatedMachine machine(2);
    fw::VoltageControl vc(chip);

    // A token is only mintable inside a session; verify the privilege
    // check fires when the session has ended by minting one in an
    // ended session scope via the client boot path instead: directly
    // constructing a dead token is impossible by design, so check the
    // nested-session and uncalibrated paths here.
    fw::SmmSession session(machine, 0);
    EXPECT_EQ(vc.requestVdd(session.token(), 700.0),
              fw::VddRequestStatus::Abort); // Not calibrated yet.
}

TEST(VoltageControl, CalibratesFloorInPlausibleBand)
{
    sim::SimulatedChip chip(testChip(), 2);
    fw::SimulatedMachine machine(2);
    fw::VoltageControl vc(chip);

    fw::SmmSession session(machine, 0);
    double floor = vc.calibrateFloor(session.token());
    EXPECT_TRUE(vc.calibrated());

    // The floor sits below the first-failure voltage (there must be a
    // usable window) and above the deepest uncorrectable threshold.
    double vcorr = chip.vminField().vcorrMv();
    EXPECT_LT(floor, vcorr);
    EXPECT_GT(floor, chip.vminField().maxUncorrectableMv() - 10.0);
    EXPECT_GT(vcorr - floor, 30.0);

    // Back at nominal after calibration.
    EXPECT_EQ(chip.vddMv(), chip.regulator().nominalMv());
    EXPECT_EQ(vc.calibrationCount(), 1u);
}

TEST(VoltageControl, EnforcesFloorAtRuntime)
{
    sim::SimulatedChip chip(testChip(), 3);
    fw::SimulatedMachine machine(2);
    fw::VoltageControl vc(chip);
    fw::SmmSession session(machine, 0);
    double floor = vc.calibrateFloor(session.token());

    EXPECT_EQ(vc.requestVdd(session.token(), floor - 10.0),
              fw::VddRequestStatus::Abort);
    EXPECT_EQ(vc.requestVdd(session.token(), floor + 10.0),
              fw::VddRequestStatus::Ok);
    EXPECT_NEAR(chip.vddMv(), floor + 10.0, 1.0);

    vc.restoreNominal(session.token());
    EXPECT_EQ(chip.vddMv(), chip.regulator().nominalMv());
}

TEST(ErrorHandler, EmergencyOnUncorrectable)
{
    sim::SimulatedChip chip(testChip(), 4);
    fw::SimulatedMachine machine(2);
    fw::VoltageControl vc(chip);
    fw::ErrorHandler handler(chip, vc);
    fw::SmmSession session(machine, 0);
    vc.calibrateFloor(session.token());

    // Find the chip's weakest line and push the array below its
    // uncorrectable threshold, bypassing the floor (as a real voltage
    // emergency would).
    const auto &field = chip.vminField();
    std::uint64_t weakest = 0;
    double best = -1e9;
    for (std::uint64_t i = 0; i < chip.geometry().lines(); ++i) {
        if (field.vUncorrectableMv(i) > best) {
            best = field.vUncorrectableMv(i);
            weakest = i;
        }
    }
    chip.cacheArray().setVddMv(best - 5.0);

    auto outcome = handler.testLine(
        session.token(), chip.geometry().pointOf(weakest), 2);
    EXPECT_TRUE(outcome.emergency);
    EXPECT_EQ(handler.emergencyCount(), 1u);
    // The emergency slammed the chip back to nominal.
    EXPECT_EQ(chip.vddMv(), chip.regulator().nominalMv());
}

class ClientAuth : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        chip = std::make_unique<sim::SimulatedChip>(testChip(), 77);
        machine = std::make_unique<fw::SimulatedMachine>(4);
        fw::ClientConfig cfg;
        cfg.selfTestAttempts = 8;
        client = std::make_unique<fw::AuthenticacheClient>(
            *chip, *machine, cfg);
        client->boot();
        level = static_cast<core::VddMv>(client->floorMv() + 10.0);
        map = std::make_unique<core::ErrorMap>(
            client->captureErrorMap({level}, 8));
    }

    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
    core::VddMv level = 0;
    std::unique_ptr<core::ErrorMap> map;
};

TEST_F(ClientAuth, CaptureFindsWindowErrors)
{
    // A 1MB cache has ~30 weak lines in the 65 mV window; at
    // floor+10 a healthy fraction of them is visible.
    EXPECT_GT(map->plane(level).errorCount(), 5u);
    EXPECT_LT(map->plane(level).errorCount(), 80u);
}

TEST_F(ClientAuth, AuthenticationMatchesIdealEvaluation)
{
    Rng rng(5);
    auto challenge =
        core::randomChallenge(chip->geometry(), level, 32, rng);
    core::Response expected = core::evaluate(*map, challenge);

    auto outcome = client->authenticate(challenge);
    ASSERT_TRUE(outcome.ok()) << outcome.abortReason;
    ASSERT_EQ(outcome.response.size(), 32u);

    // With 8 self-test attempts the response should be near-perfect:
    // allow a couple of bits of persistence/jitter noise.
    EXPECT_LE(expected.hammingDistance(outcome.response), 4u);
    EXPECT_GT(outcome.lineTests, 0u);
    EXPECT_GT(outcome.elapsedMs, 0.0);
    EXPECT_FALSE(machine->inSmm());
}

TEST_F(ClientAuth, LogicalRemapRoundTrip)
{
    // With a non-zero key the challenge travels in logical space but
    // the client still answers consistently with the server's logical
    // view of the map.
    crypto::Key256 key = crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("device-key")));
    client->setMapKey(key);

    core::LogicalRemap remap(key, chip->geometry());
    core::ErrorMap logical = remap.mapErrorMap(*map);

    Rng rng(6);
    auto challenge =
        core::randomChallenge(chip->geometry(), level, 32, rng);
    core::Response expected = core::evaluate(logical, challenge);

    auto outcome = client->authenticate(challenge);
    ASSERT_TRUE(outcome.ok()) << outcome.abortReason;
    EXPECT_LE(expected.hammingDistance(outcome.response), 4u);
}

TEST_F(ClientAuth, AbortsOnSubFloorChallenge)
{
    core::Challenge challenge;
    auto bad_level =
        static_cast<core::VddMv>(client->floorMv() - 50.0);
    challenge.bits.push_back(
        {{{0, 0}, bad_level}, {{1, 0}, bad_level}});

    auto outcome = client->authenticate(challenge);
    EXPECT_FALSE(outcome.ok());
    EXPECT_FALSE(outcome.abortReason.empty());
    // The chip is left at nominal.
    EXPECT_EQ(chip->vddMv(), chip->regulator().nominalMv());
    EXPECT_FALSE(machine->inSmm());
}

TEST_F(ClientAuth, AbortsWhenNotBooted)
{
    sim::SimulatedChip fresh(testChip(), 78);
    fw::SimulatedMachine fresh_machine(2);
    fw::AuthenticacheClient unbooted(fresh, fresh_machine);
    core::Challenge challenge;
    challenge.bits.push_back({{{0, 0}, 700}, {{1, 0}, 700}});
    auto outcome = unbooted.authenticate(challenge);
    EXPECT_FALSE(outcome.ok());
}

TEST_F(ClientAuth, RemapRequestInstallsKey)
{
    Rng rng(7);
    // Build a remap exchange by hand: identity-mapped challenge,
    // expected response from the physical map, helper data.
    auto challenge =
        core::randomChallenge(chip->geometry(), level, 40, rng);
    core::Response expected = core::evaluate(*map, challenge);

    crypto::FuzzyExtractor extractor(5);
    auto extraction = extractor.generate(expected, rng);

    crypto::Key256 before = client->mapKey();
    ASSERT_TRUE(client->processRemapRequest(challenge,
                                            extraction.helper,
                                            extractor));
    // The derived key matches the server's, because the response
    // reproduced within the code's correction radius.
    EXPECT_EQ(client->mapKey(), extraction.key);
    EXPECT_NE(client->mapKey(), before);
}

TEST_F(ClientAuth, CapturedMapRejectsBadLevels)
{
    auto bad = static_cast<core::VddMv>(client->floorMv() - 30.0);
    EXPECT_THROW(client->captureErrorMap({bad}, 1),
                 std::invalid_argument);
    EXPECT_EQ(chip->vddMv(), chip->regulator().nominalMv());
}
