/**
 * @file
 * Substrate plugin architecture: the refactor's load-bearing
 * guarantees.
 *
 *  1. Golden equivalence: the sram_vmin plugin built through the
 *     registry is bit-identical to the pre-refactor monolithic
 *     SimulatedChip. The constants below were captured by running the
 *     capture recipe against the tree at the commit before the
 *     FingerprintSubstrate interface existed; if any of them drifts,
 *     the refactor changed device physics.
 *  2. Factory transparency: registry construction and direct
 *     construction of the same substrate are indistinguishable.
 *  3. Registry surface: builtins are listed, unknowns are rejected.
 *  4. Substrate agnosticism end to end: both builtin substrates
 *     enroll and authenticate over the real socket transport with the
 *     server/protocol/verifier stack unmodified.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/challenge.hpp"
#include "net/epoll_transport.hpp"
#include "net/socket_client.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"
#include "substrate/config.hpp"
#include "substrate/dram_mra.hpp"
#include "substrate/registry.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace core = authenticache::core;
namespace ecc = authenticache::ecc;
namespace fw = authenticache::firmware;
namespace net = authenticache::net;
namespace protocol = authenticache::protocol;
namespace sim = authenticache::sim;
namespace srv = authenticache::server;
namespace sub = authenticache::substrate;
namespace util = authenticache::util;

namespace {

constexpr std::uint64_t kCacheBytes = 256 * 1024;

/** One pre-refactor observation of the monolithic SRAM chip. */
struct GoldenRow
{
    std::uint64_t seed;
    double floorMv;
    std::uint32_t mapChecksum;
    std::size_t totalErrors;
    const char *responseBits;
};

/**
 * Captured against the pre-plugin tree: 256 KB cache, default client
 * config, boot -> two challenge levels -> 4-attempt error map -> a
 * 32-bit challenge drawn from Rng(seed ^ 0xC4A11E46E).
 */
constexpr GoldenRow kGolden[] = {
    {0x5eedull, 660.000000, 0xe9b07de9u, 19,
     "11011101001000111100010101000110"},
    {0xd1e42ull, 655.000000, 0x565edae6u, 20,
     "01100111100111100001011011010001"},
    {0xbadc0deull, 645.000000, 0xa4842f2fu, 8,
     "01011001011001111111011011010000"},
};

/** Canonical serialization of an error map, per the capture recipe. */
std::uint32_t
mapChecksum(const core::ErrorMap &map)
{
    std::vector<std::uint8_t> bytes;
    for (core::VddMv level : map.levels()) {
        const auto &plane = map.plane(level);
        bytes.push_back(static_cast<std::uint8_t>(level & 0xff));
        bytes.push_back(static_cast<std::uint8_t>(level >> 8));
        for (const auto &p : plane.errors()) {
            for (int s = 0; s < 4; ++s)
                bytes.push_back(
                    static_cast<std::uint8_t>(p.set >> (8 * s)));
            for (int s = 0; s < 4; ++s)
                bytes.push_back(
                    static_cast<std::uint8_t>(p.way >> (8 * s)));
        }
    }
    return util::crc32(bytes);
}

sub::PlatformConfig
platformFor(const std::string &name)
{
    sub::PlatformConfig cfg;
    cfg.substrate = name;
    cfg.cacheBytes = kCacheBytes;
    return cfg;
}

} // namespace

TEST(SubstratePlugins, SramGoldenEquivalence)
{
    for (const GoldenRow &row : kGolden) {
        SCOPED_TRACE(row.seed);
        auto chip =
            sub::makeSubstrate(platformFor("sram_vmin"), row.seed);
        fw::SimulatedMachine machine;
        fw::AuthenticacheClient client(*chip, machine);

        double floor = client.boot();
        EXPECT_DOUBLE_EQ(floor, row.floorMv);

        auto levels = srv::defaultChallengeLevels(client, 2);
        core::ErrorMap map = client.captureErrorMap(levels, 4);
        EXPECT_EQ(mapChecksum(map), row.mapChecksum);
        EXPECT_EQ(map.totalErrors(), row.totalErrors);

        core::Challenge ch;
        util::Rng rng(row.seed ^ 0xC4A11E46E);
        const auto &geom = chip->geometry();
        for (int i = 0; i < 32; ++i) {
            core::ChallengeBit bit;
            bit.a.line = geom.pointOf(rng.nextBelow(geom.lines()));
            bit.a.vddMv = levels[rng.nextBelow(levels.size())];
            bit.b.line = geom.pointOf(rng.nextBelow(geom.lines()));
            bit.b.vddMv = levels[rng.nextBelow(levels.size())];
            ch.bits.push_back(bit);
        }
        auto out = client.authenticate(ch);

        std::string bits;
        for (std::size_t i = 0; i < out.response.size(); ++i)
            bits += out.response.get(i) ? '1' : '0';
        EXPECT_EQ(bits, row.responseBits);
    }
}

TEST(SubstratePlugins, FactoryMatchesDirectConstruction)
{
    constexpr std::uint64_t kSeed = 0xFAC7;
    const sub::PlatformConfig sram = platformFor("sram_vmin");
    const sub::PlatformConfig dram = platformFor("dram_mra");

    std::unique_ptr<sub::FingerprintSubstrate> direct[] = {
        std::make_unique<sim::SimulatedChip>(
            sram.chipConfig(), kSeed,
            ecc::makeEccScheme(sram.ecc)),
        std::make_unique<sub::DramMraChip>(
            dram.dramConfig(), kSeed, ecc::makeEccScheme(dram.ecc)),
    };
    const sub::PlatformConfig *configs[] = {&sram, &dram};

    for (std::size_t i = 0; i < 2; ++i) {
        SCOPED_TRACE(configs[i]->substrate);
        auto made = sub::makeSubstrate(*configs[i], kSeed);
        EXPECT_EQ(made->kind(), direct[i]->kind());

        fw::SimulatedMachine ma, mb;
        fw::AuthenticacheClient ca(*made, ma), cb(*direct[i], mb);
        EXPECT_DOUBLE_EQ(ca.boot(), cb.boot());

        auto levels = srv::defaultChallengeLevels(ca, 2);
        EXPECT_EQ(mapChecksum(ca.captureErrorMap(levels, 4)),
                  mapChecksum(cb.captureErrorMap(levels, 4)));
    }
}

TEST(SubstratePlugins, RegistryListsBuiltinsAndRejectsUnknown)
{
    EXPECT_TRUE(sub::substrateExists("sram_vmin"));
    EXPECT_TRUE(sub::substrateExists("dram_mra"));
    EXPECT_FALSE(sub::substrateExists("fram_hammer"));
    auto names = sub::substrateNames();
    EXPECT_EQ(names.size(), 2u);

    sub::PlatformConfig cfg;
    cfg.substrate = "fram_hammer";
    EXPECT_THROW((void)sub::makeSubstrate(cfg, 1),
                 std::invalid_argument);

    EXPECT_TRUE(ecc::eccSchemeExists("secded_72_64"));
    EXPECT_TRUE(ecc::eccSchemeExists("bch_127_64"));
    EXPECT_TRUE(ecc::eccSchemeExists("crc_edc"));
}

TEST(SubstratePlugins, BothSubstratesAuthenticateOverSocket)
{
    constexpr std::uint64_t kDeviceId = 42;
    constexpr std::uint64_t kSeed = 0x50C4E7;

    for (const char *name : {"sram_vmin", "dram_mra"}) {
        SCOPED_TRACE(name);
        auto chip = sub::makeSubstrate(platformFor(name), kSeed);
        fw::SimulatedMachine machine(kDeviceId);
        fw::AuthenticacheClient client(*chip, machine);
        client.boot();
        auto levels = srv::defaultChallengeLevels(client, 1);
        auto map = client.captureErrorMap(levels, 8);

        srv::ServerConfig scfg;
        scfg.challengeBits = 32;
        scfg.verifier.pIntra = 0.08;
        srv::AuthenticationServer server(scfg, 777);
        util::SimClock clock;
        server.bindClock(&clock);
        server.enrollWithMap(kDeviceId, map, client, levels, {});

        net::EpollTransport transport(server.frontEnd(),
                                      net::TransportConfig{});
        util::ThreadPool pool{2};
        net::SocketClient wire;
        ASSERT_TRUE(wire.connectTo(transport.port()));

        auto await = [&]() {
            using Reply =
                std::pair<std::uint64_t, protocol::Message>;
            std::optional<Reply> reply;
            for (int i = 0; i < 2000 && !reply; ++i) {
                transport.pump(pool, 1);
                reply = wire.readMessage(2);
            }
            return reply;
        };

        ASSERT_TRUE(wire.sendMessage(
            1, protocol::Message{protocol::AuthRequest{kDeviceId}}));
        auto challenge = await();
        ASSERT_TRUE(challenge.has_value());
        auto *ch =
            std::get_if<protocol::ChallengeMsg>(&challenge->second);
        ASSERT_NE(ch, nullptr);

        // The device answers from hardware: the firmware measures the
        // live fingerprint under K_A, no map replay involved.
        auto out = client.authenticate(ch->challenge);
        ASSERT_TRUE(wire.sendMessage(
            1, protocol::Message{
                   protocol::ResponseMsg{ch->nonce, out.response}}));
        auto decision = await();
        ASSERT_TRUE(decision.has_value());
        auto *d =
            std::get_if<protocol::AuthDecision>(&decision->second);
        ASSERT_NE(d, nullptr);
        EXPECT_TRUE(d->accepted);
    }
}
