/**
 * @file
 * Tests for the server components (records, challenge generation,
 * verification) and full client/server protocol integration, including
 * replay rejection, corrupted frames, imposter rejection, and the
 * adaptive remap exchange.
 */

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "attack/replay.hpp"
#include "core/crp.hpp"
#include "mc/mapgen.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace core = authenticache::core;
namespace crypto = authenticache::crypto;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
using authenticache::util::Rng;

namespace {

sim::ChipConfig
testChip()
{
    sim::ChipConfig cfg;
    cfg.cacheBytes = 1024 * 1024;
    return cfg;
}

const sim::CacheGeometry kGeom(1024 * 1024);

srv::DeviceRecord
makeRecord(std::uint64_t id, std::size_t errors, std::uint64_t seed)
{
    Rng rng(seed);
    auto map = authenticache::mc::randomErrorMap(kGeom, 700, errors,
                                                 rng);
    map.plane(690); // Reserved plane (may stay empty in unit tests).
    return srv::DeviceRecord(id, std::move(map), {700}, {690});
}

} // namespace

TEST(DeviceRecord, PairRetirementBothOrders)
{
    auto record = makeRecord(1, 20, 1);
    EXPECT_TRUE(record.pairAvailable(700, 5, 9));
    EXPECT_TRUE(record.consumePair(700, 5, 9));
    EXPECT_FALSE(record.pairAvailable(700, 5, 9));
    EXPECT_FALSE(record.pairAvailable(700, 9, 5)); // Both orderings.
    EXPECT_FALSE(record.consumePair(700, 9, 5));
    EXPECT_EQ(record.consumedCount(700), 1u);

    // A different level is independent.
    EXPECT_TRUE(record.pairAvailable(690, 5, 9));
}

TEST(DeviceRecord, RemainingPairsAccounting)
{
    auto record = makeRecord(1, 20, 2);
    auto total = core::possibleCrps(kGeom.lines());
    EXPECT_EQ(record.remainingPairs(700), total);
    record.consumePair(700, 1, 2);
    EXPECT_EQ(record.remainingPairs(700), total - 1);
}

TEST(DeviceRecord, RejectsOverlappingLevelRoles)
{
    Rng rng(3);
    auto map = authenticache::mc::randomErrorMap(kGeom, 700, 10, rng);
    EXPECT_THROW(
        srv::DeviceRecord(1, std::move(map), {700}, {700, 690}),
        std::invalid_argument);
}

TEST(Database, EnrollAndLookup)
{
    srv::EnrollmentDatabase db;
    db.enroll(makeRecord(7, 20, 4));
    EXPECT_TRUE(db.contains(7));
    EXPECT_FALSE(db.contains(8));
    EXPECT_EQ(db.at(7).deviceId(), 7u);
    EXPECT_THROW(db.at(8), std::out_of_range);
    EXPECT_THROW(db.enroll(makeRecord(7, 20, 5)),
                 std::invalid_argument);
    EXPECT_EQ(db.size(), 1u);
}

TEST(ChallengeGenerator, GeneratesAndRetires)
{
    auto record = makeRecord(1, 30, 6);
    srv::ChallengeGenerator gen(Rng(7));
    auto out = gen.generate(record, 700, 64);
    EXPECT_EQ(out.challenge.size(), 64u);
    EXPECT_EQ(out.expected.size(), 64u);
    EXPECT_EQ(record.consumedCount(700), 64u);

    // Expected response matches ideal evaluation on the logical map.
    core::LogicalRemap remap(record.mapKey(),
                             record.physicalMap().geometry());
    auto logical = remap.mapErrorMap(record.physicalMap());
    EXPECT_EQ(core::evaluate(logical, out.challenge), out.expected);
}

TEST(ChallengeGenerator, RejectsWrongLevelRole)
{
    auto record = makeRecord(1, 30, 8);
    srv::ChallengeGenerator gen(Rng(9));
    EXPECT_THROW(gen.generate(record, 690, 16),
                 std::invalid_argument); // Reserved, not challenge.
    EXPECT_THROW(gen.generateReserved(record, 700, 16),
                 std::invalid_argument);
    EXPECT_THROW(gen.generate(record, 777, 16),
                 std::invalid_argument); // No such plane/level.
}

TEST(ChallengeGenerator, ReservedUsesIdentityMapping)
{
    Rng rng(10);
    auto map = authenticache::mc::randomErrorMap(kGeom, 700, 25, rng);
    // Give the reserved plane errors too.
    auto map2 = authenticache::mc::randomErrorMap(kGeom, 690, 25, rng);
    for (const auto &e : map2.plane(690).errors())
        map.plane(690).add(e);

    srv::DeviceRecord record(1, std::move(map), {700}, {690});
    crypto::Key256 key = crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("k")));
    record.setMapKey(key);

    srv::ChallengeGenerator gen(Rng(11));
    auto out = gen.generateReserved(record, 690, 32);
    // Identity mapping: expected equals evaluation on the raw
    // physical map.
    EXPECT_EQ(core::evaluate(record.physicalMap(), out.challenge),
              out.expected);
}

TEST(Verifier, ThresholdAndVerdicts)
{
    srv::Verifier verifier;
    auto threshold = verifier.thresholdFor(128);
    EXPECT_GT(threshold, 0);
    EXPECT_LT(threshold, 64);

    core::Response expected(128);
    core::Response close = expected;
    for (std::int64_t i = 0; i < threshold; ++i)
        close.flip(i);
    EXPECT_TRUE(verifier.verify(expected, close).accepted);

    core::Response far = expected;
    for (std::int64_t i = 0; i <= threshold; ++i)
        far.flip(i);
    EXPECT_FALSE(verifier.verify(expected, far).accepted);
}

TEST(Verifier, LengthMismatchRejected)
{
    srv::Verifier verifier;
    core::Response expected(64);
    core::Response wrong(32);
    EXPECT_FALSE(verifier.verify(expected, wrong).accepted);
}

TEST(VerifierConcurrentCopy, AssignRacingVerifyNeverTearsPolicy)
{
    // Regression for the torn-policy race fixed during the
    // lock-discipline migration: copy/assignment used to read the
    // source's (pInter, pIntra) doubles without the source's
    // cacheMutex, so a verify() racing an operator= could observe half
    // of the old policy and half of the new. Both policies here sit on
    // the same side of the verdicts being checked, so any interleaving
    // must still produce consistent accept/reject results; TSan (this
    // suite matches the CI filter) catches the torn read itself.
    srv::VerifierPolicy strict;
    strict.pIntra = 0.05;
    srv::VerifierPolicy loose;
    loose.pIntra = 0.07;

    srv::Verifier shared(strict);
    const srv::Verifier strictSrc(strict);
    const srv::Verifier looseSrc(loose);

    core::Response expected(128);
    core::Response identical = expected;
    core::Response opposite = expected;
    for (std::size_t i = 0; i < 128; ++i)
        opposite.flip(i);

    std::thread writer([&] {
        for (int i = 0; i < 400; ++i)
            shared = (i % 2 == 0) ? looseSrc : strictSrc;
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r)
        readers.emplace_back([&] {
            for (int i = 0; i < 400; ++i) {
                EXPECT_TRUE(shared.verify(expected, identical).accepted);
                EXPECT_FALSE(shared.verify(expected, opposite).accepted);
                auto p = shared.policy();
                // Never a mix of the two source policies.
                EXPECT_TRUE(p.pIntra == strict.pIntra ||
                            p.pIntra == loose.pIntra);
                EXPECT_EQ(p.pInter, 0.5);
            }
        });
    writer.join();
    for (auto &th : readers)
        th.join();
}

TEST(VerifierConcurrentCopy, ConcurrentCopyConstructionFromLiveSource)
{
    // Copy-construction takes the source's lock; copying from a
    // verifier that is concurrently being reassigned must yield one of
    // the two source policies, never a blend.
    srv::VerifierPolicy a;
    a.pIntra = 0.05;
    srv::VerifierPolicy b;
    b.pIntra = 0.07;
    srv::Verifier source(a);
    const srv::Verifier srcA(a);
    const srv::Verifier srcB(b);

    std::thread writer([&] {
        for (int i = 0; i < 300; ++i)
            source = (i % 2 == 0) ? srcB : srcA;
    });
    std::vector<std::thread> copiers;
    for (int r = 0; r < 3; ++r)
        copiers.emplace_back([&] {
            for (int i = 0; i < 300; ++i) {
                srv::Verifier copy(source);
                auto p = copy.policy();
                EXPECT_TRUE(p.pIntra == a.pIntra ||
                            p.pIntra == b.pIntra);
            }
        });
    writer.join();
    for (auto &th : copiers)
        th.join();
}

/**
 * Full-stack fixture: one genuine device enrolled with a server,
 * talking over the in-memory channel.
 */
class Integration : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        chip = std::make_unique<sim::SimulatedChip>(testChip(), 1001);
        machine = std::make_unique<fw::SimulatedMachine>(4);
        fw::ClientConfig client_cfg;
        client_cfg.selfTestAttempts = 8;
        client = std::make_unique<fw::AuthenticacheClient>(
            *chip, *machine, client_cfg);
        client->boot();

        // 128-bit challenges: 64-bit CRPs have a visible false-reject
        // rate (the paper reaches the same conclusion in Sec 6.3).
        srv::ServerConfig server_cfg;
        server_cfg.challengeBits = 128;
        server_cfg.remapSecretBits = 16;
        server_cfg.verifier.pIntra = 0.08;
        server = std::make_unique<srv::AuthenticationServer>(
            server_cfg, 555);

        auto levels = srv::defaultChallengeLevels(*client, 2);
        auto reserved = srv::defaultReservedLevel(*client);
        server->enroll(42, *client, levels, {reserved});

        channel.attachTranscript(&transcript);
        server_endpoint =
            std::make_unique<proto::ServerEndpoint>(channel);
        agent = std::make_unique<srv::DeviceAgent>(
            42, *client, proto::ClientEndpoint(channel));
    }

    void
    authenticateOnce()
    {
        agent->requestAuthentication();
        srv::runExchange(*server, *server_endpoint, *agent);
    }

    std::unique_ptr<sim::SimulatedChip> chip;
    std::unique_ptr<fw::SimulatedMachine> machine;
    std::unique_ptr<fw::AuthenticacheClient> client;
    std::unique_ptr<srv::AuthenticationServer> server;
    proto::InMemoryChannel channel;
    proto::Transcript transcript;
    std::unique_ptr<proto::ServerEndpoint> server_endpoint;
    std::unique_ptr<srv::DeviceAgent> agent;
};

TEST_F(Integration, GenuineDeviceAccepted)
{
    authenticateOnce();
    ASSERT_TRUE(agent->lastDecision().has_value())
        << (agent->errors().empty() ? "no decision"
                                    : agent->errors().front());
    EXPECT_TRUE(agent->lastDecision()->accepted);
    ASSERT_EQ(server->reports().size(), 1u);
    EXPECT_TRUE(server->reports()[0].accepted);
    EXPECT_EQ(server->database().at(42).accepted(), 1u);
}

TEST_F(Integration, RepeatedAuthenticationsUseFreshChallenges)
{
    authenticateOnce();
    authenticateOnce();
    authenticateOnce();
    ASSERT_EQ(server->reports().size(), 3u);
    for (const auto &r : server->reports())
        EXPECT_TRUE(r.accepted);
    // 3 x 128 fresh pairs consumed across the challenge levels.
    const auto &record = server->database().at(42);
    std::size_t consumed = 0;
    for (auto level : record.challengeLevels())
        consumed += record.consumedCount(level);
    EXPECT_EQ(consumed, 384u);
}

TEST_F(Integration, UnknownDeviceRejected)
{
    srv::DeviceAgent stranger(99, *client,
                              proto::ClientEndpoint(channel));
    stranger.requestAuthentication();
    srv::runExchange(*server, *server_endpoint, stranger);
    EXPECT_FALSE(stranger.lastDecision().has_value());
    ASSERT_FALSE(stranger.errors().empty());
    EXPECT_NE(stranger.errors()[0].find("unknown device"),
              std::string::npos);
}

TEST_F(Integration, ImposterChipRejected)
{
    // A different die answering device 42's challenges: the responses
    // are uncorrelated with the enrolled map, so the Hamming distance
    // lands near bits/2, far above the threshold. Give the imposter a
    // slightly lower Vcorr so its calibrated floor sits below the
    // genuine device's challenge levels (otherwise it would simply
    // abort, which is also a rejection but not the one under test).
    sim::ChipConfig imposter_cfg = testChip();
    imposter_cfg.variation.vcorrMeanMv = 700.0;
    sim::SimulatedChip imposter_chip(imposter_cfg, 2002);
    fw::SimulatedMachine imposter_machine(2);
    fw::AuthenticacheClient imposter(imposter_chip, imposter_machine);
    imposter.boot();
    imposter.setMapKey(client->mapKey());

    srv::DeviceAgent imposter_agent(42, imposter,
                                    proto::ClientEndpoint(channel));
    imposter_agent.requestAuthentication();
    srv::runExchange(*server, *server_endpoint, imposter_agent);

    ASSERT_TRUE(imposter_agent.lastDecision().has_value());
    EXPECT_FALSE(imposter_agent.lastDecision()->accepted);
    EXPECT_GT(imposter_agent.lastDecision()->hammingDistance, 16u);
}

TEST_F(Integration, ReplayedResponseNeverGrantsFreshAccess)
{
    authenticateOnce();
    ASSERT_TRUE(agent->lastDecision()->accepted);

    // Replay the captured response frame: the nonce is spent, so the
    // server serves the original decision from its completed cache
    // (idempotent retransmission handling) without re-verifying,
    // re-counting, or logging a fresh report.
    authenticache::attack::ReplayAttacker attacker(transcript);
    auto frame = attacker.lastResponseFrame();
    ASSERT_TRUE(frame.has_value());
    std::size_t reports_before = server->reports().size();
    std::uint64_t accepts_before =
        server->database().at(42).accepted();

    attacker.replayToServer(channel, *frame);
    server->pumpAll(*server_endpoint);

    EXPECT_EQ(server->reports().size(), reports_before);
    EXPECT_EQ(server->database().at(42).accepted(), accepts_before);
    EXPECT_EQ(server->duplicateCompletions(), 1u);

    // A replay of a nonce the server has never completed still gets
    // a hard error.
    proto::ResponseMsg stray;
    stray.nonce = 0xDEAD;
    stray.response = core::Response(128);
    channel.sendToServer(proto::encodeMessage(stray));
    server->pumpAll(*server_endpoint);
    agent->pumpAll();
    ASSERT_FALSE(agent->errors().empty());
    EXPECT_NE(agent->errors().back().find("unknown nonce"),
              std::string::npos);
}

TEST_F(Integration, CorruptedFrameHandled)
{
    channel.corruptNextFrames(1);
    agent->requestAuthentication(); // This frame gets corrupted.
    srv::runExchange(*server, *server_endpoint, *agent);
    // The server answered with a decode error; no decision reached.
    EXPECT_FALSE(agent->lastDecision().has_value());
    ASSERT_FALSE(agent->errors().empty());
    EXPECT_NE(agent->errors().back().find("decode"),
              std::string::npos);

    // The system recovers on the next clean exchange.
    authenticateOnce();
    ASSERT_TRUE(agent->lastDecision().has_value());
    EXPECT_TRUE(agent->lastDecision()->accepted);
}

TEST_F(Integration, RemapRotatesKeyAndAuthStillWorks)
{
    crypto::Key256 before = client->mapKey();
    ASSERT_EQ(server->database().at(42).mapKey(), before);

    server->startRemap(42, *server_endpoint);
    srv::runExchange(*server, *server_endpoint, *agent);

    EXPECT_EQ(server->remapsCommitted(), 1u);
    EXPECT_EQ(agent->remapsProcessed(), 1u);
    crypto::Key256 after = client->mapKey();
    EXPECT_NE(after, before);
    EXPECT_EQ(server->database().at(42).mapKey(), after);

    // Authentication under the rotated key still succeeds.
    authenticateOnce();
    ASSERT_TRUE(agent->lastDecision().has_value());
    EXPECT_TRUE(agent->lastDecision()->accepted);
}

TEST_F(Integration, LevelsHelperValidation)
{
    sim::SimulatedChip fresh(testChip(), 3003);
    fw::SimulatedMachine fresh_machine(2);
    fw::AuthenticacheClient unbooted(fresh, fresh_machine);
    EXPECT_THROW(srv::defaultChallengeLevels(unbooted, 2),
                 std::logic_error);
    EXPECT_THROW(srv::defaultReservedLevel(unbooted),
                 std::logic_error);
}
