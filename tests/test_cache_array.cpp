/**
 * @file
 * Tests for the voltage-sensitive cache array, the self-test engine,
 * and the assembled chip.
 */

#include <set>

#include <gtest/gtest.h>

#include "sim/chip.hpp"

namespace s = authenticache::sim;

namespace {

/** Small chip for fast tests. */
s::ChipConfig
smallConfig()
{
    s::ChipConfig cfg;
    cfg.cacheBytes = 1024 * 1024;
    return cfg;
}

/**
 * Find a weak line (fails in the window) with high persistence; a
 * q >= 0.75 line misses 8 straight self-tests with probability
 * <= 6e-5, and the tests below retry at least that often.
 */
std::uint64_t
pickWeakLine(const s::VminField &field, double at_mv)
{
    for (std::uint64_t line : field.linesFailingAt(at_mv)) {
        if (field.persistence(line) >= 0.75 &&
            field.vUncorrectableMv(line) < at_mv) {
            return line;
        }
    }
    throw std::runtime_error("no deterministic weak line found");
}

/** Read a line until a corrected event shows (bounded retries). */
bool
readsCorrectedWithin(s::SimulatedChip &chip, const s::LinePoint &p,
                     int tries)
{
    for (int i = 0; i < tries; ++i) {
        chip.cacheArray().fillLine(p, 0xAAAAAAAAAAAAAAAAull);
        if (chip.cacheArray().readLine(p).corrected)
            return true;
    }
    return false;
}

} // namespace

TEST(CacheArray, NominalVoltageReadsClean)
{
    s::SimulatedChip chip(smallConfig(), 42);
    auto &array = chip.cacheArray();
    std::vector<std::uint64_t> data(chip.geometry().wordsPerLine());
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = 0x0123456789ABCDEFull * (i + 1);

    s::LinePoint p{10, 3};
    array.writeLine(p, data);
    for (std::uint32_t w = 0; w < data.size(); ++w) {
        auto r = array.readWord(p, w);
        EXPECT_EQ(r.status, authenticache::ecc::DecodeStatus::Ok);
        EXPECT_EQ(r.data, data[w]);
    }
    EXPECT_EQ(chip.errorLog().pending(), 0u);
}

TEST(CacheArray, WeakLineCorrectsAtLowVoltage)
{
    s::SimulatedChip chip(smallConfig(), 43);
    const auto &field = chip.vminField();
    double test_mv = field.vcorrMv() - 30.0;
    std::uint64_t weak = pickWeakLine(field, test_mv);
    s::LinePoint p = chip.geometry().pointOf(weak);

    ASSERT_EQ(chip.setVddMv(test_mv), s::VoltageStatus::Ok);
    EXPECT_TRUE(readsCorrectedWithin(chip, p, 30));

    // Data must still read back correct after ECC correction.
    auto word =
        chip.cacheArray().readWord(p, field.weakWord(weak));
    EXPECT_EQ(word.data, 0xAAAAAAAAAAAAAAAAull);

    auto events = chip.errorLog().drain();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().line, p);
    EXPECT_EQ(events.front().severity, s::EccSeverity::Corrected);
    EXPECT_FALSE(chip.errorLog().totalUncorrectable() > 0);
}

TEST(CacheArray, DeepUndervoltIsUncorrectable)
{
    s::SimulatedChip chip(smallConfig(), 44);
    const auto &field = chip.vminField();

    // Find the weakest line and go below its uncorrectable threshold.
    std::uint64_t weak =
        pickWeakLine(field, field.vcorrMv() - 30.0);
    double deep = field.vUncorrectableMv(weak) - 5.0;
    s::LinePoint p = chip.geometry().pointOf(weak);

    ASSERT_EQ(chip.setVddMv(deep), s::VoltageStatus::Ok);
    bool saw_uncorrectable = false;
    for (int i = 0; i < 10 && !saw_uncorrectable; ++i) {
        chip.cacheArray().fillLine(p, 0);
        saw_uncorrectable = chip.cacheArray().readLine(p).uncorrectable;
    }
    EXPECT_TRUE(saw_uncorrectable);
    EXPECT_GT(chip.errorLog().totalUncorrectable(), 0u);
}

TEST(CacheArray, StrongLinesStayCleanInWindow)
{
    s::SimulatedChip chip(smallConfig(), 45);
    const auto &field = chip.vminField();
    double test_mv = field.vcorrMv() - 30.0;
    ASSERT_EQ(chip.setVddMv(test_mv), s::VoltageStatus::Ok);

    // A line whose correctable threshold is far below never errors.
    s::LinePoint strong{0, 0};
    for (std::uint64_t i = 0; i < chip.geometry().lines(); ++i) {
        if (field.vCorrectableMv(i) < test_mv - 50.0) {
            strong = chip.geometry().pointOf(i);
            break;
        }
    }
    for (int i = 0; i < 20; ++i) {
        chip.cacheArray().fillLine(strong, 0x5555555555555555ull);
        auto r = chip.cacheArray().readLine(strong);
        EXPECT_FALSE(r.corrected);
        EXPECT_FALSE(r.uncorrectable);
    }
}

TEST(CacheArray, ConditionsShiftFailures)
{
    // A line just below the window edge fails only when heat raises
    // its threshold.
    s::ChipConfig cfg = smallConfig();
    cfg.environment.tempCoeffMvPerC = 0.5;
    cfg.environment.tempCoeffSigma = 0.0;
    s::SimulatedChip chip(cfg, 46);
    const auto &field = chip.vminField();

    std::uint64_t weak = pickWeakLine(field, field.vcorrMv() - 40.0);
    // Sit 5 mV above the line's threshold: clean when cool.
    double v = field.vCorrectableMv(weak) + 5.0;
    ASSERT_EQ(chip.setVddMv(v), s::VoltageStatus::Ok);
    s::LinePoint p = chip.geometry().pointOf(weak);

    s::Conditions cool;
    cool.measurementSigmaMv = 0.0;
    chip.setConditions(cool);
    chip.cacheArray().fillLine(p, 0);
    EXPECT_FALSE(chip.cacheArray().readLine(p).corrected);

    s::Conditions hot;
    hot.temperatureDeltaC = 25.0; // +12.5 mV shift > 5 mV headroom.
    hot.measurementSigmaMv = 0.0;
    chip.setConditions(hot);
    bool corrected = false;
    for (int i = 0; i < 30 && !corrected; ++i) {
        chip.cacheArray().fillLine(p, 0);
        corrected = chip.cacheArray().readLine(p).corrected;
    }
    EXPECT_TRUE(corrected);
}

TEST(CacheArray, ValidatesArguments)
{
    s::SimulatedChip chip(smallConfig(), 47);
    std::vector<std::uint64_t> wrong(3);
    EXPECT_THROW(chip.cacheArray().writeLine({0, 0}, wrong),
                 std::invalid_argument);
    EXPECT_THROW(chip.cacheArray().readWord({0, 0}, 100),
                 std::out_of_range);
}

TEST(SelfTest, SweepFindsWindowLines)
{
    s::SimulatedChip chip(smallConfig(), 48);
    const auto &field = chip.vminField();
    double test_mv = field.vcorrMv() - 30.0;
    ASSERT_EQ(chip.setVddMv(test_mv), s::VoltageStatus::Ok);

    auto sweep = chip.selfTest().sweepAll(8);

    // Measurement jitter (sigma 1 mV) blurs the window edge by a few
    // mV; bound the sweep between the +5 mV (certain) and -5 mV
    // (possible) weak sets.
    auto certain = field.linesFailingAt(test_mv + 5.0);
    auto possible = field.linesFailingAt(test_mv - 5.0);
    EXPECT_GE(sweep.correctableLines.size(),
              certain.size() * 8 / 10);
    EXPECT_LE(sweep.correctableLines.size(), possible.size());

    // Every reported line must genuinely be a weak line.
    std::set<std::uint64_t> weak(possible.begin(), possible.end());
    for (const auto &p : sweep.correctableLines)
        EXPECT_TRUE(weak.count(chip.geometry().lineIndex(p)));
}

TEST(SelfTest, SweepAtNominalFindsNothing)
{
    s::SimulatedChip chip(smallConfig(), 49);
    auto sweep = chip.selfTest().sweepAll(1);
    EXPECT_TRUE(sweep.correctableLines.empty());
    EXPECT_EQ(sweep.uncorrectableCount, 0u);
    EXPECT_EQ(sweep.linesTested, chip.geometry().lines());
}

TEST(SelfTest, TargetedTestTriggersWeakLine)
{
    s::SimulatedChip chip(smallConfig(), 50);
    const auto &field = chip.vminField();
    double test_mv = field.vcorrMv() - 30.0;
    std::uint64_t weak = pickWeakLine(field, test_mv);
    ASSERT_EQ(chip.setVddMv(test_mv), s::VoltageStatus::Ok);

    auto r =
        chip.selfTest().testLine(chip.geometry().pointOf(weak), 30);
    EXPECT_TRUE(r.triggered);
    EXPECT_LE(r.attemptsUsed, 30u);
}

TEST(SelfTest, CountsLineTests)
{
    s::SimulatedChip chip(smallConfig(), 51);
    chip.selfTest().resetCounters();
    chip.selfTest().testLine({0, 0}, 4);
    // Clean line: all 4 attempts consumed.
    EXPECT_EQ(chip.selfTest().lineTestsPerformed(), 4u);
}

TEST(Chip, VoltagePropagatesToArray)
{
    s::SimulatedChip chip(smallConfig(), 52);
    ASSERT_EQ(chip.setVddMv(700.0), s::VoltageStatus::Ok);
    EXPECT_EQ(chip.cacheArray().vddMv(), 700.0);
    chip.emergencyRaise();
    EXPECT_EQ(chip.cacheArray().vddMv(), 800.0);
}

TEST(Chip, SameSeedSameFingerprint)
{
    s::SimulatedChip a(smallConfig(), 99);
    s::SimulatedChip b(smallConfig(), 99);
    double v = a.vminField().vcorrMv() - 30.0;
    EXPECT_EQ(a.vminField().linesFailingAt(v),
              b.vminField().linesFailingAt(v));
}
