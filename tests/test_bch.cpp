/**
 * @file
 * Tests for GF(2^m) arithmetic, the BCH codec (property: corrects
 * every error pattern up to t, detects failure beyond), and the
 * BCH-based fuzzy extractor.
 */

#include <gtest/gtest.h>

#include "crypto/bch_fuzzy_extractor.hpp"
#include "ecc/bch.hpp"
#include "ecc/gf2m.hpp"
#include "util/rng.hpp"

namespace e = authenticache::ecc;
namespace c = authenticache::crypto;
using authenticache::util::BitVec;
using authenticache::util::Rng;

TEST(GF2m, RejectsBadDegrees)
{
    EXPECT_THROW(e::GF2m(2), std::invalid_argument);
    EXPECT_THROW(e::GF2m(15), std::invalid_argument);
}

class GF2mDegrees : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GF2mDegrees, FieldAxiomsSampled)
{
    e::GF2m field(GetParam());
    Rng rng(GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        std::uint32_t a =
            static_cast<std::uint32_t>(rng.nextBelow(field.size()));
        std::uint32_t b =
            static_cast<std::uint32_t>(rng.nextBelow(field.size()));
        std::uint32_t nz = static_cast<std::uint32_t>(
            1 + rng.nextBelow(field.order()));

        // Commutativity and identity.
        ASSERT_EQ(field.mul(a, b), field.mul(b, a));
        ASSERT_EQ(field.mul(a, 1), a);
        ASSERT_EQ(field.mul(a, 0), 0u);

        // Inverse.
        ASSERT_EQ(field.mul(nz, field.inv(nz)), 1u);
        ASSERT_EQ(field.div(field.mul(a, nz), nz), a);

        // Distributivity over XOR addition.
        std::uint32_t cval = static_cast<std::uint32_t>(
            rng.nextBelow(field.size()));
        ASSERT_EQ(field.mul(a, b ^ cval),
                  field.mul(a, b) ^ field.mul(a, cval));
    }
}

TEST_P(GF2mDegrees, AlphaGeneratesTheGroup)
{
    e::GF2m field(GetParam());
    // alpha^i must enumerate all nonzero elements exactly once.
    std::vector<bool> seen(field.size(), false);
    for (std::uint32_t i = 0; i < field.order(); ++i) {
        std::uint32_t v = field.alphaPow(i);
        ASSERT_NE(v, 0u);
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
        ASSERT_EQ(field.logAlpha(v), i);
    }
    EXPECT_EQ(field.alphaPow(field.order()), 1u);
}

INSTANTIATE_TEST_SUITE_P(Degrees, GF2mDegrees,
                         ::testing::Values(3u, 4u, 7u, 8u, 10u));

TEST(Bch, StandardCodeShapes)
{
    // Classical narrow-sense BCH parameters.
    e::BchCode c1(4, 1);
    EXPECT_EQ(c1.n(), 15u);
    EXPECT_EQ(c1.k(), 11u);
    e::BchCode c2(4, 2);
    EXPECT_EQ(c2.k(), 7u);
    e::BchCode c3(4, 3);
    EXPECT_EQ(c3.k(), 5u);
    e::BchCode c127(7, 10);
    EXPECT_EQ(c127.n(), 127u);
    EXPECT_EQ(c127.k(), 64u);
}

TEST(Bch, EncodeIsSystematic)
{
    e::BchCode code(7, 10);
    Rng rng(1);
    BitVec message(code.k());
    for (std::size_t i = 0; i < message.size(); ++i)
        message.set(i, rng.nextBool());
    auto codeword = code.encode(message);
    EXPECT_EQ(codeword.size(), code.n());
    EXPECT_EQ(code.extractMessage(codeword), message);
}

TEST(Bch, CleanCodewordDecodes)
{
    e::BchCode code(7, 10);
    Rng rng(2);
    BitVec message(code.k());
    for (std::size_t i = 0; i < message.size(); ++i)
        message.set(i, rng.nextBool());
    auto codeword = code.encode(message);
    auto decoded = code.decode(codeword);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, codeword);
}

class BchErrorCounts : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BchErrorCounts, CorrectsUpToTErrors)
{
    const unsigned errors = GetParam();
    e::BchCode code(7, 10);
    Rng rng(100 + errors);

    for (int trial = 0; trial < 20; ++trial) {
        BitVec message(code.k());
        for (std::size_t i = 0; i < message.size(); ++i)
            message.set(i, rng.nextBool());
        auto codeword = code.encode(message);

        BitVec corrupted = codeword;
        for (auto pos : rng.sampleDistinct(code.n(), errors))
            corrupted.flip(pos);

        auto decoded = code.decode(corrupted);
        ASSERT_TRUE(decoded.has_value())
            << errors << " errors, trial " << trial;
        ASSERT_EQ(*decoded, codeword);
        ASSERT_EQ(code.extractMessage(*decoded), message);
    }
}

INSTANTIATE_TEST_SUITE_P(UpToT, BchErrorCounts,
                         ::testing::Values(1u, 2u, 5u, 9u, 10u));

TEST(Bch, BeyondTMostlyDetected)
{
    // t+2 and more errors: the decoder must never silently return a
    // *wrong* message claiming success on the original; it either
    // fails, or lands on a different valid codeword (bounded-distance
    // decoding ambiguity) -- but it must never return the original
    // codeword, and flagged failures should dominate.
    e::BchCode code(7, 10);
    Rng rng(55);
    int flagged = 0;
    const int trials = 60;
    for (int trial = 0; trial < trials; ++trial) {
        BitVec message(code.k());
        for (std::size_t i = 0; i < message.size(); ++i)
            message.set(i, rng.nextBool());
        auto codeword = code.encode(message);
        BitVec corrupted = codeword;
        for (auto pos : rng.sampleDistinct(code.n(), 15))
            corrupted.flip(pos);
        auto decoded = code.decode(corrupted);
        if (!decoded) {
            ++flagged;
        } else {
            EXPECT_NE(*decoded, codeword);
        }
    }
    EXPECT_GT(flagged, trials / 2);
}

TEST(Bch, SmallCodeExhaustiveSingleError)
{
    // BCH(15, 11, t=1) is the Hamming code: every single-bit error in
    // every position must correct, for several messages.
    e::BchCode code(4, 1);
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        BitVec message(code.k());
        for (std::size_t i = 0; i < message.size(); ++i)
            message.set(i, rng.nextBool());
        auto codeword = code.encode(message);
        for (unsigned pos = 0; pos < code.n(); ++pos) {
            BitVec corrupted = codeword;
            corrupted.flip(pos);
            auto decoded = code.decode(corrupted);
            ASSERT_TRUE(decoded.has_value()) << "pos " << pos;
            ASSERT_EQ(*decoded, codeword) << "pos " << pos;
        }
    }
}

TEST(Bch, ValidatesLengths)
{
    e::BchCode code(7, 10);
    EXPECT_THROW(code.encode(BitVec(10)), std::invalid_argument);
    EXPECT_THROW(code.decode(BitVec(10)), std::invalid_argument);
    EXPECT_THROW(e::BchCode(4, 0), std::invalid_argument);
    EXPECT_THROW(e::BchCode(4, 8), std::invalid_argument);
}

TEST(BchFuzzy, CleanReproduction)
{
    c::BchFuzzyExtractor fe(7, 10);
    EXPECT_EQ(fe.responseBits(), 127u);
    EXPECT_EQ(fe.secretBits(), 64u);

    Rng rng(11);
    BitVec response(fe.responseBits());
    for (std::size_t i = 0; i < response.size(); ++i)
        response.set(i, rng.nextBool());

    auto out = fe.generate(response, rng);
    auto key = fe.reproduce(response, out.helper);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, out.key);
}

TEST(BchFuzzy, ToleratesTFlips)
{
    c::BchFuzzyExtractor fe(7, 10);
    Rng rng(13);
    BitVec response(fe.responseBits());
    for (std::size_t i = 0; i < response.size(); ++i)
        response.set(i, rng.nextBool());
    auto out = fe.generate(response, rng);

    BitVec noisy = response;
    for (auto pos : rng.sampleDistinct(fe.responseBits(), 10))
        noisy.flip(pos);
    auto key = fe.reproduce(noisy, out.helper);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, out.key);
}

TEST(BchFuzzy, FlagsExcessNoise)
{
    c::BchFuzzyExtractor fe(7, 10);
    Rng rng(17);
    BitVec response(fe.responseBits());
    for (std::size_t i = 0; i < response.size(); ++i)
        response.set(i, rng.nextBool());
    auto out = fe.generate(response, rng);

    BitVec noisy = response;
    for (auto pos : rng.sampleDistinct(fe.responseBits(), 30))
        noisy.flip(pos);
    auto key = fe.reproduce(noisy, out.helper);
    // Either flagged, or (rarely) decoded to a different key; never
    // the right key by luck.
    if (key.has_value()) {
        EXPECT_NE(*key, out.key);
    }
}

TEST(BchFuzzy, BetterRateThanRepetition)
{
    // At ~the same tolerated error fraction, BCH extracts many more
    // secret bits per response bit than 5x repetition.
    c::BchFuzzyExtractor bch(7, 10);   // 64 of 127 bits, ~7.9% noise.
    c::FuzzyExtractor rep(5);          // 1 of 5 bits, <40% per group.
    double bch_rate = static_cast<double>(bch.secretBits()) /
                      static_cast<double>(bch.responseBits());
    double rep_rate = 1.0 / 5.0;
    EXPECT_GT(bch_rate, 2.0 * rep_rate);
}

TEST(BchFuzzy, ValidatesLengths)
{
    c::BchFuzzyExtractor fe(7, 10);
    Rng rng(19);
    EXPECT_THROW(fe.generate(BitVec(100), rng),
                 std::invalid_argument);
    EXPECT_THROW(fe.reproduce(BitVec(127), BitVec(100)),
                 std::invalid_argument);
}
