/**
 * @file
 * Exhaustive property tests for the Hsiao SECDED codec: every single-
 * bit flip in the codeword must correct, every double-bit flip must
 * flag as a double error.
 */

#include <bit>
#include <set>

#include <gtest/gtest.h>

#include "ecc/secded.hpp"
#include "util/rng.hpp"

namespace e = authenticache::ecc;
using authenticache::util::Rng;

TEST(Secded, CheckBitCounts)
{
    EXPECT_EQ(e::secdedCheckBits(64), 8u);
    EXPECT_EQ(e::secdedCheckBits(32), 7u);
    EXPECT_EQ(e::secdedCheckBits(16), 6u);
    EXPECT_EQ(e::secdedCheckBits(8), 5u);
}

TEST(Secded, RejectsBadWidths)
{
    EXPECT_THROW(e::SecdedCodec(0), std::invalid_argument);
    EXPECT_THROW(e::SecdedCodec(65), std::invalid_argument);
}

TEST(Secded, ColumnsAreDistinctOddWeight)
{
    e::SecdedCodec codec(64);
    std::set<std::uint32_t> seen;
    for (unsigned i = 0; i < 64; ++i) {
        std::uint32_t col = codec.dataColumn(i);
        EXPECT_EQ(std::popcount(col) % 2, 1) << "column " << i;
        EXPECT_GE(std::popcount(col), 3) << "column " << i;
        EXPECT_TRUE(seen.insert(col).second) << "duplicate column";
    }
}

TEST(Secded, CleanWordDecodesOk)
{
    e::SecdedCodec codec(64);
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t data = rng.next();
        auto check = codec.encode(data);
        auto result = codec.decode(data, check);
        EXPECT_EQ(result.status, e::DecodeStatus::Ok);
        EXPECT_EQ(result.data, data);
    }
}

class SecdedWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SecdedWidths, CorrectsEverySingleBitFlip)
{
    const unsigned width = GetParam();
    e::SecdedCodec codec(width);
    Rng rng(2);
    const std::uint64_t mask =
        width == 64 ? ~0ull : ((1ull << width) - 1);

    for (int trial = 0; trial < 8; ++trial) {
        std::uint64_t data = rng.next() & mask;
        std::uint32_t check = codec.encode(data);

        // Flip each data bit.
        for (unsigned bit = 0; bit < width; ++bit) {
            auto r = codec.decode(data ^ (1ull << bit), check);
            ASSERT_EQ(r.status, e::DecodeStatus::CorrectedData)
                << "data bit " << bit;
            ASSERT_EQ(r.data, data);
            ASSERT_EQ(r.bitPosition, static_cast<int>(bit));
        }
        // Flip each check bit.
        for (unsigned bit = 0; bit < codec.checkBits(); ++bit) {
            auto r = codec.decode(data, check ^ (1u << bit));
            ASSERT_EQ(r.status, e::DecodeStatus::CorrectedCheck)
                << "check bit " << bit;
            ASSERT_EQ(r.data, data);
        }
    }
}

TEST_P(SecdedWidths, DetectsEveryDoubleBitFlip)
{
    const unsigned width = GetParam();
    e::SecdedCodec codec(width);
    Rng rng(3);
    const std::uint64_t mask =
        width == 64 ? ~0ull : ((1ull << width) - 1);
    const unsigned total = width + codec.checkBits();

    std::uint64_t data = rng.next() & mask;
    std::uint32_t check = codec.encode(data);

    auto flip = [&](unsigned bit, std::uint64_t &d, std::uint32_t &c) {
        if (bit < width)
            d ^= 1ull << bit;
        else
            c ^= 1u << (bit - width);
    };

    for (unsigned i = 0; i < total; ++i) {
        for (unsigned j = i + 1; j < total; ++j) {
            std::uint64_t d = data;
            std::uint32_t c = check;
            flip(i, d, c);
            flip(j, d, c);
            auto r = codec.decode(d, c);
            ASSERT_EQ(r.status, e::DecodeStatus::DoubleError)
                << "bits " << i << "," << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SecdedWidths,
                         ::testing::Values(8u, 16u, 32u, 64u));

TEST(Secded, EncodeIsLinear)
{
    // Hsiao codes are linear: check(a ^ b) == check(a) ^ check(b).
    e::SecdedCodec codec(64);
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        std::uint64_t a = rng.next();
        std::uint64_t b = rng.next();
        EXPECT_EQ(codec.encode(a ^ b),
                  codec.encode(a) ^ codec.encode(b));
    }
}

TEST(Secded, TripleFlipNeverSilentlyAccepted)
{
    // 3 flips can alias to a single-bit correction (that is expected
    // of SECDED) but must never decode as Ok.
    e::SecdedCodec codec(64);
    Rng rng(5);
    for (int trial = 0; trial < 2000; ++trial) {
        std::uint64_t data = rng.next();
        std::uint32_t check = codec.encode(data);
        auto picks = rng.sampleDistinct(72, 3);
        std::uint64_t d = data;
        std::uint32_t c = check;
        for (auto bit : picks) {
            if (bit < 64)
                d ^= 1ull << bit;
            else
                c ^= 1u << (bit - 64);
        }
        auto r = codec.decode(d, c);
        EXPECT_NE(r.status, e::DecodeStatus::Ok);
    }
}
