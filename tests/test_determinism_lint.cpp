/**
 * @file
 * Golden-fixture tests for the determinism lint (tools/lint): every
 * rule must fire on its violating fixture, stay quiet on the clean
 * ones, honor the per-rule path allowlists (util/rng.*,
 * util/sim_clock.hpp, server/durable_io.*), and respect the
 * `// LINT:allow(<rule>)` escape hatch on the flagged line or the
 * line above. The ctest entry DeterminismLint.Tree separately gates
 * the real src/ tree.
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "determinism_lint.hpp"

namespace lint = authenticache::lint;

namespace {

std::string
fixture(const std::string &name)
{
    const std::string path =
        std::string(AUTH_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<lint::Finding>
lintFixture(const std::string &name,
            const std::string &label_override = "")
{
    const std::string label =
        label_override.empty() ? "src/fixture/" + name
                               : label_override;
    return lint::lintSource(label, fixture(name),
                            lint::Options::defaults());
}

std::set<std::string>
rulesOf(const std::vector<lint::Finding> &findings)
{
    std::set<std::string> rules;
    for (const auto &f : findings)
        rules.insert(f.rule);
    return rules;
}

} // namespace

TEST(DeterminismLintFixtures, CleanFilePasses)
{
    EXPECT_TRUE(lintFixture("clean.cc").empty());
}

TEST(DeterminismLintFixtures, CommentsAndStringsNeverTrip)
{
    EXPECT_TRUE(lintFixture("comments_only.cc").empty());
}

TEST(DeterminismLintFixtures, RawRandFails)
{
    auto findings = lintFixture("raw_rand.cc");
    ASSERT_EQ(findings.size(), 2u); // srand( and rand(
    EXPECT_EQ(rulesOf(findings),
              std::set<std::string>{"raw-rand"});
    EXPECT_EQ(findings[0].line, 5u);
    EXPECT_EQ(findings[1].line, 6u);
}

TEST(DeterminismLintFixtures, RandomDeviceFails)
{
    auto findings = lintFixture("random_device.cc");
    ASSERT_FALSE(findings.empty());
    EXPECT_EQ(rulesOf(findings),
              std::set<std::string>{"random-device"});
}

TEST(DeterminismLintFixtures, RawEngineFailsOutsideRng)
{
    auto findings = lintFixture("raw_engine.cc");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "raw-engine");
    EXPECT_EQ(findings[0].line, 5u);
}

TEST(DeterminismLintFixtures, RawEngineAllowedInsideRngSources)
{
    // The same content relabeled as util/rng.cpp is allowlisted:
    // Rng's own implementation is the one sanctioned engine home.
    EXPECT_TRUE(
        lintFixture("raw_engine.cc", "src/util/rng.cpp").empty());
    EXPECT_TRUE(
        lintFixture("raw_engine.cc", "src/util/rng.hpp").empty());
    // Any other util file still fails.
    EXPECT_FALSE(
        lintFixture("raw_engine.cc", "src/util/stats.cpp").empty());
}

TEST(DeterminismLintFixtures, WallClockFails)
{
    auto findings = lintFixture("wall_clock.cc");
    ASSERT_EQ(findings.size(), 2u); // steady_clock and time(
    EXPECT_EQ(rulesOf(findings),
              std::set<std::string>{"wall-clock"});
}

TEST(DeterminismLintFixtures, WallClockAllowedInSimClock)
{
    EXPECT_TRUE(
        lintFixture("wall_clock.cc", "src/util/sim_clock.hpp")
            .empty());
}

TEST(DeterminismLintFixtures, NakedDurabilityIoFails)
{
    auto findings = lintFixture("naked_io.cc");
    ASSERT_EQ(findings.size(), 2u); // fwrite( and fsync(
    EXPECT_EQ(rulesOf(findings),
              std::set<std::string>{"naked-durability-io"});
}

TEST(DeterminismLintFixtures, NakedDurabilityIoAllowedInDurableIo)
{
    EXPECT_TRUE(
        lintFixture("naked_io.cc", "src/server/durable_io.cpp")
            .empty());
}

TEST(DeterminismLintFixtures, UnorderedIterationFails)
{
    auto findings = lintFixture("unordered_iter.cc");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-iter");
    EXPECT_EQ(findings[0].line, 9u);
}

TEST(DeterminismLintFixtures, EscapeHatchOnPreviousLineSuppresses)
{
    EXPECT_TRUE(lintFixture("unordered_iter_allowed.cc").empty());
}

TEST(DeterminismLintFixtures, EscapeHatchIsRuleSpecific)
{
    // An allow for a *different* rule must not suppress the finding.
    std::string src = "#include <cstdlib>\n"
                      "// LINT:allow(wall-clock)\n"
                      "int f() { return rand(); }\n";
    auto findings = lint::lintSource("src/x.cpp", src,
                                     lint::Options::defaults());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "raw-rand");

    // Same line, right rule: suppressed.
    src = "#include <cstdlib>\n"
          "int f() { return rand(); } // LINT:allow(raw-rand)\n";
    EXPECT_TRUE(lint::lintSource("src/x.cpp", src,
                                 lint::Options::defaults())
                    .empty());
}

TEST(DeterminismLintFixtures, KnownUnorderedAccessorIsFlagged)
{
    // `.all()` is configured as returning an unordered container even
    // though the declaration lives in another file.
    const std::string src =
        "int f(Db &db) {\n"
        "    int n = 0;\n"
        "    for (const auto &kv : db.all())\n"
        "        ++n;\n"
        "    return n;\n"
        "}\n";
    auto findings = lint::lintSource("src/x.cpp", src,
                                     lint::Options::defaults());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-iter");
    EXPECT_EQ(findings[0].line, 3u);
}

TEST(DeterminismLintFixtures, ClassicForLoopIsNotARangeFor)
{
    const std::string src =
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> m;\n"
        "int f() {\n"
        "    int n = 0;\n"
        "    for (int i = 0; i < 3; ++i)\n"
        "        n += m.count(i);\n"
        "    return n;\n"
        "}\n";
    EXPECT_TRUE(lint::lintSource("src/x.cpp", src,
                                 lint::Options::defaults())
                    .empty());
}

TEST(DeterminismLintInventory, AllSixRulesListed)
{
    auto inventory = lint::ruleInventory();
    std::set<std::string> names;
    for (const auto &[rule, summary] : inventory) {
        names.insert(rule);
        EXPECT_FALSE(summary.empty());
    }
    EXPECT_EQ(names,
              (std::set<std::string>{
                  "raw-rand", "random-device", "raw-engine",
                  "wall-clock", "naked-durability-io",
                  "unordered-iter"}));
}

TEST(DeterminismLintTree, FixtureDirectoryAggregates)
{
    // lintTree over the fixture directory: exactly the violating
    // fixtures fire, with labels relative to the parent directory.
    auto findings = lint::lintTree(AUTH_LINT_FIXTURE_DIR,
                                   lint::Options::defaults());
    std::set<std::string> files;
    for (const auto &f : findings)
        files.insert(f.file);
    EXPECT_EQ(files,
              (std::set<std::string>{
                  "lint_fixtures/raw_rand.cc",
                  "lint_fixtures/random_device.cc",
                  "lint_fixtures/raw_engine.cc",
                  "lint_fixtures/wall_clock.cc",
                  "lint_fixtures/naked_io.cc",
                  "lint_fixtures/unordered_iter.cc"}));
}
